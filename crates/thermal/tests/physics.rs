//! Property-based physics tests for the compact thermal model.
//!
//! The model is a linear RC network, which buys us two powerful exact
//! invariants to test against arbitrary inputs:
//!
//! * **superposition** — `T(αP₁ + βP₂) − T(0) = α(T(P₁) − T(0)) + β(T(P₂) − T(0))`;
//! * **reciprocity** — with a symmetric conductance matrix, the
//!   temperature rise at cell *i* due to unit power at cell *j* equals the
//!   rise at *j* due to unit power at *i*.

use eigenmaps_thermal::prelude::*;
use proptest::prelude::*;

fn model(rows: usize, cols: usize) -> ThermalModel {
    ThermalModel::with_default_stack(GridSpec::new(rows, cols, 1e-3, 1e-3)).expect("valid model")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn steady_state_superposition(
        seed in 0u64..500,
        alpha in 0.1f64..3.0,
        beta in 0.1f64..3.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = model(5, 6);
        let n = m.die_cells();
        let p1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 0.2).collect();
        let p2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 0.2).collect();
        let combo: Vec<f64> = p1.iter().zip(p2.iter()).map(|(a, b)| alpha * a + beta * b).collect();

        let ambient = m.environment().ambient;
        let t1 = m.steady_state(&p1).unwrap();
        let t2 = m.steady_state(&p2).unwrap();
        let tc = m.steady_state(&combo).unwrap();
        for i in 0..tc.len() {
            let lhs = tc[i] - ambient;
            let rhs = alpha * (t1[i] - ambient) + beta * (t2[i] - ambient);
            prop_assert!(
                (lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0),
                "superposition violated at {i}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn steady_state_reciprocity(
        src in 0usize..20,
        dst in 0usize..20,
    ) {
        let m = model(4, 5);
        let n = m.die_cells();
        prop_assume!(src < n && dst < n && src != dst);
        let ambient = m.environment().ambient;
        let mut p = vec![0.0; n];
        p[src] = 1.0;
        let t_src = m.steady_state(&p).unwrap();
        p[src] = 0.0;
        p[dst] = 1.0;
        let t_dst = m.steady_state(&p).unwrap();
        let rise_at_dst = t_src[dst] - ambient;
        let rise_at_src = t_dst[src] - ambient;
        prop_assert!(
            (rise_at_dst - rise_at_src).abs() < 1e-7 * rise_at_dst.abs().max(1e-6),
            "reciprocity violated: {rise_at_dst} vs {rise_at_src}"
        );
    }

    #[test]
    fn transient_is_monotone_between_equilibria(steps in 5usize..30) {
        // Starting at ambient with constant power, every cell's trajectory
        // is monotone non-decreasing toward the warm steady state.
        let m = model(4, 4);
        let mut sim = TransientSim::new(m, 5e-3).unwrap();
        let power = vec![0.08; 16];
        let mut prev = sim.die_temperatures().to_vec();
        for _ in 0..steps {
            sim.step(&power).unwrap();
            for (a, b) in prev.iter().zip(sim.die_temperatures()) {
                prop_assert!(b + 1e-9 >= *a, "temperature dipped: {b} < {a}");
            }
            prev = sim.die_temperatures().to_vec();
        }
    }

    #[test]
    fn scaling_power_scales_temperature_rise(scale in 0.2f64..5.0) {
        let m = model(4, 4);
        let ambient = m.environment().ambient;
        let base = vec![0.1; 16];
        let scaled: Vec<f64> = base.iter().map(|p| p * scale).collect();
        let t_base = m.steady_state(&base).unwrap();
        let t_scaled = m.steady_state(&scaled).unwrap();
        for (b, s) in t_base.iter().zip(t_scaled.iter()) {
            let expect = ambient + scale * (b - ambient);
            prop_assert!((s - expect).abs() < 1e-6 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn liquid_energy_balance_for_any_power(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let stack = LiquidCooledStack::new(
            GridSpec::new(3, 6, 1e-3, 1e-3),
            vec![Layer::new("die", Material::SILICON, 350e-6)],
            vec![Layer::new("lid", Material::SILICON, 300e-6)],
            100e-6,
            Coolant::default(),
        )
        .unwrap();
        let power: Vec<f64> = (0..18).map(|_| rng.gen::<f64>() * 0.3).collect();
        let q_total: f64 = power.iter().sum();
        prop_assume!(q_total > 1e-6);
        let t = stack.steady_state(&power).unwrap();
        let cool = stack.coolant_temperatures(&t);
        let g_adv = stack.coolant().flow_rate * stack.coolant().volumetric_capacity;
        let carried: f64 = (0..3)
            .map(|r| g_adv * (cool[r + 5 * 3] - stack.coolant().inlet))
            .sum();
        prop_assert!(
            (carried - q_total).abs() < 1e-5 * q_total,
            "energy leak: coolant carries {carried} of {q_total} W"
        );
    }
}
