//! Material properties used by the compact thermal model.

/// Bulk thermal properties of a layer material.
///
/// A passive data holder in SI units; the presets match the values used in
/// compact thermal models of flip-chip packages (3D-ICE, HotSpot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Thermal conductivity `k` in W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity `c_v` in J/(m³·K).
    pub volumetric_capacity: f64,
}

impl Material {
    /// Bulk silicon (die): k ≈ 130 W/(m·K), c_v ≈ 1.63 MJ/(m³·K).
    pub const SILICON: Material = Material {
        conductivity: 130.0,
        volumetric_capacity: 1.628e6,
    };

    /// Thermal interface material (grease): k ≈ 4 W/(m·K).
    pub const TIM: Material = Material {
        conductivity: 4.0,
        volumetric_capacity: 2.0e6,
    };

    /// Copper (heat spreader): k ≈ 400 W/(m·K).
    pub const COPPER: Material = Material {
        conductivity: 400.0,
        volumetric_capacity: 3.44e6,
    };

    /// Aluminium (heat-sink base): k ≈ 237 W/(m·K).
    pub const ALUMINUM: Material = Material {
        conductivity: 237.0,
        volumetric_capacity: 2.42e6,
    };

    /// Creates a material from explicit properties.
    ///
    /// # Panics
    ///
    /// Panics if either property is not strictly positive and finite.
    pub fn new(conductivity: f64, volumetric_capacity: f64) -> Self {
        assert!(
            conductivity > 0.0 && conductivity.is_finite(),
            "conductivity must be positive"
        );
        assert!(
            volumetric_capacity > 0.0 && volumetric_capacity.is_finite(),
            "volumetric capacity must be positive"
        );
        Material {
            conductivity,
            volumetric_capacity,
        }
    }
}

/// One layer of the chip/package stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable name (shows up in diagnostics).
    pub name: String,
    /// Material of the layer.
    pub material: Material,
    /// Layer thickness in meters.
    pub thickness: f64,
}

impl Layer {
    /// Creates a layer.
    ///
    /// # Panics
    ///
    /// Panics if `thickness` is not strictly positive and finite.
    pub fn new(name: impl Into<String>, material: Material, thickness: f64) -> Self {
        assert!(
            thickness > 0.0 && thickness.is_finite(),
            "layer thickness must be positive"
        );
        Layer {
            name: name.into(),
            material,
            thickness,
        }
    }

    /// The default flip-chip stack used throughout the reproduction:
    /// silicon die, TIM, copper spreader, aluminium sink base
    /// (die at index 0 — power is injected there).
    pub fn default_stack() -> Vec<Layer> {
        vec![
            Layer::new("die", Material::SILICON, 350e-6),
            Layer::new("tim", Material::TIM, 50e-6),
            Layer::new("spreader", Material::COPPER, 1.0e-3),
            Layer::new("sink", Material::ALUMINUM, 3.0e-3),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_physical() {
        for m in [
            Material::SILICON,
            Material::TIM,
            Material::COPPER,
            Material::ALUMINUM,
        ] {
            assert!(m.conductivity > 0.0);
            assert!(m.volumetric_capacity > 0.0);
        }
        // Copper conducts much better than TIM (evaluated through
        // variables so the compile-time-constant lint stays quiet while
        // the preset values remain guarded).
        let (cu, tim) = (Material::COPPER, Material::TIM);
        assert!(cu.conductivity > 50.0 * tim.conductivity);
    }

    #[test]
    #[should_panic(expected = "conductivity")]
    fn rejects_nonpositive_conductivity() {
        let _ = Material::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "thickness")]
    fn rejects_nonpositive_thickness() {
        let _ = Layer::new("x", Material::SILICON, -1.0);
    }

    #[test]
    fn default_stack_starts_with_die() {
        let stack = Layer::default_stack();
        assert_eq!(stack[0].name, "die");
        assert_eq!(stack.len(), 4);
    }
}
