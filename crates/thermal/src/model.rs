//! The compact thermal model: a 3-D resistive/capacitive network assembled
//! from a layer stack over a regular in-plane grid.
//!
//! This is the same modelling family as 3D-ICE [Sridhar et al., ICCAD'10]:
//! finite-volume cells, one thermal capacitance per cell, conductances to
//! the 6 neighbours, convective boundary at the top of the heat sink, and
//! power injected into the die layer. The EigenMaps paper uses 3D-ICE as a
//! black box to produce its design-time dataset; this module is our
//! re-implementation of that black box (see DESIGN.md, substitutions).

use eigenmaps_linalg::sparse::{CsrMatrix, TripletBuilder};

use crate::error::{Result, ThermalError};
use crate::material::Layer;

/// In-plane discretization of the die: `rows × cols` cells of size
/// `cell_width × cell_height` meters.
///
/// `rows` is the paper's `H`, `cols` its `W`; the vectorized cell index is
/// `row + col·rows` (column stacking, matching the paper's convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Number of cell rows (`H`).
    pub rows: usize,
    /// Number of cell columns (`W`).
    pub cols: usize,
    /// Cell extent along the x (column) axis, meters.
    pub cell_width: f64,
    /// Cell extent along the y (row) axis, meters.
    pub cell_height: f64,
}

impl GridSpec {
    /// Creates a grid spec.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or non-finite.
    pub fn new(rows: usize, cols: usize, cell_width: f64, cell_height: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "cell width must be positive"
        );
        assert!(
            cell_height > 0.0 && cell_height.is_finite(),
            "cell height must be positive"
        );
        GridSpec {
            rows,
            cols,
            cell_width,
            cell_height,
        }
    }

    /// Cells per layer (`rows · cols`, the paper's `N`).
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Vectorized index of `(row, col)` within a layer (column stacking).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        row + col * self.rows
    }

    /// Inverse of [`GridSpec::index`].
    #[inline]
    pub fn position(&self, index: usize) -> (usize, usize) {
        assert!(index < self.cells(), "index out of range");
        (index % self.rows, index / self.rows)
    }
}

/// Boundary and environment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Ambient temperature in °C.
    pub ambient: f64,
    /// Convective heat-transfer coefficient at the top of the last layer,
    /// W/(m²·K). Models the sink-to-air (or liquid) interface.
    pub heat_transfer_coefficient: f64,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            ambient: 45.0,
            // Effective sink-to-air coefficient for a forced-air finned
            // sink, folded into a per-die-area value. 8 kW/m²K over a
            // ~3.5 cm² die gives a junction-to-ambient resistance of
            // ~0.4 K/W — the right ballpark for a ~60-70 W server chip
            // (ΔT ≈ 20-30 °C at full load).
            heat_transfer_coefficient: 8.0e3,
        }
    }
}

/// An assembled compact thermal model.
///
/// Owns the conductance matrix `G` (SPD, CSR), the capacitance diagonal
/// `C`, and the ambient coupling vector. States are flat vectors of length
/// `layers · rows · cols`, layer-major, with the die at layer 0 so that
/// `state[..rows·cols]` *is* the vectorized die thermal map.
///
/// # Examples
///
/// ```
/// use eigenmaps_thermal::{GridSpec, Environment, ThermalModel, Layer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = ThermalModel::new(
///     GridSpec::new(8, 8, 1e-3, 1e-3),
///     Layer::default_stack(),
///     Environment::default(),
/// )?;
/// // 2 W uniformly over the die.
/// let power = vec![2.0 / 64.0; 64];
/// let t = model.steady_state(&power)?;
/// assert!(t.iter().all(|&v| v > 45.0)); // warmer than ambient everywhere
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel {
    grid: GridSpec,
    layers: Vec<Layer>,
    env: Environment,
    conductance: CsrMatrix,
    capacitance: Vec<f64>,
    ambient_coupling: Vec<f64>,
}

impl ThermalModel {
    /// Assembles the RC network for the given grid, stack and environment.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidConfig`] if `layers` is empty or the
    /// environment parameters are non-physical.
    pub fn new(grid: GridSpec, layers: Vec<Layer>, env: Environment) -> Result<Self> {
        if layers.is_empty() {
            return Err(ThermalError::InvalidConfig {
                context: "layer stack is empty",
            });
        }
        let htc = env.heat_transfer_coefficient;
        if !(htc.is_finite() && htc > 0.0) {
            return Err(ThermalError::InvalidConfig {
                context: "heat transfer coefficient must be positive",
            });
        }
        if !env.ambient.is_finite() {
            return Err(ThermalError::InvalidConfig {
                context: "ambient temperature must be finite",
            });
        }

        let per_layer = grid.cells();
        let n = per_layer * layers.len();
        let dx = grid.cell_width;
        let dy = grid.cell_height;
        let area = dx * dy;

        let mut g = TripletBuilder::new(n, n);
        let mut capacitance = vec![0.0; n];
        let mut ambient_coupling = vec![0.0; n];

        let idx = |l: usize, r: usize, c: usize| l * per_layer + grid.index(r, c);

        for (l, layer) in layers.iter().enumerate() {
            let k = layer.material.conductivity;
            let t = layer.thickness;
            // Lateral conductances (adiabatic side walls: nothing beyond
            // the last cell).
            let gx = k * t * dy / dx; // between column neighbours
            let gy = k * t * dx / dy; // between row neighbours
            for r in 0..grid.rows {
                for c in 0..grid.cols {
                    let i = idx(l, r, c);
                    capacitance[i] = layer.material.volumetric_capacity * area * t;
                    if c + 1 < grid.cols {
                        let j = idx(l, r, c + 1);
                        g.push(i, i, gx);
                        g.push(j, j, gx);
                        g.push(i, j, -gx);
                        g.push(j, i, -gx);
                    }
                    if r + 1 < grid.rows {
                        let j = idx(l, r + 1, c);
                        g.push(i, i, gy);
                        g.push(j, j, gy);
                        g.push(i, j, -gy);
                        g.push(j, i, -gy);
                    }
                }
            }
            // Vertical conductance to the next layer: two half-thickness
            // resistances in series through the cell area.
            if l + 1 < layers.len() {
                let up = &layers[l + 1];
                let r_series = (t / 2.0) / (k * area)
                    + (up.thickness / 2.0) / (up.material.conductivity * area);
                let gz = 1.0 / r_series;
                for r in 0..grid.rows {
                    for c in 0..grid.cols {
                        let i = idx(l, r, c);
                        let j = idx(l + 1, r, c);
                        g.push(i, i, gz);
                        g.push(j, j, gz);
                        g.push(i, j, -gz);
                        g.push(j, i, -gz);
                    }
                }
            }
        }

        // Convective boundary on top of the last layer: half-thickness
        // conduction in series with the film coefficient.
        let last = layers.len() - 1;
        let top = &layers[last];
        let r_half = (top.thickness / 2.0) / (top.material.conductivity * area);
        let r_film = 1.0 / (env.heat_transfer_coefficient * area);
        let g_amb = 1.0 / (r_half + r_film);
        for r in 0..grid.rows {
            for c in 0..grid.cols {
                let i = idx(last, r, c);
                g.push(i, i, g_amb);
                ambient_coupling[i] = g_amb;
            }
        }

        Ok(ThermalModel {
            grid,
            layers,
            env,
            conductance: g.to_csr(),
            capacitance,
            ambient_coupling,
        })
    }

    /// Convenience constructor: default stack + default environment.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalModel::new`] errors (none for this preset).
    pub fn with_default_stack(grid: GridSpec) -> Result<Self> {
        ThermalModel::new(grid, Layer::default_stack(), Environment::default())
    }

    /// The in-plane grid.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// The layer stack, die first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The environment parameters.
    pub fn environment(&self) -> Environment {
        self.env
    }

    /// Total number of cells across all layers.
    pub fn state_len(&self) -> usize {
        self.capacitance.len()
    }

    /// Number of die-layer cells (`rows·cols`), i.e. the power-map length.
    pub fn die_cells(&self) -> usize {
        self.grid.cells()
    }

    /// The assembled conductance matrix `G` (SPD).
    pub fn conductance(&self) -> &CsrMatrix {
        &self.conductance
    }

    /// Per-cell thermal capacitances (J/K).
    pub fn capacitance(&self) -> &[f64] {
        &self.capacitance
    }

    /// Ambient coupling conductances (W/K), non-zero only on the top layer.
    pub fn ambient_coupling(&self) -> &[f64] {
        &self.ambient_coupling
    }

    /// Builds the full-length right-hand side `P + G_amb·T_amb` from a
    /// die-layer power map (W per cell).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PowerShapeMismatch`] if `power.len()` is not
    /// `rows·cols`.
    pub fn rhs(&self, power: &[f64]) -> Result<Vec<f64>> {
        if power.len() != self.die_cells() {
            return Err(ThermalError::PowerShapeMismatch {
                expected: self.die_cells(),
                found: power.len(),
            });
        }
        let mut b = vec![0.0; self.state_len()];
        b[..power.len()].copy_from_slice(power);
        for (bi, (&g, _)) in b
            .iter_mut()
            .zip(self.ambient_coupling.iter().zip(self.capacitance.iter()))
        {
            *bi += g * self.env.ambient;
        }
        Ok(b)
    }

    /// Solves the steady-state system `G T = P + G_amb·T_amb` and returns
    /// the full temperature state (°C).
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerShapeMismatch`] for a wrong-length power map.
    /// * [`ThermalError::Solver`] if CG fails (cannot happen for the SPD
    ///   matrices assembled here).
    pub fn steady_state(&self, power: &[f64]) -> Result<Vec<f64>> {
        use eigenmaps_linalg::sparse::{cg_solve, CgOptions};
        let b = self.rhs(power)?;
        let guess = vec![self.env.ambient; self.state_len()];
        let sol = cg_solve(
            &self.conductance,
            &b,
            &CgOptions {
                tolerance: 1e-10,
                max_iterations: 40 * self.state_len(),
                initial_guess: Some(guess),
            },
        )?;
        Ok(sol.x)
    }

    /// Extracts (copies) the die-layer temperatures from a full state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != state_len()`.
    pub fn die_temperatures<'a>(&self, state: &'a [f64]) -> &'a [f64] {
        assert_eq!(state.len(), self.state_len(), "state length mismatch");
        &state[..self.die_cells()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;

    fn small_model() -> ThermalModel {
        ThermalModel::with_default_stack(GridSpec::new(6, 5, 1e-3, 1e-3)).unwrap()
    }

    #[test]
    fn grid_index_roundtrip() {
        let g = GridSpec::new(7, 4, 1e-3, 1e-3);
        for r in 0..7 {
            for c in 0..4 {
                let i = g.index(r, c);
                assert_eq!(g.position(i), (r, c));
            }
        }
        // Column stacking: consecutive rows are adjacent indices.
        assert_eq!(g.index(0, 0) + 1, g.index(1, 0));
        assert_eq!(g.index(0, 1), 7);
    }

    #[test]
    fn conductance_is_symmetric_spd_shaped() {
        let m = small_model();
        assert!(m.conductance().is_symmetric(1e-12));
        // Diagonal dominance: row sums equal the ambient coupling (all
        // internal conductances cancel), so every diagonal entry is at
        // least the sum of the absolute off-diagonals.
        let n = m.state_len();
        for i in 0..n {
            let mut offsum = 0.0;
            for j in 0..n {
                if i != j {
                    offsum += m.conductance().get(i, j).abs();
                }
            }
            let d = m.conductance().get(i, i);
            assert!(
                d >= offsum - 1e-9,
                "row {i} not diagonally dominant: {d} < {offsum}"
            );
        }
    }

    #[test]
    fn zero_power_relaxes_to_ambient() {
        let m = small_model();
        let t = m.steady_state(&vec![0.0; m.die_cells()]).unwrap();
        for &v in &t {
            assert!((v - 45.0).abs() < 1e-6, "cell at {v} °C, expected ambient");
        }
    }

    #[test]
    fn uniform_power_matches_1d_analytic() {
        // Uniform power + adiabatic sides → strictly 1-D heat flow.
        // T_die = T_amb + q·(Σ_l R_l,partial + R_film) where the partial
        // resistances follow the half-cell discretization of the model:
        // within the die layer the *cell center* sits half a thickness from
        // the interface.
        let grid = GridSpec::new(4, 4, 1e-3, 1e-3);
        let layers = Layer::default_stack();
        let env = Environment::default();
        let m = ThermalModel::new(grid, layers.clone(), env).unwrap();
        let q_total = 8.0; // W
        let per_cell = q_total / 16.0;
        let t = m.steady_state(&[per_cell; 16]).unwrap();

        // Analytic: centers-to-centers series resistances over total area.
        let area_tot = 16.0 * 1e-6;
        let mut r_total = 0.0;
        for w in layers.windows(2) {
            r_total += (w[0].thickness / 2.0) / (w[0].material.conductivity * area_tot)
                + (w[1].thickness / 2.0) / (w[1].material.conductivity * area_tot);
        }
        let last = layers.last().unwrap();
        r_total += (last.thickness / 2.0) / (last.material.conductivity * area_tot);
        r_total += 1.0 / (env.heat_transfer_coefficient * area_tot);
        let expected = env.ambient + q_total * r_total;

        let die = m.die_temperatures(&t);
        for &v in die {
            assert!(
                (v - expected).abs() < 1e-6 * expected.abs(),
                "die at {v}, analytic {expected}"
            );
        }
    }

    #[test]
    fn symmetric_power_gives_symmetric_map() {
        let m = ThermalModel::with_default_stack(GridSpec::new(6, 6, 1e-3, 1e-3)).unwrap();
        let g = m.grid();
        let mut power = vec![0.0; 36];
        // Power pattern symmetric under row reflection.
        power[g.index(1, 2)] = 1.0;
        power[g.index(4, 2)] = 1.0;
        let t = m.steady_state(&power).unwrap();
        let die = m.die_temperatures(&t);
        for r in 0..6 {
            for c in 0..6 {
                let a = die[g.index(r, c)];
                let b = die[g.index(5 - r, c)];
                assert!((a - b).abs() < 1e-7, "asymmetry at ({r},{c}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn hotspot_decays_with_distance() {
        let m = ThermalModel::with_default_stack(GridSpec::new(9, 9, 1e-3, 1e-3)).unwrap();
        let g = m.grid();
        let mut power = vec![0.0; 81];
        power[g.index(4, 4)] = 3.0;
        let t = m.steady_state(&power).unwrap();
        let die = m.die_temperatures(&t);
        let center = die[g.index(4, 4)];
        let near = die[g.index(4, 5)];
        let far = die[g.index(4, 8)];
        assert!(
            center > near && near > far,
            "{center} > {near} > {far} violated"
        );
    }

    #[test]
    fn more_power_is_hotter_everywhere() {
        let m = small_model();
        let p1 = vec![0.05; m.die_cells()];
        let p2 = vec![0.10; m.die_cells()];
        let t1 = m.steady_state(&p1).unwrap();
        let t2 = m.steady_state(&p2).unwrap();
        for (a, b) in t1.iter().zip(t2.iter()) {
            assert!(b > a);
        }
    }

    #[test]
    fn power_shape_checked() {
        let m = small_model();
        assert!(matches!(
            m.steady_state(&[1.0]),
            Err(ThermalError::PowerShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_stack_rejected() {
        let r = ThermalModel::new(
            GridSpec::new(2, 2, 1e-3, 1e-3),
            vec![],
            Environment::default(),
        );
        assert!(matches!(r, Err(ThermalError::InvalidConfig { .. })));
    }

    #[test]
    fn bad_environment_rejected() {
        let env = Environment {
            ambient: 45.0,
            heat_transfer_coefficient: 0.0,
        };
        let r = ThermalModel::new(GridSpec::new(2, 2, 1e-3, 1e-3), Layer::default_stack(), env);
        assert!(r.is_err());
    }

    #[test]
    fn single_layer_model_works() {
        let m = ThermalModel::new(
            GridSpec::new(3, 3, 1e-3, 1e-3),
            vec![Layer::new("die", Material::SILICON, 500e-6)],
            Environment::default(),
        )
        .unwrap();
        let t = m.steady_state(&[0.1; 9]).unwrap();
        assert_eq!(t.len(), 9);
        assert!(t.iter().all(|&v| v > 45.0));
    }
}
