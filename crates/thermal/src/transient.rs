//! Backward-Euler transient stepping of the compact thermal model.
//!
//! The design-time dataset of the paper is a sequence of *transient*
//! snapshots (T = 2652 of them) produced while replaying power traces; this
//! module provides the stepper that turns per-interval power maps into that
//! sequence.

use eigenmaps_linalg::sparse::{cg_solve, CgOptions, CsrMatrix, TripletBuilder};

use crate::error::{Result, ThermalError};
use crate::model::ThermalModel;

/// A transient simulation over a [`ThermalModel`], advanced with the
/// unconditionally-stable backward Euler scheme:
///
/// `(C/Δt + G) T⁺ = (C/Δt) T + P + G_amb·T_amb`
///
/// The system matrix is assembled once per `Δt` and reused across steps;
/// each step warm-starts CG from the previous state so the per-step cost is
/// a handful of sparse matvecs.
///
/// # Examples
///
/// ```
/// use eigenmaps_thermal::{GridSpec, ThermalModel, TransientSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = ThermalModel::with_default_stack(GridSpec::new(4, 4, 1e-3, 1e-3))?;
/// let mut sim = TransientSim::new(model, 1e-3)?;
/// let power = vec![0.05; 16];
/// for _ in 0..10 {
///     sim.step(&power)?;
/// }
/// assert!(sim.die_temperatures()[0] > 45.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSim {
    model: ThermalModel,
    dt: f64,
    system: CsrMatrix,
    state: Vec<f64>,
    time: f64,
}

impl TransientSim {
    /// Creates a transient simulation with time step `dt` (seconds),
    /// initialized at the model's ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidConfig`] if `dt` is not strictly
    /// positive and finite.
    pub fn new(model: ThermalModel, dt: f64) -> Result<Self> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::InvalidConfig {
                context: "time step must be positive and finite",
            });
        }
        let n = model.state_len();
        // System matrix A = G + C/Δt.
        let mut tb = TripletBuilder::new(n, n);
        for (i, j, v) in model.conductance().entries() {
            tb.push(i, j, v);
        }
        for (i, &c) in model.capacitance().iter().enumerate() {
            tb.push(i, i, c / dt);
        }
        let system = tb.to_csr();
        let ambient = model.environment().ambient;
        let state = vec![ambient; n];
        Ok(TransientSim {
            model,
            dt,
            system,
            state,
            time: 0.0,
        })
    }

    /// The underlying thermal model.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// The fixed time step in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Full temperature state (all layers), °C.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Die-layer temperatures (°C) — the vectorized thermal map of the
    /// paper.
    pub fn die_temperatures(&self) -> &[f64] {
        self.model.die_temperatures(&self.state)
    }

    /// Resets the whole stack to a uniform temperature and rewinds time.
    pub fn reset(&mut self, temperature: f64) {
        self.state.fill(temperature);
        self.time = 0.0;
    }

    /// Advances one time step with the given die power map (W per cell)
    /// held constant over the interval; returns the new die temperatures.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerShapeMismatch`] for a wrong-length power map.
    /// * [`ThermalError::Solver`] if the inner CG solve fails.
    pub fn step(&mut self, power: &[f64]) -> Result<&[f64]> {
        // RHS = C/Δt·T + P + G_amb·T_amb.
        let mut b = self.model.rhs(power)?;
        for ((bi, &c), &t) in b
            .iter_mut()
            .zip(self.model.capacitance().iter())
            .zip(self.state.iter())
        {
            *bi += c / self.dt * t;
        }
        let sol = cg_solve(
            &self.system,
            &b,
            &CgOptions {
                tolerance: 1e-10,
                max_iterations: 40 * self.state.len(),
                initial_guess: Some(self.state.clone()),
            },
        )?;
        self.state = sol.x;
        self.time += self.dt;
        Ok(self.die_temperatures())
    }

    /// Advances `steps` steps under a constant power map, returning the die
    /// temperatures after the last step.
    ///
    /// # Errors
    ///
    /// Propagates [`TransientSim::step`] errors.
    pub fn run(&mut self, power: &[f64], steps: usize) -> Result<&[f64]> {
        for _ in 0..steps {
            self.step(power)?;
        }
        Ok(self.die_temperatures())
    }

    /// Verifies the discrete energy balance of the last computed state:
    /// `C (T⁺ − T)/Δt = −G T⁺ + P + b_amb` must hold to solver tolerance.
    /// Returns the maximum absolute residual (W); used by validation tests.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`ThermalModel::rhs`].
    pub fn energy_residual(&self, prev_state: &[f64], power: &[f64]) -> Result<f64> {
        let b = self.model.rhs(power)?;
        let gt = self.model.conductance().matvec(&self.state)?;
        let mut worst = 0.0_f64;
        for i in 0..self.state.len() {
            let lhs = self.model.capacitance()[i] * (self.state[i] - prev_state[i]) / self.dt;
            let rhs = -gt[i] + b[i];
            worst = worst.max((lhs - rhs).abs());
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Layer;
    use crate::model::{Environment, GridSpec};

    fn sim(rows: usize, cols: usize, dt: f64) -> TransientSim {
        let model =
            ThermalModel::with_default_stack(GridSpec::new(rows, cols, 1e-3, 1e-3)).unwrap();
        TransientSim::new(model, dt).unwrap()
    }

    #[test]
    fn invalid_dt_rejected() {
        let model = ThermalModel::with_default_stack(GridSpec::new(2, 2, 1e-3, 1e-3)).unwrap();
        assert!(TransientSim::new(model.clone(), 0.0).is_err());
        assert!(TransientSim::new(model, f64::NAN).is_err());
    }

    #[test]
    fn starts_at_ambient_and_time_advances() {
        let mut s = sim(3, 3, 1e-3);
        assert!(s.state().iter().all(|&t| (t - 45.0).abs() < 1e-12));
        assert_eq!(s.time(), 0.0);
        s.step(&[0.0; 9]).unwrap();
        assert!((s.time() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut s = sim(3, 4, 1e-3);
        s.run(&[0.0; 12], 20).unwrap();
        for &t in s.state() {
            assert!((t - 45.0).abs() < 1e-8);
        }
    }

    #[test]
    fn heating_is_monotone_under_constant_power() {
        let mut s = sim(4, 4, 1e-3);
        let power = vec![0.05; 16];
        let mut prev = s.die_temperatures()[5];
        for _ in 0..15 {
            s.step(&power).unwrap();
            let cur = s.die_temperatures()[5];
            assert!(cur >= prev - 1e-12, "cooling under constant power");
            prev = cur;
        }
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut s = sim(4, 3, 0.2);
        let power: Vec<f64> = (0..12).map(|i| 0.02 + 0.01 * (i % 3) as f64).collect();
        // The sink-to-ambient time constant is ~11 s; run for ~15 of them.
        // Backward Euler is unconditionally stable, so the large Δt only
        // costs time accuracy, not the limit.
        s.run(&power, 800).unwrap();
        let direct = s.model().steady_state(&power).unwrap();
        for (a, b) in s.state().iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-2, "transient {a} vs steady {b}");
        }
    }

    #[test]
    fn energy_balance_holds_per_step() {
        let mut s = sim(5, 5, 1e-3);
        let power = vec![0.03; 25];
        let prev = s.state().to_vec();
        s.step(&power).unwrap();
        let residual = s.energy_residual(&prev, &power).unwrap();
        // Residual is bounded by the CG tolerance times the matrix scale.
        assert!(residual < 1e-4, "energy residual {residual} W");
    }

    #[test]
    fn cooling_after_power_off() {
        let mut s = sim(4, 4, 1e-3);
        s.run(&[0.1; 16], 50).unwrap();
        let hot = s.die_temperatures().to_vec();
        s.run(&[0.0; 16], 50).unwrap();
        let cooled = s.die_temperatures().to_vec();
        for (h, c) in hot.iter().zip(cooled.iter()) {
            assert!(c < h, "did not cool: {c} !< {h}");
        }
    }

    #[test]
    fn reset_restores_uniform_state() {
        let mut s = sim(3, 3, 1e-3);
        s.run(&[0.1; 9], 10).unwrap();
        s.reset(50.0);
        assert_eq!(s.time(), 0.0);
        assert!(s.state().iter().all(|&t| t == 50.0));
    }

    #[test]
    fn smaller_dt_converges_to_same_trajectory() {
        // Backward Euler is first-order: halving dt should roughly halve
        // the error against a fine-dt reference at a fixed physical time.
        let power = vec![0.08; 16];
        let horizon = 0.02; // seconds

        let temp_at = |dt: f64| -> f64 {
            let mut s = sim(4, 4, dt);
            let steps = (horizon / dt).round() as usize;
            s.run(&power, steps).unwrap();
            s.die_temperatures()[5]
        };
        let fine = temp_at(2.5e-4);
        let mid = temp_at(1e-3);
        let coarse = temp_at(2e-3);
        let err_mid = (mid - fine).abs();
        let err_coarse = (coarse - fine).abs();
        assert!(
            err_coarse > err_mid,
            "no first-order convergence: coarse {err_coarse} vs mid {err_mid}"
        );
    }

    #[test]
    fn liquid_cooling_style_high_h_runs() {
        // 3D-ICE also supports liquid cooling; emulate its much higher
        // effective heat-transfer coefficient and check the model stays
        // well-behaved (cooler die, still above ambient).
        let grid = GridSpec::new(4, 4, 1e-3, 1e-3);
        let air = ThermalModel::new(grid, Layer::default_stack(), Environment::default()).unwrap();
        let liquid = ThermalModel::new(
            grid,
            Layer::default_stack(),
            Environment {
                ambient: 45.0,
                heat_transfer_coefficient: 2.0e4,
            },
        )
        .unwrap();
        let power = vec![0.2; 16];
        let t_air = air.steady_state(&power).unwrap();
        let t_liq = liquid.steady_state(&power).unwrap();
        assert!(t_liq[0] < t_air[0]);
        assert!(t_liq[0] > 45.0);
    }
}
