//! Inter-tier microchannel liquid cooling — the hallmark feature of
//! 3D-ICE, which the paper's experimental setup cites explicitly
//! ("thermal simulations of 2D or 3D chips cooled with conventional or
//! liquid cooling").
//!
//! The model follows 3D-ICE's simplified four-resistor channel cell:
//! a cavity layer is etched with parallel microchannels running along the
//! column (x) axis. Each channel cell exchanges heat convectively with the
//! solid walls above and below, and *advects* energy downstream with the
//! coolant flow. Advection makes the system matrix nonsymmetric, so the
//! solver switches from CG to BiCGSTAB.

use eigenmaps_linalg::sparse::{bicgstab_solve, CgOptions, CsrMatrix, TripletBuilder};

use crate::error::{Result, ThermalError};
use crate::material::Layer;
use crate::model::GridSpec;

/// Coolant and channel-geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coolant {
    /// Coolant inlet temperature, °C.
    pub inlet: f64,
    /// Volumetric flow rate per channel, m³/s.
    pub flow_rate: f64,
    /// Volumetric heat capacity of the coolant, J/(m³·K) (water ≈ 4.18e6).
    pub volumetric_capacity: f64,
    /// Wall heat-transfer coefficient inside the channels, W/(m²·K).
    pub wall_htc: f64,
}

impl Default for Coolant {
    fn default() -> Self {
        Coolant {
            inlet: 30.0,
            // ~0.06 l/min per channel — mid-range for 100 µm channels.
            flow_rate: 1.0e-6,
            volumetric_capacity: 4.18e6,
            wall_htc: 2.0e4,
        }
    }
}

/// A liquid-cooled stack: solid layers with one microchannel cavity wedged
/// between `below` and `above`.
///
/// The die (power injection, index 0 of `below`) sits at the bottom;
/// coolant flows along +x (increasing column index). The steady-state
/// temperature field satisfies a nonsymmetric sparse system solved with
/// BiCGSTAB.
///
/// # Examples
///
/// ```
/// use eigenmaps_thermal::liquid::{Coolant, LiquidCooledStack};
/// use eigenmaps_thermal::{GridSpec, Layer, Material};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = LiquidCooledStack::new(
///     GridSpec::new(6, 8, 1e-3, 1e-3),
///     vec![Layer::new("die", Material::SILICON, 350e-6)],
///     vec![Layer::new("lid", Material::SILICON, 200e-6)],
///     100e-6,
///     Coolant::default(),
/// )?;
/// let t = stack.steady_state(&vec![0.05; 48])?;
/// // Everything sits between inlet temperature and a sane junction limit.
/// assert!(t.iter().all(|&v| v > 29.0 && v < 150.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LiquidCooledStack {
    grid: GridSpec,
    below: Vec<Layer>,
    above: Vec<Layer>,
    coolant: Coolant,
    system: CsrMatrix,
    /// Constant RHS contribution (inlet advection), length `state_len`.
    inlet_rhs: Vec<f64>,
    channel_offset: usize,
    state_len: usize,
}

impl LiquidCooledStack {
    /// Builds the liquid-cooled stack. `channel_height` is the cavity
    /// thickness in meters.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidConfig`] for empty layer stacks or
    /// non-physical coolant parameters.
    pub fn new(
        grid: GridSpec,
        below: Vec<Layer>,
        above: Vec<Layer>,
        channel_height: f64,
        coolant: Coolant,
    ) -> Result<Self> {
        if below.is_empty() || above.is_empty() {
            return Err(ThermalError::InvalidConfig {
                context: "liquid stack needs solid layers on both sides of the cavity",
            });
        }
        if !(channel_height.is_finite() && channel_height > 0.0) {
            return Err(ThermalError::InvalidConfig {
                context: "channel height must be positive",
            });
        }
        if [
            coolant.flow_rate,
            coolant.wall_htc,
            coolant.volumetric_capacity,
        ]
        .iter()
        .any(|v| !(v.is_finite() && *v > 0.0))
        {
            return Err(ThermalError::InvalidConfig {
                context: "coolant parameters must be positive",
            });
        }

        let per_layer = grid.cells();
        let n_solid = per_layer * (below.len() + above.len());
        let state_len = n_solid + per_layer;
        let channel_offset = per_layer * below.len();
        let dx = grid.cell_width;
        let dy = grid.cell_height;
        let area = dx * dy;

        // Layer index mapping: below layers [0, b), channel [b, b+1),
        // above layers [b+1, ...).
        let solid_layers: Vec<&Layer> = below.iter().chain(above.iter()).collect();
        let layer_base = |l: usize| -> usize {
            if l < below.len() {
                l * per_layer
            } else {
                // skip the channel slot
                (l + 1) * per_layer
            }
        };

        let mut g = TripletBuilder::new(state_len, state_len);
        let mut inlet_rhs = vec![0.0; state_len];

        // Solid lateral + vertical conduction within below/above stacks.
        for (l, layer) in solid_layers.iter().enumerate() {
            let k = layer.material.conductivity;
            let t = layer.thickness;
            let gx = k * t * dy / dx;
            let gy = k * t * dx / dy;
            let base = layer_base(l);
            for r in 0..grid.rows {
                for c in 0..grid.cols {
                    let i = base + grid.index(r, c);
                    if c + 1 < grid.cols {
                        let j = base + grid.index(r, c + 1);
                        g.push(i, i, gx);
                        g.push(j, j, gx);
                        g.push(i, j, -gx);
                        g.push(j, i, -gx);
                    }
                    if r + 1 < grid.rows {
                        let j = base + grid.index(r + 1, c);
                        g.push(i, i, gy);
                        g.push(j, j, gy);
                        g.push(i, j, -gy);
                        g.push(j, i, -gy);
                    }
                }
            }
            // Vertical conduction to the next *solid* layer, except across
            // the cavity (handled by convection below).
            let crosses_cavity = l + 1 == below.len();
            if l + 1 < solid_layers.len() && !crosses_cavity {
                let up = solid_layers[l + 1];
                let r_series = (t / 2.0) / (k * area)
                    + (up.thickness / 2.0) / (up.material.conductivity * area);
                let gz = 1.0 / r_series;
                let base_up = layer_base(l + 1);
                for idx in 0..per_layer {
                    let i = base + idx;
                    let j = base_up + idx;
                    g.push(i, i, gz);
                    g.push(j, j, gz);
                    g.push(i, j, -gz);
                    g.push(j, i, -gz);
                }
            }
        }

        // Channel cells: wall convection to the last `below` layer and the
        // first `above` layer + advection along +x.
        let top_of_below = &below[below.len() - 1];
        let bottom_of_above = &above[0];
        // Wall coupling: half-thickness conduction in series with the
        // channel film coefficient over the cell footprint.
        let g_wall_below = 1.0
            / ((top_of_below.thickness / 2.0) / (top_of_below.material.conductivity * area)
                + 1.0 / (coolant.wall_htc * area));
        let g_wall_above = 1.0
            / ((bottom_of_above.thickness / 2.0) / (bottom_of_above.material.conductivity * area)
                + 1.0 / (coolant.wall_htc * area));
        let below_top_base = layer_base(below.len() - 1);
        let above_bot_base = layer_base(below.len());
        // Advective "conductance": ṁ·c = flow · c_v per channel cell row.
        let g_adv = coolant.flow_rate * coolant.volumetric_capacity;

        for r in 0..grid.rows {
            for c in 0..grid.cols {
                let idx = grid.index(r, c);
                let ch = channel_offset + idx;
                let wb = below_top_base + idx;
                let wa = above_bot_base + idx;
                // Wall convection (symmetric coupling).
                g.push(ch, ch, g_wall_below + g_wall_above);
                g.push(wb, wb, g_wall_below);
                g.push(wa, wa, g_wall_above);
                g.push(ch, wb, -g_wall_below);
                g.push(wb, ch, -g_wall_below);
                g.push(ch, wa, -g_wall_above);
                g.push(wa, ch, -g_wall_above);
                // Upwind advection: energy enters from upstream (c−1) or
                // the inlet, leaves downstream (asymmetric!).
                g.push(ch, ch, g_adv);
                if c == 0 {
                    inlet_rhs[ch] = g_adv * coolant.inlet;
                } else {
                    let upstream = channel_offset + grid.index(r, c - 1);
                    g.push(ch, upstream, -g_adv);
                }
            }
        }

        Ok(LiquidCooledStack {
            grid,
            below,
            above,
            coolant,
            system: g.to_csr(),
            inlet_rhs,
            channel_offset,
            state_len,
        })
    }

    /// The in-plane grid.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// Total state length (solid cells of both stacks + channel cells).
    pub fn state_len(&self) -> usize {
        self.state_len
    }

    /// Number of die cells (`rows·cols`).
    pub fn die_cells(&self) -> usize {
        self.grid.cells()
    }

    /// The coolant parameters.
    pub fn coolant(&self) -> Coolant {
        self.coolant
    }

    /// Solid layers below the cavity (die first).
    pub fn below_layers(&self) -> &[Layer] {
        &self.below
    }

    /// Solid layers above the cavity.
    pub fn above_layers(&self) -> &[Layer] {
        &self.above
    }

    /// Solves the steady-state field for a die power map (W per cell);
    /// returns the full state (below stack, then channel, then above
    /// stack — the die slice is `[..die_cells()]`).
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerShapeMismatch`] for a wrong-length map.
    /// * [`ThermalError::Solver`] if BiCGSTAB fails to converge.
    pub fn steady_state(&self, power: &[f64]) -> Result<Vec<f64>> {
        if power.len() != self.die_cells() {
            return Err(ThermalError::PowerShapeMismatch {
                expected: self.die_cells(),
                found: power.len(),
            });
        }
        let mut b = self.inlet_rhs.clone();
        for (bi, &p) in b.iter_mut().zip(power.iter()) {
            *bi += p;
        }
        let guess = vec![self.coolant.inlet; self.state_len];
        let sol = bicgstab_solve(
            &self.system,
            &b,
            &CgOptions {
                tolerance: 1e-10,
                max_iterations: 60 * self.state_len,
                initial_guess: Some(guess),
            },
        )?;
        Ok(sol.x)
    }

    /// Extracts the die-layer temperatures from a full state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != state_len()`.
    pub fn die_temperatures<'a>(&self, state: &'a [f64]) -> &'a [f64] {
        assert_eq!(state.len(), self.state_len, "state length mismatch");
        &state[..self.die_cells()]
    }

    /// Extracts the coolant temperatures from a full state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != state_len()`.
    pub fn coolant_temperatures<'a>(&self, state: &'a [f64]) -> &'a [f64] {
        assert_eq!(state.len(), self.state_len, "state length mismatch");
        &state[self.channel_offset..self.channel_offset + self.die_cells()]
    }
}

/// Backward-Euler transient stepping for a [`LiquidCooledStack`].
///
/// Mirrors [`crate::TransientSim`] for the air-cooled model, but solves the
/// nonsymmetric advective system with BiCGSTAB.
#[derive(Debug, Clone)]
pub struct LiquidTransientSim {
    stack: LiquidCooledStack,
    dt: f64,
    system: CsrMatrix,
    capacitance: Vec<f64>,
    state: Vec<f64>,
    time: f64,
}

impl LiquidTransientSim {
    /// Creates a transient simulation with time step `dt` (seconds),
    /// initialized at the coolant inlet temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidConfig`] if `dt` is not strictly
    /// positive and finite.
    pub fn new(stack: LiquidCooledStack, dt: f64) -> Result<Self> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ThermalError::InvalidConfig {
                context: "time step must be positive and finite",
            });
        }
        let n = stack.state_len();
        let per_layer = stack.grid().cells();
        let area = stack.grid().cell_width * stack.grid().cell_height;

        // Per-cell capacitances: solid layers from their materials, the
        // channel cells from the coolant volume.
        let mut capacitance = vec![0.0; n];
        let solids: Vec<&Layer> = stack.below.iter().chain(stack.above.iter()).collect();
        for (l, layer) in solids.iter().enumerate() {
            let base = if l < stack.below.len() {
                l * per_layer
            } else {
                (l + 1) * per_layer
            };
            let c = layer.material.volumetric_capacity * area * layer.thickness;
            for idx in 0..per_layer {
                capacitance[base + idx] = c;
            }
        }
        // Channel cavity: coolant fills the cell (conservative estimate of
        // the channel-to-wall fill ratio is folded into the height).
        let c_chan = stack.coolant.volumetric_capacity * area * 100e-6;
        for idx in 0..per_layer {
            capacitance[stack.channel_offset + idx] = c_chan;
        }

        let mut tb = TripletBuilder::new(n, n);
        for (i, j, v) in stack.system.entries() {
            tb.push(i, j, v);
        }
        for (i, &c) in capacitance.iter().enumerate() {
            tb.push(i, i, c / dt);
        }
        let system = tb.to_csr();
        let state = vec![stack.coolant.inlet; n];
        Ok(LiquidTransientSim {
            stack,
            dt,
            system,
            capacitance,
            state,
            time: 0.0,
        })
    }

    /// The underlying liquid-cooled stack.
    pub fn stack(&self) -> &LiquidCooledStack {
        &self.stack
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Full temperature state.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Die-layer temperatures.
    pub fn die_temperatures(&self) -> &[f64] {
        self.stack.die_temperatures(&self.state)
    }

    /// Advances one step with the given die power map; returns the new die
    /// temperatures.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerShapeMismatch`] for a wrong-length map.
    /// * [`ThermalError::Solver`] if BiCGSTAB fails.
    pub fn step(&mut self, power: &[f64]) -> Result<&[f64]> {
        if power.len() != self.stack.die_cells() {
            return Err(ThermalError::PowerShapeMismatch {
                expected: self.stack.die_cells(),
                found: power.len(),
            });
        }
        let mut b = self.stack.inlet_rhs.clone();
        for (bi, &p) in b.iter_mut().zip(power.iter()) {
            *bi += p;
        }
        for ((bi, &c), &t) in b
            .iter_mut()
            .zip(self.capacitance.iter())
            .zip(self.state.iter())
        {
            *bi += c / self.dt * t;
        }
        let sol = bicgstab_solve(
            &self.system,
            &b,
            &CgOptions {
                tolerance: 1e-10,
                max_iterations: 60 * self.state.len(),
                initial_guess: Some(self.state.clone()),
            },
        )?;
        self.state = sol.x;
        self.time += self.dt;
        Ok(self.die_temperatures())
    }

    /// Runs `steps` constant-power steps.
    ///
    /// # Errors
    ///
    /// Propagates [`LiquidTransientSim::step`] errors.
    pub fn run(&mut self, power: &[f64], steps: usize) -> Result<&[f64]> {
        for _ in 0..steps {
            self.step(power)?;
        }
        Ok(self.die_temperatures())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;

    fn stack(rows: usize, cols: usize) -> LiquidCooledStack {
        LiquidCooledStack::new(
            GridSpec::new(rows, cols, 1e-3, 1e-3),
            vec![Layer::new("die", Material::SILICON, 350e-6)],
            vec![Layer::new("lid", Material::SILICON, 300e-6)],
            100e-6,
            Coolant::default(),
        )
        .unwrap()
    }

    #[test]
    fn zero_power_relaxes_to_inlet() {
        let s = stack(4, 6);
        let t = s.steady_state(&[0.0; 24]).unwrap();
        for &v in &t {
            assert!((v - 30.0).abs() < 1e-6, "cell at {v}, expected inlet");
        }
    }

    #[test]
    fn coolant_heats_downstream() {
        let s = stack(4, 8);
        let t = s.steady_state(&vec![0.1; 32]).unwrap();
        let cool = s.coolant_temperatures(&t);
        // Along each channel (row), coolant temperature must be
        // non-decreasing in the flow direction.
        for r in 0..4 {
            for c in 1..8 {
                let up = cool[r + (c - 1) * 4];
                let here = cool[r + c * 4];
                assert!(
                    here >= up - 1e-9,
                    "coolant cooled downstream at ({r},{c}): {here} < {up}"
                );
            }
        }
        // And the outlet must actually be warmer than the inlet.
        assert!(cool[4 * 7] > 30.0 + 1e-3);
    }

    #[test]
    fn energy_balance_power_equals_coolant_enthalpy_rise() {
        // All injected power must leave with the coolant (no other sink).
        let s = stack(5, 10);
        let q_total = 3.0;
        let power = vec![q_total / 50.0; 50];
        let t = s.steady_state(&power).unwrap();
        let cool = s.coolant_temperatures(&t);
        let g_adv = s.coolant().flow_rate * s.coolant().volumetric_capacity;
        // Enthalpy rise summed over the 5 channels at the outlet column.
        let mut carried = 0.0;
        for r in 0..5 {
            let outlet = cool[r + 9 * 5];
            carried += g_adv * (outlet - s.coolant().inlet);
        }
        assert!(
            (carried - q_total).abs() < 1e-6 * q_total.max(1.0),
            "coolant carries {carried} W of {q_total} W injected"
        );
    }

    #[test]
    fn more_flow_means_cooler_die() {
        let grid = GridSpec::new(4, 6, 1e-3, 1e-3);
        let mk = |flow: f64| {
            LiquidCooledStack::new(
                grid,
                vec![Layer::new("die", Material::SILICON, 350e-6)],
                vec![Layer::new("lid", Material::SILICON, 300e-6)],
                100e-6,
                Coolant {
                    flow_rate: flow,
                    ..Coolant::default()
                },
            )
            .unwrap()
        };
        let power = vec![0.2; 24];
        let slow = mk(0.5e-6).steady_state(&power).unwrap();
        let fast = mk(4.0e-6).steady_state(&power).unwrap();
        let peak = |t: &[f64]| t.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        assert!(
            peak(&fast) < peak(&slow),
            "faster flow hotter: {} vs {}",
            peak(&fast),
            peak(&slow)
        );
    }

    #[test]
    fn liquid_beats_air_for_the_same_die_power() {
        // The reason 3D-ICE exists: microchannels pull heat out far more
        // effectively than an air-cooled sink at high power density.
        use crate::model::{Environment, ThermalModel};
        let grid = GridSpec::new(6, 6, 1e-3, 1e-3);
        let power = vec![1.0; 36]; // 36 W over 36 mm² — aggressive
        let air = ThermalModel::new(grid, Layer::default_stack(), Environment::default())
            .unwrap()
            .steady_state(&power)
            .unwrap();
        let liq = stack(6, 6).steady_state(&power).unwrap();
        let peak = |t: &[f64]| t.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        assert!(
            peak(&liq) < peak(&air),
            "liquid {} vs air {}",
            peak(&liq),
            peak(&air)
        );
    }

    #[test]
    fn liquid_transient_converges_to_steady_state() {
        let s = stack(4, 6);
        let power = vec![0.1; 24];
        let steady = s.steady_state(&power).unwrap();
        let mut sim = LiquidTransientSim::new(s, 0.05).unwrap();
        // Liquid loops settle fast (small coolant mass, strong advection).
        sim.run(&power, 400).unwrap();
        for (a, b) in sim.state().iter().zip(steady.iter()) {
            assert!((a - b).abs() < 1e-3, "transient {a} vs steady {b}");
        }
    }

    #[test]
    fn liquid_transient_starts_at_inlet_and_heats() {
        let s = stack(3, 4);
        let mut sim = LiquidTransientSim::new(s, 0.01).unwrap();
        assert!(sim.state().iter().all(|&t| (t - 30.0).abs() < 1e-12));
        let power = vec![0.2; 12];
        let before = sim.die_temperatures()[0];
        sim.run(&power, 30).unwrap();
        assert!(sim.die_temperatures()[0] > before);
        assert!((sim.time() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn liquid_transient_validates() {
        let s = stack(2, 2);
        assert!(LiquidTransientSim::new(s.clone(), 0.0).is_err());
        let mut sim = LiquidTransientSim::new(s, 0.01).unwrap();
        assert!(sim.step(&[1.0]).is_err());
    }

    #[test]
    fn validation_errors() {
        let grid = GridSpec::new(2, 2, 1e-3, 1e-3);
        let die = vec![Layer::new("die", Material::SILICON, 350e-6)];
        let lid = vec![Layer::new("lid", Material::SILICON, 300e-6)];
        assert!(
            LiquidCooledStack::new(grid, vec![], lid.clone(), 1e-4, Coolant::default()).is_err()
        );
        assert!(
            LiquidCooledStack::new(grid, die.clone(), vec![], 1e-4, Coolant::default()).is_err()
        );
        assert!(
            LiquidCooledStack::new(grid, die.clone(), lid.clone(), 0.0, Coolant::default())
                .is_err()
        );
        let bad = Coolant {
            flow_rate: 0.0,
            ..Coolant::default()
        };
        assert!(LiquidCooledStack::new(grid, die.clone(), lid.clone(), 1e-4, bad).is_err());
        let s = LiquidCooledStack::new(grid, die, lid, 1e-4, Coolant::default()).unwrap();
        assert!(s.steady_state(&[1.0]).is_err());
    }
}
