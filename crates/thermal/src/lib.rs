//! A compact transient thermal simulator in the style of 3D-ICE.
//!
//! The EigenMaps paper builds its design-time dataset by simulating an
//! UltraSPARC T1 with 3D-ICE (Sridhar et al., ICCAD 2010), a compact
//! transient thermal model validated against CFD. 3D-ICE itself is not a
//! Rust library and its inputs are not redistributable, so this crate
//! re-implements the same modelling family from scratch:
//!
//! * a 3-D finite-volume RC network over a layered stack
//!   ([`ThermalModel`]): silicon die, TIM, copper spreader, heat-sink base,
//!   with adiabatic side walls and a convective top boundary;
//! * steady-state solves (`G·T = P`) via preconditioned conjugate
//!   gradients;
//! * unconditionally-stable backward-Euler transient stepping
//!   ([`TransientSim`]) with warm-started CG, which is what generates the
//!   thermal-map snapshots consumed by the PCA stage.
//!
//! Cell indexing follows the paper's column-stacking convention
//! (`i = row + col·H`), so the die-layer slice of a state vector *is* a
//! vectorized thermal map.
//!
//! # Examples
//!
//! ```
//! use eigenmaps_thermal::{GridSpec, ThermalModel, TransientSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = ThermalModel::with_default_stack(GridSpec::new(8, 10, 1.0e-3, 1.0e-3))?;
//! let mut sim = TransientSim::new(model, 1.0e-3)?;
//!
//! // A hot column of cells (e.g. a busy core) for 50 ms...
//! let mut power = vec![0.01; 80];
//! for r in 0..8 {
//!     power[r + 2 * 8] = 0.25;
//! }
//! sim.run(&power, 50)?;
//! let map = sim.die_temperatures();
//! // ...heats the powered column above the rest of the die.
//! assert!(map[2 * 8] > map[7 * 8]);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod liquid;
pub mod material;
pub mod model;
pub mod transient;

pub use error::{Result, ThermalError};
pub use liquid::{Coolant, LiquidCooledStack, LiquidTransientSim};
pub use material::{Layer, Material};
pub use model::{Environment, GridSpec, ThermalModel};
pub use transient::TransientSim;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::error::{Result, ThermalError};
    pub use crate::liquid::{Coolant, LiquidCooledStack, LiquidTransientSim};
    pub use crate::material::{Layer, Material};
    pub use crate::model::{Environment, GridSpec, ThermalModel};
    pub use crate::transient::TransientSim;
}
