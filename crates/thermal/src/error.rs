//! Error type for the thermal simulator.

use std::error::Error;
use std::fmt;

use eigenmaps_linalg::LinalgError;

/// Errors produced while building or running a thermal model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A model parameter was physically or structurally invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        context: &'static str,
    },
    /// The supplied power map had the wrong number of cells.
    PowerShapeMismatch {
        /// Cells expected (`rows·cols` of the die layer).
        expected: usize,
        /// Cells received.
        found: usize,
    },
    /// The inner linear solver failed.
    Solver(LinalgError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidConfig { context } => {
                write!(f, "invalid thermal model configuration: {context}")
            }
            ThermalError::PowerShapeMismatch { expected, found } => write!(
                f,
                "power map has {found} cells but the die layer has {expected}"
            ),
            ThermalError::Solver(e) => write!(f, "thermal solver failed: {e}"),
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ThermalError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ThermalError {
    fn from(e: LinalgError) -> Self {
        ThermalError::Solver(e)
    }
}

/// Convenience alias for thermal-simulation results.
pub type Result<T> = std::result::Result<T, ThermalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ThermalError::PowerShapeMismatch {
            expected: 100,
            found: 99,
        };
        assert!(e.to_string().contains("99"));
        let e = ThermalError::InvalidConfig {
            context: "no layers",
        };
        assert!(e.to_string().contains("no layers"));
    }

    #[test]
    fn source_chains_to_linalg() {
        let e = ThermalError::from(LinalgError::Singular { context: "lu" });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("singular"));
    }
}
