//! Property-based tests for the linear-algebra kernels.
//!
//! These check algebraic invariants (orthogonality, residual orthogonality,
//! factorization round-trips, norm identities) on randomly generated
//! matrices rather than hand-picked cases.

use eigenmaps_linalg::prelude::*;
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-10, 10] and bounded shape.
fn matrix_strategy(
    rows: std::ops::RangeInclusive<usize>,
    cols: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

/// Strategy: a tall matrix (rows >= cols) for QR/SVD properties.
fn tall_matrix_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=6, 0usize..=6).prop_flat_map(|(c, extra)| {
        let r = c + extra;
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized"))
    })
}

/// Strategy: a symmetric matrix built as (A + Aᵀ)/2.
fn symmetric_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(-5.0..5.0f64, n * n).prop_map(move |data| {
            let a = Matrix::from_vec(n, n, data).expect("sized");
            let at = a.transpose();
            let mut s = a.add(&at).expect("same shape");
            s.scale_mut(0.5);
            s
        })
    })
}

/// Strategy: an SPD matrix built as AᵀA + n·I.
fn spd_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=7).prop_flat_map(|n| {
        proptest::collection::vec(-3.0..3.0f64, n * n).prop_map(move |data| {
            let a = Matrix::from_vec(n, n, data).expect("sized");
            let mut s = a.tr_matmul(&a).expect("square");
            for i in 0..n {
                s[(i, i)] += n as f64;
            }
            s
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(a in matrix_strategy(1..=8, 1..=8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associates_with_vectors(
        a in matrix_strategy(1..=5, 1..=5),
        scale in -3.0..3.0f64,
    ) {
        // (s·A)x == s·(Ax)
        let x: Vec<f64> = (0..a.cols()).map(|i| i as f64 - 1.0).collect();
        let ax = a.matvec(&x).unwrap();
        let mut sa = a.clone();
        sa.scale_mut(scale);
        let sax = sa.matvec(&x).unwrap();
        for (l, r) in sax.iter().zip(ax.iter()) {
            prop_assert!((l - scale * r).abs() < 1e-9);
        }
    }

    #[test]
    fn tr_matmul_matches_transpose_matmul(
        a in matrix_strategy(1..=6, 1..=6),
        b in matrix_strategy(1..=6, 1..=6),
    ) {
        prop_assume!(a.rows() == b.rows());
        let fast = a.tr_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        prop_assert!(fast.sub(&slow).unwrap().norm_max() < 1e-10);
    }

    #[test]
    fn qr_q_is_orthonormal_and_reproduces_a(a in tall_matrix_strategy()) {
        let qr = Qr::new(&a).unwrap();
        let q = qr.thin_q();
        let n = a.cols();
        let qtq = q.tr_matmul(&q).unwrap();
        prop_assert!(qtq.sub(&Matrix::identity(n)).unwrap().norm_max() < 1e-9);
        let back = q.matmul(&qr.r()).unwrap();
        prop_assert!(back.sub(&a).unwrap().norm_max() < 1e-8);
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns(a in tall_matrix_strategy()) {
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        match lstsq(&a, &b) {
            Ok(x) => {
                let ax = a.matvec(&x).unwrap();
                let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(u, v)| u - v).collect();
                let atr = a.tr_matvec(&r).unwrap();
                let scale = a.norm_fro().max(1.0) * vecops::norm2(&b).max(1.0);
                prop_assert!(vecops::norm_inf(&atr) < 1e-7 * scale);
            }
            // Random matrices may be (numerically) rank deficient; the
            // contract is an error, not a bogus answer.
            Err(LinalgError::Singular { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn svd_reconstructs_and_is_ordered(a in matrix_strategy(1..=7, 1..=7)) {
        let svd = Svd::new(&a).unwrap();
        let back = svd.reconstruct();
        prop_assert!(back.sub(&a).unwrap().norm_max() < 1e-8);
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for &s in &svd.s {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_spectral_norm_bounds_matvec(a in matrix_strategy(1..=6, 1..=6)) {
        let svd = Svd::new(&a).unwrap();
        let x: Vec<f64> = (0..a.cols()).map(|i| ((i + 1) as f64).sin()).collect();
        let ax = a.matvec(&x).unwrap();
        let lhs = vecops::norm2(&ax);
        let rhs = svd.sigma_max() * vecops::norm2(&x);
        prop_assert!(lhs <= rhs * (1.0 + 1e-9) + 1e-12);
    }

    #[test]
    fn sym_eig_residual_and_orthogonality(s in symmetric_strategy()) {
        let n = s.rows();
        let e = sym_eig(&s).unwrap();
        let vtv = e.vectors.tr_matmul(&e.vectors).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(n)).unwrap().norm_max() < 1e-9);
        for (i, &lam) in e.values.iter().enumerate() {
            let v = e.vectors.col(i);
            let av = s.matvec(&v).unwrap();
            for k in 0..n {
                prop_assert!((av[k] - lam * v[k]).abs() < 1e-8 * s.norm_fro().max(1.0));
            }
        }
        // Trace identity.
        let trace: f64 = (0..n).map(|i| s[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn cholesky_solve_agrees_with_lu(a in spd_strategy()) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
        let xc = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let xl = solve(&a, &b).unwrap();
        for (c, l) in xc.iter().zip(xl.iter()) {
            prop_assert!((c - l).abs() < 1e-7 * l.abs().max(1.0));
        }
    }

    #[test]
    fn cg_agrees_with_dense_on_spd(a in spd_strategy()) {
        let n = a.rows();
        // Convert to sparse.
        let mut tb = TripletBuilder::new(n, n);
        for i in 0..n {
            for j in 0..n {
                tb.push(i, j, a[(i, j)]);
            }
        }
        let csr = tb.to_csr();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let sol = cg_solve(&csr, &b, &CgOptions::default()).unwrap();
        let dense = solve(&a, &b).unwrap();
        for (c, d) in sol.x.iter().zip(dense.iter()) {
            prop_assert!((c - d).abs() < 1e-5 * d.abs().max(1.0));
        }
    }

    #[test]
    fn dct_basis_orthonormal(h in 1usize..=6, w in 1usize..=6, frac in 0.1..1.0f64) {
        let n = h * w;
        let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let basis = dct2_basis(h, w, k).unwrap();
        let gram = basis.tr_matmul(&basis).unwrap();
        prop_assert!(gram.sub(&Matrix::identity(k)).unwrap().norm_max() < 1e-10);
    }

    #[test]
    fn dct_lowpass_is_a_projection(h in 2usize..=5, w in 2usize..=5) {
        let n = h * w;
        let k = n / 2 + 1;
        let x: Vec<f64> = (0..n).map(|i| ((i * 3) as f64).cos()).collect();
        let y = dct2_lowpass(&x, h, w, k).unwrap();
        let yy = dct2_lowpass(&y, h, w, k).unwrap();
        // Projection idempotence: P(Px) = Px.
        for (a, b) in y.iter().zip(yy.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
        // Projection never increases energy.
        prop_assert!(vecops::norm2(&y) <= vecops::norm2(&x) + 1e-10);
    }

    #[test]
    fn lu_solve_roundtrip(a in spd_strategy()) {
        // SPD is a convenient source of well-conditioned square matrices.
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        for (u, v) in x.iter().zip(x_true.iter()) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn pca_subspace_beats_random_subspace(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Planted 2-mode data in 6 dims + noise floor.
        let t = 120;
        let data = Matrix::from_fn(t, 6, |i, j| {
            let s1 = ((i as f64) * 0.31).sin() * [3.0, 1.0, 0.0, -1.0, 0.5, 0.2][j];
            let s2 = ((i as f64) * 0.11).cos() * [0.0, 1.0, 2.0, 0.3, -0.7, 1.1][j];
            s1 + s2 + 0.01 * rng.gen::<f64>()
        });
        let pca = Pca::fit_exact(&data, 2).unwrap();

        // Empirical MSE of the PCA subspace...
        let pca_err: f64 = (0..t)
            .map(|i| {
                let x = data.row(i);
                let xh = pca.approximate(x, 2).unwrap();
                vecops::norm2_sq(&vecops::sub(x, &xh))
            })
            .sum();

        // ... must beat a random 2-dim subspace (orthonormalized gaussian).
        let g = Matrix::from_fn(6, 2, |_, _| rng.gen::<f64>() - 0.5);
        let q = orthonormalize(&g).unwrap();
        let mean = pca.mean().to_vec();
        let rand_err: f64 = (0..t)
            .map(|i| {
                let x = vecops::sub(data.row(i), &mean);
                let c = q.tr_matvec(&x).unwrap();
                let xh = q.matvec(&c).unwrap();
                vecops::norm2_sq(&vecops::sub(&x, &xh))
            })
            .sum();
        prop_assert!(pca_err <= rand_err + 1e-9, "pca {pca_err} > random {rand_err}");
    }
}
