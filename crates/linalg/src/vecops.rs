//! Primitive operations on `&[f64]` vectors.
//!
//! These free functions are the innermost kernels of the crate; everything
//! else (QR, SVD, CG, PCA) is built on top of them. They operate on plain
//! slices so callers never need to wrap their data.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths (debug and release).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a * b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return max;
    }
    let mut acc = 0.0;
    for v in x {
        let s = v / max;
        acc += s * s;
    }
    max * acc.sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Infinity norm `max |x_i|`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y ← y + a·x` (the BLAS `axpy` kernel).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a - b).collect()
}

/// Element-wise sum `x + y` as a new vector.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a + b).collect()
}

/// Normalizes `x` to unit Euclidean norm in place and returns the original
/// norm. If the norm is zero the vector is left untouched and `0.0` is
/// returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Arithmetic mean of the entries; `0.0` for an empty slice.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Root-mean-square difference between two vectors.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
#[inline]
pub fn rms_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rms_diff: length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let d = a - b;
        acc += d * d;
    }
    (acc / x.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_is_scaled() {
        // Naive sum of squares would overflow; the scaled version must not.
        let big = vec![1e200, 1e200];
        let n = norm2(&big);
        assert!((n - 1e200 * 2.0_f64.sqrt()).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_zero() {
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = [3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn mean_and_rms() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((rms_diff(&[1.0, 1.0], &[0.0, 0.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
