//! Householder QR factorization and least-squares solves.
//!
//! The reconstruction step of EigenMaps (Theorem 1) is the least-squares
//! solve `min_α ‖x_S − Ψ̃_K α‖₂`; we solve it through a QR factorization of
//! the sensing matrix, which is backward-stable (the normal equations would
//! square the condition number that the sensor-allocation algorithm works so
//! hard to keep small).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Compact Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// Stores the reflectors and `R` factor; `Q` can be formed explicitly with
/// [`Qr::thin_q`] or applied implicitly with [`Qr::apply_qt`].
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::{Matrix, Qr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let qr = Qr::new(&a)?;
/// let q = qr.thin_q();
/// // Qᵀ Q = I
/// let qtq = q.tr_matmul(&q)?;
/// assert!((qtq[(0, 0)] - 1.0).abs() < 1e-12);
/// assert!(qtq[(0, 1)].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: upper triangle holds R, lower part holds the
    /// essential parts of the Householder vectors.
    packed: Matrix,
    /// Scalar factors `tau` of the reflectors `H = I − τ v vᵀ`.
    tau: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (which must have at least as many rows as columns).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `a.rows() < a.cols()`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument {
                context: "qr: matrix must have rows >= cols",
            });
        }
        let mut r = a.clone();
        let mut tau = vec![0.0; n];

        for k in 0..n {
            // Build the Householder vector for column k from rows k..m.
            let mut alpha = r[(k, k)];
            let mut sigma = 0.0;
            for i in (k + 1)..m {
                sigma += r[(i, k)] * r[(i, k)];
            }
            if sigma == 0.0 && alpha >= 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let beta = -(alpha.signum()) * (alpha * alpha + sigma).sqrt();
            let tau_k = (beta - alpha) / beta;
            let scale = 1.0 / (alpha - beta);
            // v = [1, r[k+1..m, k] * scale]
            for i in (k + 1)..m {
                r[(i, k)] *= scale;
            }
            r[(k, k)] = beta;
            tau[k] = tau_k;
            alpha = beta;
            let _ = alpha;

            // Apply H = I − τ v vᵀ to the remaining columns.
            for j in (k + 1)..n {
                let mut w = r[(k, j)];
                for i in (k + 1)..m {
                    w += r[(i, k)] * r[(i, j)];
                }
                w *= tau_k;
                r[(k, j)] -= w;
                for i in (k + 1)..m {
                    let vik = r[(i, k)];
                    r[(i, j)] -= w * vik;
                }
            }
        }
        Ok(Qr { packed: r, tau })
    }

    /// Number of rows of the factorized matrix.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of columns of the factorized matrix.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// Returns the `n × n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.packed[(i, j)] } else { 0.0 })
    }

    /// Applies `Qᵀ` to a vector in place (`b ← Qᵀ b`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != rows`.
    pub fn apply_qt(&self, b: &mut [f64]) -> Result<()> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                context: "qr apply_qt",
                expected: (m, 1),
                found: (b.len(), 1),
            });
        }
        for k in 0..n {
            let tau_k = self.tau[k];
            if tau_k == 0.0 {
                continue;
            }
            let mut w = b[k];
            for i in (k + 1)..m {
                w += self.packed[(i, k)] * b[i];
            }
            w *= tau_k;
            b[k] -= w;
            for i in (k + 1)..m {
                b[i] -= w * self.packed[(i, k)];
            }
        }
        Ok(())
    }

    /// Forms the thin orthonormal factor `Q` (`m × n`).
    pub fn thin_q(&self) -> Matrix {
        let (m, n) = self.packed.shape();
        let mut q = Matrix::zeros(m, n);
        // Apply the reflectors in reverse order to the first n columns of I.
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        for k in (0..n).rev() {
            let tau_k = self.tau[k];
            if tau_k == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut w = q[(k, j)];
                for i in (k + 1)..m {
                    w += self.packed[(i, k)] * q[(i, j)];
                }
                w *= tau_k;
                q[(k, j)] -= w;
                for i in (k + 1)..m {
                    let vik = self.packed[(i, k)];
                    q[(i, j)] -= w * vik;
                }
            }
        }
        q
    }

    /// Solves the least-squares problem `min_x ‖a x − b‖₂` using the stored
    /// factorization.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != rows`.
    /// * [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal
    ///   entry, i.e. the matrix does not have full column rank.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut qtb = b.to_vec();
        let mut x = vec![0.0; self.cols()];
        self.solve_lstsq_into(&mut qtb, &mut x)?;
        Ok(x)
    }

    /// Allocation-free variant of [`Qr::solve_lstsq`] for hot loops that
    /// solve against many right-hand sides: `b` is consumed as scratch
    /// (overwritten with `Qᵀb`) and the solution is written into `x`. The
    /// arithmetic is identical to [`Qr::solve_lstsq`], so results match it
    /// bitwise.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != rows` or
    ///   `x.len() != cols`.
    /// * [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal
    ///   entry, i.e. the matrix does not have full column rank.
    pub fn solve_lstsq_into(&self, b: &mut [f64], x: &mut [f64]) -> Result<()> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                context: "qr solve_lstsq",
                expected: (m, 1),
                found: (b.len(), 1),
            });
        }
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "qr solve_lstsq solution",
                expected: (n, 1),
                found: (x.len(), 1),
            });
        }
        self.apply_qt(b)?;
        // Back substitution on the leading n×n triangle. Entries x[j] for
        // j > i are always written before they are read, so a dirty `x`
        // buffer is fine.
        let tol = self.r_diag_tolerance();
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            let d = self.packed[(i, i)];
            if d.abs() <= tol {
                return Err(LinalgError::Singular {
                    context: "qr solve_lstsq",
                });
            }
            x[i] = s / d;
        }
        Ok(())
    }

    /// Numerical rank of the factorized matrix estimated from the diagonal
    /// of `R` (cheap; for a rigorous rank use the SVD).
    pub fn rank_estimate(&self) -> usize {
        let tol = self.r_diag_tolerance();
        (0..self.cols())
            .filter(|&i| self.packed[(i, i)].abs() > tol)
            .count()
    }

    fn r_diag_tolerance(&self) -> f64 {
        let n = self.cols();
        let mut max = 0.0_f64;
        for i in 0..n {
            max = max.max(self.packed[(i, i)].abs());
        }
        max * (self.rows().max(1) as f64) * f64::EPSILON
    }
}

/// One-shot least squares: solves `min_x ‖a x − b‖₂`.
///
/// Convenience wrapper over [`Qr::new`] + [`Qr::solve_lstsq`]; prefer keeping
/// a [`Qr`] around when solving against many right-hand sides (as the
/// EigenMaps reconstructor does — one factorization per sensor layout, one
/// solve per thermal snapshot).
///
/// # Errors
///
/// Propagates the errors of [`Qr::new`] and [`Qr::solve_lstsq`].
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::{lstsq, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fit a line y = c0 + c1 t through three points.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
/// let x = lstsq(&a, &[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::new(a)?.solve_lstsq(b)
}

/// Orthonormalizes the columns of `a` in place via QR, returning the thin-Q
/// factor (`m × n`, `m ≥ n`).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `a.rows() < a.cols()`.
pub fn orthonormalize(a: &Matrix) -> Result<Matrix> {
    Ok(Qr::new(a)?.thin_q())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn qr_reconstructs_a() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[1.0, 3.0, -2.0],
            &[0.0, 1.0, 1.0],
            &[4.0, 0.0, 2.0],
        ]);
        let qr = Qr::new(&a).unwrap();
        let q = qr.thin_q();
        let r = qr.r();
        let qr_prod = q.matmul(&r).unwrap();
        assert!(qr_prod.sub(&a).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn thin_q_is_orthonormal() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) as f64).sin() + 0.1);
        let q = Qr::new(&a).unwrap().thin_q();
        let qtq = q.tr_matmul(&q).unwrap();
        let err = qtq.sub(&Matrix::identity(3)).unwrap().norm_max();
        assert!(err < 1e-12, "QᵀQ deviates from I by {err}");
    }

    #[test]
    fn apply_qt_matches_explicit_q() {
        let a = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64).cos());
        let qr = Qr::new(&a).unwrap();
        let q = qr.thin_q();
        let b = [1.0, -2.0, 0.5, 3.0, 1.5];
        let mut qtb = b.to_vec();
        qr.apply_qt(&mut qtb).unwrap();
        let explicit = q.tr_matvec(&b).unwrap();
        for i in 0..3 {
            assert_close(qtb[i], explicit[i], 1e-12);
        }
    }

    #[test]
    fn lstsq_exact_system() {
        // Square, well-conditioned system: solution must be exact.
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let x = lstsq(&a, &[9.0, 8.0]).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_range() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [0.0, 1.0, 1.0, 3.0];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r = vecops::sub(&b, &ax);
        let atr = a.tr_matvec(&r).unwrap();
        assert!(vecops::norm_inf(&atr) < 1e-12, "Aᵀr = {atr:?}");
    }

    #[test]
    fn solve_into_matches_allocating_solve_bitwise() {
        let a = Matrix::from_fn(7, 3, |i, j| ((i * 5 + j * 3) as f64 * 0.31).sin() + 0.2);
        let qr = Qr::new(&a).unwrap();
        let b: Vec<f64> = (0..7).map(|i| (i as f64 * 1.7).cos()).collect();
        let x_alloc = qr.solve_lstsq(&b).unwrap();
        let mut scratch = b.clone();
        let mut x = vec![123.0; 3]; // dirty buffer must not matter
        qr.solve_lstsq_into(&mut scratch, &mut x).unwrap();
        assert_eq!(x, x_alloc);
        // Shape checks.
        assert!(qr.solve_lstsq_into(&mut [0.0; 2], &mut [0.0; 3]).is_err());
        assert!(qr.solve_lstsq_into(&mut b.clone(), &mut [0.0; 2]).is_err());
    }

    #[test]
    fn lstsq_rank_deficient_errors() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(matches!(
            lstsq(&a, &[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::new(&a).is_err());
    }

    #[test]
    fn rank_estimate() {
        let full = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(Qr::new(&full).unwrap().rank_estimate(), 2);
        let deficient = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert_eq!(Qr::new(&deficient).unwrap().rank_estimate(), 1);
    }

    #[test]
    fn orthonormalize_identity_like() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]);
        let q = orthonormalize(&a).unwrap();
        let qtq = q.tr_matmul(&q).unwrap();
        assert!(qtq.sub(&Matrix::identity(2)).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn qr_on_column_of_zeros_then_identity() {
        // First column zero: tau[0] = 0 path.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 0.0]]);
        let qr = Qr::new(&a).unwrap();
        assert_eq!(qr.rank_estimate(), 1);
    }
}
