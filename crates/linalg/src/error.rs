//! Error type shared by all linear-algebra kernels.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// `expected` and `found` are `(rows, cols)` pairs; the `context` names
    /// the operation that failed.
    ShapeMismatch {
        /// Operation that detected the mismatch (e.g. `"matmul"`).
        context: &'static str,
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape it actually received.
        found: (usize, usize),
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix was singular (or numerically singular) and the requested
    /// factorization or solve cannot proceed.
    Singular {
        /// Operation that detected singularity (e.g. `"lu_solve"`).
        context: &'static str,
    },
    /// A symmetric positive-definite matrix was required (Cholesky, CG).
    NotPositiveDefinite {
        /// Pivot index where positive-definiteness failed.
        pivot: usize,
    },
    /// An iterative method did not reach its tolerance.
    NotConverged {
        /// Algorithm that failed to converge (e.g. `"jacobi_eig"`).
        context: &'static str,
        /// Number of iterations or sweeps performed.
        iterations: usize,
    },
    /// The input matrix did not have full column rank where required.
    RankDeficient {
        /// Numerical rank detected.
        rank: usize,
        /// Rank required by the operation.
        required: usize,
    },
    /// An argument was out of its legal range (e.g. `k > n` in a top-k
    /// factorization).
    InvalidArgument {
        /// Human-readable description of the violated precondition.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch in {context}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "square matrix required, found {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { context } => {
                write!(f, "matrix is singular in {context}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotConverged {
                context,
                iterations,
            } => write!(
                f,
                "{context} did not converge after {iterations} iterations"
            ),
            LinalgError::RankDeficient { rank, required } => {
                write!(f, "rank deficient: rank {rank} but {required} required")
            }
            LinalgError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
        }
    }
}

impl Error for LinalgError {}

/// Convenience alias used by every fallible function in the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            context: "matmul",
            expected: (2, 3),
            found: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_trait_object() {
        fn as_err() -> Box<dyn Error + Send + Sync + 'static> {
            Box::new(LinalgError::Singular { context: "test" })
        }
        assert!(as_err().to_string().contains("singular"));
    }

    #[test]
    fn not_converged_display() {
        let e = LinalgError::NotConverged {
            context: "jacobi_eig",
            iterations: 42,
        };
        assert_eq!(
            e.to_string(),
            "jacobi_eig did not converge after 42 iterations"
        );
    }
}
