//! Dense and sparse linear-algebra kernels for the EigenMaps reproduction.
//!
//! The EigenMaps pipeline needs a specific, fairly narrow slice of numerical
//! linear algebra, all of which is implemented here from scratch on top of
//! `std` (no BLAS/LAPACK bindings, no `nalgebra`):
//!
//! * [`Matrix`] — dense row-major matrices (row selection is free, which the
//!   sensing matrix `Ψ̃_K` relies on);
//! * [`Qr`]/[`lstsq`] — Householder QR and backward-stable least squares
//!   (the reconstruction step of Theorem 1);
//! * [`sym_eig`] — cyclic Jacobi symmetric eigendecomposition;
//! * [`Svd`]/[`cond`] — one-sided Jacobi SVD; `κ₂` is the sensor-placement
//!   figure of merit;
//! * [`Pca`] — randomized top-K covariance eigenanalysis (the EigenMaps
//!   basis itself);
//! * [`dct`] — orthonormal DCT-II bases with zigzag ordering (the k-LSE
//!   baseline subspace);
//! * [`sparse`] — CSR matrices and preconditioned CG (the thermal
//!   simulator's implicit stepper);
//! * [`Lu`], [`Cholesky`] — direct dense solvers.
//!
//! # Examples
//!
//! Reconstructing a field from point samples, the core EigenMaps operation:
//!
//! ```
//! use eigenmaps_linalg::{lstsq, Matrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 2-column basis over 4 locations, sampled at rows {0, 2, 3}.
//! let basis = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5], &[0.0, 1.0], &[1.0, 1.0]]);
//! let sensing = basis.select_rows(&[0, 2, 3])?;
//! let readings = [2.0, 3.0, 5.0]; // = basis rows · α for α = (2, 3)
//! let alpha = lstsq(&sensing, &readings)?;
//! let full_field = basis.matvec(&alpha)?;
//! assert!((full_field[1] - 2.5).abs() < 1e-12); // recovered unsampled cell
//! # Ok(())
//! # }
//! ```

// Dense numeric kernels mix indexed access to `Matrix` entries and slice
// elements within one loop; rewriting those as iterator chains would
// obscure the textbook algorithms they implement.
#![allow(clippy::needless_range_loop)]

pub mod chol;
pub mod dct;
pub mod eig;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod pca;
pub mod qr;
pub mod sparse;
pub mod svd;
pub mod tridiag;
pub mod vecops;

pub use chol::Cholesky;
pub use eig::{sym_eig, sym_eig_topk, SymEig};
pub use error::{LinalgError, Result};
pub use lu::{solve, Lu};
pub use matrix::Matrix;
pub use pca::{Pca, PcaOptions};
pub use qr::{lstsq, orthonormalize, Qr};
pub use svd::{cond, rank, Svd};
pub use tridiag::sym_eig_ql;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::chol::Cholesky;
    pub use crate::dct::{dct2_basis, dct2_lowpass, dct_matrix, zigzag_order};
    pub use crate::eig::{sym_eig, sym_eig_topk, SymEig};
    pub use crate::error::{LinalgError, Result};
    pub use crate::lu::{solve, Lu};
    pub use crate::matrix::Matrix;
    pub use crate::pca::{Pca, PcaOptions};
    pub use crate::qr::{lstsq, orthonormalize, Qr};
    pub use crate::sparse::{
        bicgstab_solve, cg_solve, CgOptions, CgSolution, CsrMatrix, TripletBuilder,
    };
    pub use crate::svd::{cond, rank, Svd};
    pub use crate::tridiag::sym_eig_ql;
    pub use crate::vecops;
}
