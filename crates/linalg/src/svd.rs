//! Singular value decomposition via the one-sided Jacobi (Hestenes) method,
//! plus the condition-number helpers that drive sensor allocation.
//!
//! The paper's sensor-allocation criterion (Theorem 1) is the condition
//! number `κ(Ψ̃_K)` of the `M × K` sensing matrix, with `M, K ≤ ~64` — small
//! dense problems where one-sided Jacobi is both simple and highly accurate
//! (it computes tiny singular values to high relative accuracy, exactly what
//! a condition-number estimate needs).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vecops;

/// Thin singular value decomposition `A = U Σ Vᵀ`.
///
/// For an `m × n` input with `m ≥ n`: `u` is `m × n` with orthonormal
/// columns, `s` holds the `n` singular values in descending order, and `vt`
/// is `n × n` orthogonal. Inputs with `m < n` are handled by transposition.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (thin).
    pub u: Matrix,
    /// Singular values, descending, all non-negative.
    pub s: Vec<f64>,
    /// Transposed right singular vectors.
    pub vt: Matrix,
}

const MAX_SWEEPS: usize = 60;

impl Svd {
    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotConverged`] if the Jacobi sweeps fail to
    /// orthogonalize the columns (not observed for finite input).
    ///
    /// # Examples
    ///
    /// ```
    /// use eigenmaps_linalg::{Matrix, Svd};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
    /// let svd = Svd::new(&a)?;
    /// assert!((svd.s[0] - 4.0).abs() < 1e-12);
    /// assert!((svd.s[1] - 3.0).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m >= n {
            Self::tall(a)
        } else {
            // SVD(Aᵀ) = V Σ Uᵀ — swap factors.
            let t = Self::tall(&a.transpose())?;
            Ok(Svd {
                u: t.vt.transpose(),
                s: t.s,
                vt: t.u.transpose(),
            })
        }
    }

    /// One-sided Jacobi on a tall (or square) matrix.
    fn tall(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        debug_assert!(m >= n);
        if n == 0 {
            return Ok(Svd {
                u: Matrix::zeros(m, 0),
                s: Vec::new(),
                vt: Matrix::zeros(0, 0),
            });
        }
        // Work on columns of W; accumulate rotations in V.
        let mut w = a.clone();
        let mut v = Matrix::identity(n);

        let scale = a.norm_max();
        if scale == 0.0 {
            // Zero matrix: all singular values zero, pick canonical factors.
            let mut u = Matrix::zeros(m, n);
            for j in 0..n {
                u[(j, j)] = 1.0;
            }
            return Ok(Svd {
                u,
                s: vec![0.0; n],
                vt: Matrix::identity(n),
            });
        }
        let tol = f64::EPSILON * (m as f64).sqrt();
        // Columns whose norm has collapsed to roundoff level are exact
        // zeros for our purposes; rotating against them cycles forever
        // because the correlation *ratio* of pure noise stays O(1).
        let dead = scale * f64::EPSILON * (m.max(n) as f64);
        let dead_sq = dead * dead;

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries of the column pair.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let wip = w[(i, p)];
                        let wiq = w[(i, q)];
                        app += wip * wip;
                        aqq += wiq * wiq;
                        apq += wip * wiq;
                    }
                    if app <= dead_sq || aqq <= dead_sq {
                        continue;
                    }
                    if apq.abs() <= tol * (app * aqq).sqrt() {
                        continue;
                    }
                    rotated = true;
                    // Jacobi rotation that zeroes the (p,q) Gram entry.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for i in 0..m {
                        let wip = w[(i, p)];
                        let wiq = w[(i, q)];
                        w[(i, p)] = c * wip - s * wiq;
                        w[(i, q)] = s * wip + c * wiq;
                    }
                    for i in 0..n {
                        let vip = v[(i, p)];
                        let viq = v[(i, q)];
                        v[(i, p)] = c * vip - s * viq;
                        v[(i, q)] = s * vip + c * viq;
                    }
                }
            }
            if !rotated {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(LinalgError::NotConverged {
                context: "jacobi_svd",
                iterations: MAX_SWEEPS,
            });
        }

        // Column norms are the singular values.
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|j| (vecops::norm2(&w.col(j)), j)).collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN singular value"));

        let mut u = Matrix::zeros(m, n);
        let mut vt = Matrix::zeros(n, n);
        let mut s = Vec::with_capacity(n);
        for (dst, &(sigma, src)) in pairs.iter().enumerate() {
            s.push(sigma);
            if sigma > 0.0 {
                for i in 0..m {
                    u[(i, dst)] = w[(i, src)] / sigma;
                }
            } else {
                // Null direction: leave a zero column (callers treat rank
                // via `rank()`); still record V.
                u[(dst.min(m - 1), dst)] = 1.0;
            }
            for i in 0..n {
                vt[(dst, i)] = v[(i, src)];
            }
        }
        Ok(Svd { u, s, vt })
    }

    /// Largest singular value (the spectral norm). Zero for empty input.
    pub fn sigma_max(&self) -> f64 {
        self.s.first().copied().unwrap_or(0.0)
    }

    /// Smallest singular value. Zero for empty input.
    pub fn sigma_min(&self) -> f64 {
        self.s.last().copied().unwrap_or(0.0)
    }

    /// 2-norm condition number `κ₂ = σ_max / σ_min`.
    ///
    /// Returns `f64::INFINITY` when the matrix is rank deficient
    /// (`σ_min = 0`).
    pub fn cond(&self) -> f64 {
        let smin = self.sigma_min();
        if smin == 0.0 {
            f64::INFINITY
        } else {
            self.sigma_max() / smin
        }
    }

    /// Numerical rank: number of singular values above
    /// `σ_max · max(m, n) · ε`.
    pub fn rank(&self) -> usize {
        let (m, n) = self.u.shape();
        let tol = self.sigma_max() * (m.max(n).max(1) as f64) * f64::EPSILON;
        self.s.iter().filter(|&&x| x > tol).count()
    }

    /// Reassembles `U Σ Vᵀ` (mainly for tests and diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        for j in 0..self.s.len() {
            for i in 0..us.rows() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.vt).expect("shape invariant")
    }
}

/// Condition number `κ₂(A)` of an arbitrary dense matrix.
///
/// This is the figure of merit the greedy sensor-allocation algorithm
/// minimizes (Sec. 3.3 of the paper).
///
/// # Errors
///
/// Propagates [`Svd::new`] errors.
pub fn cond(a: &Matrix) -> Result<f64> {
    Ok(Svd::new(a)?.cond())
}

/// Numerical rank of a dense matrix via SVD.
///
/// # Errors
///
/// Propagates [`Svd::new`] errors.
pub fn rank(a: &Matrix) -> Result<usize> {
    Ok(Svd::new(a)?.rank())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_svd() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.s[0] - 4.0).abs() < 1e-12);
        assert!((svd.s[1] - 3.0).abs() < 1e-12);
        assert!((svd.cond() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(svd.rank(), 2);
    }

    #[test]
    fn reconstruction_error_small() {
        let a = Matrix::from_fn(7, 4, |i, j| ((i + 1) as f64 * (j + 1) as f64).sin());
        let svd = Svd::new(&a).unwrap();
        let err = svd.reconstruct().sub(&a).unwrap().norm_max();
        assert!(err < 1e-12, "reconstruction error {err}");
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = Matrix::from_fn(6, 4, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u.tr_matmul(&svd.u).unwrap();
        assert!(utu.sub(&Matrix::identity(4)).unwrap().norm_max() < 1e-12);
        let v = svd.vt.transpose();
        let vtv = v.tr_matmul(&v).unwrap();
        assert!(vtv.sub(&Matrix::identity(4)).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 2.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.vt.shape(), (2, 3));
        assert!((svd.s[0] - 2.0).abs() < 1e-12);
        assert!((svd.s[1] - 1.0).abs() < 1e-12);
        let err = svd.reconstruct().sub(&a).unwrap().norm_max();
        assert!(err < 1e-12);
    }

    #[test]
    fn rank_deficient_cond_is_infinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!(svd.cond().is_infinite());
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.s, vec![0.0, 0.0]);
        assert_eq!(svd.rank(), 0);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(3, 0);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.s.is_empty());
        assert_eq!(svd.sigma_max(), 0.0);
    }

    #[test]
    fn singular_values_match_eigs_of_gram() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).cos());
        let svd = Svd::new(&a).unwrap();
        let gram = a.tr_matmul(&a).unwrap();
        let eig = crate::eig::sym_eig(&gram).unwrap();
        for (sv, ev) in svd.s.iter().zip(eig.values.iter()) {
            assert!((sv * sv - ev).abs() < 1e-10, "σ²={} λ={}", sv * sv, ev);
        }
    }

    #[test]
    fn orthonormal_matrix_has_cond_one() {
        // Rotation matrix: perfectly conditioned.
        let th = 0.7_f64;
        let a = Matrix::from_rows(&[&[th.cos(), -th.sin()], &[th.sin(), th.cos()]]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.cond() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cond_helper_matches_method() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
        assert!((cond(&a).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(rank(&a).unwrap(), 2);
    }
}
