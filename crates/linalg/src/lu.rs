//! LU factorization with partial pivoting.
//!
//! Used for general square solves (e.g. inverting the small `K × K` normal
//! matrix in diagnostics) and for determinants in tests.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// LU factorization with partial pivoting: `P A = L U`.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed `L` (unit lower, below diagonal) and `U` (upper incl. diagonal).
    packed: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), for determinants.
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for rectangular input.
    /// * [`LinalgError::Singular`] when a pivot is exactly zero in exact
    ///   arithmetic terms (column of zeros below and at the pivot).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return Err(LinalgError::Singular { context: "lu" });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let l = lu[(i, k)] / pivot;
                lu[(i, k)] = l;
                if l != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= l * ukj;
                    }
                }
            }
        }
        Ok(Lu {
            packed: lu,
            perm,
            sign,
        })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.packed.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "lu solve",
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // Forward substitution with permuted b (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for j in 0..i {
                s -= self.packed[(i, j)] * y[j];
            }
            y[i] = s;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            x[i] = s / self.packed[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.packed.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.packed[(i, i)];
        }
        d
    }

    /// Computes the inverse matrix column by column.
    ///
    /// # Errors
    ///
    /// Propagates [`Lu::solve`] errors (cannot occur for a successfully
    /// factorized matrix).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.packed.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let x = self.solve(&e)?;
            inv.set_col(j, &x);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// One-shot solve of `A x = b` via LU with partial pivoting.
///
/// # Errors
///
/// Propagates [`Lu::new`] and [`Lu::solve`] errors.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn det_and_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((Lu::new(&b).unwrap().det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_rejected() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(2)).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
        let x = solve(&a, &[2.0, 2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_shape_mismatch() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
