//! Symmetric eigendecomposition via Householder tridiagonalization followed
//! by the implicit-shift QL iteration.
//!
//! This is the classic `tred2`/`tql2` pair (EISPACK lineage): `O(n³)` with
//! a much smaller constant than cyclic Jacobi, making full spectra of
//! mid-sized covariance matrices (hundreds to a few thousand cells)
//! practical. The crate keeps both paths — Jacobi ([`crate::eig`]) for its
//! simplicity and accuracy, QL for speed — and cross-validates them in
//! tests; [`crate::pca::Pca::fit_exact`] sized problems are the intended
//! consumer.

use crate::eig::SymEig;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Maximum QL iterations per eigenvalue before declaring failure.
const MAX_ITER: usize = 50;

/// Computes the full eigendecomposition of a symmetric matrix with the
/// tridiagonalization + implicit-shift QL algorithm. Results follow the
/// same convention as [`crate::eig::sym_eig`]: eigenvalues descending,
/// eigenvectors in matching columns.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::InvalidArgument`] if `a` is not symmetric to a loose
///   tolerance.
/// * [`LinalgError::NotConverged`] if QL fails on some eigenvalue (not
///   observed for finite symmetric input).
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::{tridiag::sym_eig_ql, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = sym_eig_ql(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn sym_eig_ql(a: &Matrix) -> Result<SymEig> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let sym_tol = 1e-8 * a.norm_max().max(1e-300);
    if !a.is_symmetric(sym_tol) {
        return Err(LinalgError::InvalidArgument {
            context: "sym_eig_ql: matrix is not symmetric",
        });
    }
    if n == 0 {
        return Ok(SymEig {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }

    // ---- Householder tridiagonalization (tred2) ---------------------------
    // `z` accumulates the orthogonal transform; `d` diag, `e` sub-diag.
    let mut z = a.clone();
    // Exact symmetrization of the tolerated asymmetry.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (z[(i, j)] + z[(j, i)]);
            z[(i, j)] = avg;
            z[(j, i)] = avg;
        }
    }
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if i > 1 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let fj = z[(i, j)];
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    for k in 0..=j {
                        let delta = fj * e[k] + gj * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            // Accumulate the transform.
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let zkj = z[(k, i)];
                    z[(k, j)] -= g * zkj;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }

    // ---- implicit-shift QL (tql2) -----------------------------------------
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split at.
            let mut msplit = l;
            while msplit + 1 < n {
                let dd = d[msplit].abs() + d[msplit + 1].abs();
                if e[msplit].abs() <= f64::EPSILON * dd {
                    break;
                }
                msplit += 1;
            }
            if msplit == l {
                break;
            }
            iter += 1;
            if iter > MAX_ITER {
                return Err(LinalgError::NotConverged {
                    context: "ql_implicit_shift",
                    iterations: MAX_ITER,
                });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[msplit] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..msplit).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[msplit] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvectors.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && msplit > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[msplit] = 0.0;
        }
    }

    // ---- sort descending ---------------------------------------------------
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for k in 0..n {
            vectors[(k, dst)] = z[(k, src)];
        }
    }
    Ok(SymEig { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::sym_eig;

    fn residual(a: &Matrix, eig: &SymEig) -> f64 {
        let mut worst = 0.0_f64;
        for (i, &lam) in eig.values.iter().enumerate() {
            let v = eig.vectors.col(i);
            let av = a.matvec(&v).unwrap();
            for k in 0..v.len() {
                worst = worst.max((av[k] - lam * v[k]).abs());
            }
        }
        worst
    }

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let raw = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>() * 2.0 - 1.0);
        let mut s = raw.add(&raw.transpose()).unwrap();
        s.scale_mut(0.5);
        s
    }

    #[test]
    fn ql_matches_known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eig_ql(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-12);
    }

    #[test]
    fn ql_matches_jacobi_spectra() {
        for seed in 0..5 {
            let a = random_symmetric(12, seed);
            let ql = sym_eig_ql(&a).unwrap();
            let ja = sym_eig(&a).unwrap();
            for (q, j) in ql.values.iter().zip(ja.values.iter()) {
                assert!((q - j).abs() < 1e-9, "seed {seed}: {q} vs {j}");
            }
            assert!(residual(&a, &ql) < 1e-9 * a.norm_fro().max(1.0));
        }
    }

    #[test]
    fn ql_eigenvectors_orthonormal() {
        let a = random_symmetric(20, 99);
        let e = sym_eig_ql(&a).unwrap();
        let vtv = e.vectors.tr_matmul(&e.vectors).unwrap();
        let err = vtv.sub(&Matrix::identity(20)).unwrap().norm_max();
        assert!(err < 1e-10, "VᵀV error {err}");
    }

    #[test]
    fn ql_diagonal_and_identity() {
        let d = Matrix::diag(&[3.0, -1.0, 7.0, 0.0]);
        let e = sym_eig_ql(&d).unwrap();
        assert_eq!(e.values, vec![7.0, 3.0, 0.0, -1.0]);
        let i = Matrix::identity(5);
        let e = sym_eig_ql(&i).unwrap();
        assert!(e.values.iter().all(|&v| (v - 1.0).abs() < 1e-14));
    }

    #[test]
    fn ql_handles_already_tridiagonal() {
        // Tridiagonal Toeplitz has known eigenvalues 2 − 2cos(kπ/(n+1)).
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let e = sym_eig_ql(&a).unwrap();
        let mut expect: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expect.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (got, want) in e.values.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn ql_rejects_bad_input() {
        assert!(sym_eig_ql(&Matrix::zeros(2, 3)).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(sym_eig_ql(&asym).is_err());
    }

    #[test]
    fn ql_trace_preserved() {
        let a = random_symmetric(15, 7);
        let e = sym_eig_ql(&a).unwrap();
        let trace: f64 = (0..15).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9 * trace.abs().max(1.0));
    }

    #[test]
    fn ql_empty() {
        let e = sym_eig_ql(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }
}
