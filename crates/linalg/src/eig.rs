//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The Jacobi method is slow for very large matrices but extremely accurate
//! and simple to verify — ideal for the small dense problems this crate
//! actually solves directly (`K × K` Rayleigh–Ritz matrices, covariance
//! matrices of coarse test grids). Large covariances are handled by the
//! randomized projector in [`crate::pca`], which reduces to a small Jacobi
//! problem.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V Λ Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order (the convention used by
/// the paper: `λ₀ ≥ λ₁ ≥ …`), and `vectors.col(i)` is the eigenvector of
/// `values[i]`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, matching `values`.
    pub vectors: Matrix,
}

/// Maximum number of cyclic Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is rectangular.
/// * [`LinalgError::InvalidArgument`] if `a` is not symmetric to a loose
///   tolerance (`1e-8 · ‖A‖_max`).
/// * [`LinalgError::NotConverged`] if the off-diagonal norm fails to reach
///   machine-precision levels in 100 sweeps (does not happen for genuine
///   symmetric input).
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::{sym_eig, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = sym_eig(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-12);
/// assert!((eig.values[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn sym_eig(a: &Matrix) -> Result<SymEig> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let sym_tol = 1e-8 * a.norm_max().max(1e-300);
    if !a.is_symmetric(sym_tol) {
        return Err(LinalgError::InvalidArgument {
            context: "sym_eig: matrix is not symmetric",
        });
    }
    if n == 0 {
        return Ok(SymEig {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }

    let mut w = a.clone();
    // Symmetrize exactly to remove the tolerated asymmetry.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (w[(i, j)] + w[(j, i)]);
            w[(i, j)] = avg;
            w[(j, i)] = avg;
        }
    }
    let mut v = Matrix::identity(n);
    let fro = w.norm_fro().max(f64::MIN_POSITIVE);
    let tol = f64::EPSILON * fro;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += w[(i, j)] * w[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                // Classic stable rotation computation (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/cols p and q of W = JᵀWJ.
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged {
        // One last check: the sweeps may have converged exactly at the
        // boundary iteration.
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += w[(i, j)] * w[(i, j)];
            }
        }
        if off.sqrt() > tol * 10.0 {
            return Err(LinalgError::NotConverged {
                context: "jacobi_eig",
                iterations: MAX_SWEEPS,
            });
        }
    }

    // Extract eigen pairs and sort descending by value.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for k in 0..n {
            vectors[(k, dst)] = v[(k, src)];
        }
    }
    Ok(SymEig { values, vectors })
}

/// Computes only the `k` leading (largest-eigenvalue) eigenpairs of a
/// symmetric matrix, by full Jacobi decomposition followed by truncation.
///
/// # Errors
///
/// Same as [`sym_eig`], plus [`LinalgError::InvalidArgument`] if
/// `k > a.rows()`.
pub fn sym_eig_topk(a: &Matrix, k: usize) -> Result<SymEig> {
    if k > a.rows() {
        return Err(LinalgError::InvalidArgument {
            context: "sym_eig_topk: k exceeds dimension",
        });
    }
    let full = sym_eig(a)?;
    let vectors = full.vectors.leading_cols(k)?;
    Ok(SymEig {
        values: full.values[..k].to_vec(),
        vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, eig: &SymEig) -> f64 {
        // max_i ‖A v_i − λ_i v_i‖∞
        let mut worst = 0.0_f64;
        for (i, &lam) in eig.values.iter().enumerate() {
            let v = eig.vectors.col(i);
            let av = a.matvec(&v).unwrap();
            for k in 0..v.len() {
                worst = worst.max((av[k] - lam * v[k]).abs());
            }
        }
        worst
    }

    #[test]
    fn eig_2x2_known() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(residual(&a, &e) < 1e-12);
    }

    #[test]
    fn eig_diagonal() {
        let a = Matrix::diag(&[5.0, -1.0, 3.0]);
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, -1.0]);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let e = sym_eig(&a).unwrap();
        let vtv = e.vectors.tr_matmul(&e.vectors).unwrap();
        let err = vtv.sub(&Matrix::identity(6)).unwrap().norm_max();
        assert!(err < 1e-12, "VᵀV error {err}");
        assert!(residual(&a, &e) < 1e-10);
    }

    #[test]
    fn hilbert_matrix_eigenvalues_positive() {
        // Hilbert matrices are SPD; all eigenvalues must come out positive.
        let a = Matrix::from_fn(8, 8, |i, j| 1.0 / ((i + j + 1) as f64));
        let e = sym_eig(&a).unwrap();
        assert!(e.values.iter().all(|&l| l > 0.0));
        // Descending order.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn trace_preserved() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * j) as f64).cos());
        let mut s = a.clone();
        // Symmetrize the generator output.
        for i in 0..5 {
            for j in 0..5 {
                let avg = 0.5 * (a[(i, j)] + a[(j, i)]);
                s[(i, j)] = avg;
            }
        }
        let e = sym_eig(&s).unwrap();
        let trace: f64 = (0..5).map(|i| s[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(sym_eig(&a).is_err());
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            sym_eig(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn empty_matrix() {
        let e = sym_eig(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn topk_truncates() {
        let a = Matrix::diag(&[4.0, 1.0, 9.0]);
        let e = sym_eig_topk(&a, 2).unwrap();
        assert_eq!(e.values, vec![9.0, 4.0]);
        assert_eq!(e.vectors.shape(), (3, 2));
        assert!(sym_eig_topk(&a, 4).is_err());
    }
}
