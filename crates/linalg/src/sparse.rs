//! Sparse matrices in CSR form and a preconditioned conjugate-gradient
//! solver.
//!
//! The compact thermal model assembles one sparse SPD system per backward-
//! Euler step (`(C/Δt + G) T⁺ = C/Δt·T + P`); with a 7-point stencil over
//! tens of thousands of cells, CG with a Jacobi preconditioner and warm
//! starts solves it in a handful of iterations.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vecops;

/// Builder that accumulates `(row, col, value)` triplets.
///
/// Duplicate entries are summed when [`TripletBuilder::to_csr`] is called,
/// which makes finite-volume assembly (one contribution per face) trivial.
#[derive(Debug, Clone, Default)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of accumulated (non-deduplicated) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalizes into CSR format, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());

        row_ptr.push(0);
        let mut current_row = 0;
        let mut i = 0;
        while i < entries.len() {
            let (r, c, _) = entries[i];
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            // Merge duplicates.
            let mut v = 0.0;
            while i < entries.len() && entries[i].0 == r && entries[i].1 == c {
                v += entries[i].2;
                i += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A sparse matrix in compressed-sparse-row (CSR) format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(i, j)` (zero when not stored).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                context: "csr matvec",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Sparse matrix–vector product into a caller-provided buffer
    /// (allocation-free inner loop for the CG solver).
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths are wrong.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: x length");
        assert_eq!(y.len(), self.rows, "matvec_into: y length");
        for i in 0..self.rows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = acc;
        }
    }

    /// Extracts the diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Iterates over the stored entries as `(row, col, value)` triples in
    /// row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.row_ptr[i]..self.row_ptr[i + 1])
                .map(move |k| (i, self.col_idx[k], self.values[k]))
        })
    }

    /// Converts to a dense matrix (tests and small problems only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Checks structural + numerical symmetry up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Outcome of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub residual: f64,
}

/// Options for [`cg_solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual target (default `1e-10`).
    pub tolerance: f64,
    /// Iteration cap (default `10 · n`, set explicitly for large systems).
    pub max_iterations: usize,
    /// Initial guess; warm-starting with the previous transient step cuts
    /// iteration counts by an order of magnitude.
    pub initial_guess: Option<Vec<f64>>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: 0, // 0 means "10 n", resolved in cg_solve
            initial_guess: None,
        }
    }
}

/// Jacobi-preconditioned conjugate gradients for SPD systems `A x = b`.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] for inconsistent dimensions.
/// * [`LinalgError::NotPositiveDefinite`] if a zero/negative diagonal entry
///   is found (Jacobi preconditioner undefined) or a search direction has
///   non-positive curvature.
/// * [`LinalgError::NotConverged`] if the iteration cap is hit before the
///   tolerance.
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::sparse::{cg_solve, CgOptions, TripletBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 4.0);
/// b.push(0, 1, 1.0);
/// b.push(1, 0, 1.0);
/// b.push(1, 1, 3.0);
/// let a = b.to_csr();
/// let sol = cg_solve(&a, &[1.0, 2.0], &CgOptions::default())?;
/// assert!(sol.residual < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn cg_solve(a: &CsrMatrix, b: &[f64], opts: &CgOptions) -> Result<CgSolution> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            shape: (a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            context: "cg_solve",
            expected: (n, 1),
            found: (b.len(), 1),
        });
    }
    let max_iterations = if opts.max_iterations == 0 {
        10 * n.max(1)
    } else {
        opts.max_iterations
    };

    // Jacobi preconditioner M⁻¹ = diag(A)⁻¹.
    let diag = a.diagonal();
    let mut inv_diag = Vec::with_capacity(n);
    for (i, &d) in diag.iter().enumerate() {
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        inv_diag.push(1.0 / d);
    }

    let bnorm = vecops::norm2(b);
    if bnorm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut x = match &opts.initial_guess {
        Some(g) => {
            if g.len() != n {
                return Err(LinalgError::ShapeMismatch {
                    context: "cg_solve initial guess",
                    expected: (n, 1),
                    found: (g.len(), 1),
                });
            }
            g.clone()
        }
        None => vec![0.0; n],
    };

    let mut ax = vec![0.0; n];
    a.matvec_into(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect();
    let mut z: Vec<f64> = r
        .iter()
        .zip(inv_diag.iter())
        .map(|(ri, mi)| ri * mi)
        .collect();
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 0..max_iterations {
        let rnorm = vecops::norm2(&r);
        if rnorm / bnorm <= opts.tolerance {
            return Ok(CgSolution {
                x,
                iterations: iter,
                residual: rnorm / bnorm,
            });
        }
        a.matvec_into(&p, &mut ap);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: iter });
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let rnorm = vecops::norm2(&r) / bnorm;
    if rnorm <= opts.tolerance * 10.0 {
        // Accept a near-miss: the residual stalled within an order of
        // magnitude of the target, which is fine for the thermal stepper.
        return Ok(CgSolution {
            x,
            iterations: max_iterations,
            residual: rnorm,
        });
    }
    Err(LinalgError::NotConverged {
        context: "cg_solve",
        iterations: max_iterations,
    })
}

/// Jacobi-preconditioned BiCGSTAB for general (nonsymmetric) systems
/// `A x = b` — needed once coolant advection enters the thermal model,
/// which destroys the symmetry CG relies on.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] / [`LinalgError::NotSquare`] for
///   inconsistent dimensions.
/// * [`LinalgError::NotPositiveDefinite`] if a diagonal entry is zero
///   (Jacobi preconditioner undefined).
/// * [`LinalgError::NotConverged`] if the iteration cap is hit, or the
///   method breaks down (`ρ → 0`), before the tolerance.
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::sparse::{bicgstab_solve, CgOptions, TripletBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A nonsymmetric (advective) system.
/// let mut b = TripletBuilder::new(2, 2);
/// b.push(0, 0, 3.0);
/// b.push(0, 1, -2.0);
/// b.push(1, 0, 0.5);
/// b.push(1, 1, 2.0);
/// let a = b.to_csr();
/// let sol = bicgstab_solve(&a, &[1.0, 2.0], &CgOptions::default())?;
/// assert!(sol.residual < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bicgstab_solve(a: &CsrMatrix, b: &[f64], opts: &CgOptions) -> Result<CgSolution> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            shape: (a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            context: "bicgstab_solve",
            expected: (n, 1),
            found: (b.len(), 1),
        });
    }
    let max_iterations = if opts.max_iterations == 0 {
        20 * n.max(1)
    } else {
        opts.max_iterations
    };

    let diag = a.diagonal();
    let mut inv_diag = Vec::with_capacity(n);
    for (i, &d) in diag.iter().enumerate() {
        if d == 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: i });
        }
        inv_diag.push(1.0 / d);
    }

    let bnorm = vecops::norm2(b);
    if bnorm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut x = match &opts.initial_guess {
        Some(g) => {
            if g.len() != n {
                return Err(LinalgError::ShapeMismatch {
                    context: "bicgstab initial guess",
                    expected: (n, 1),
                    found: (g.len(), 1),
                });
            }
            g.clone()
        }
        None => vec![0.0; n],
    };

    let mut ax = vec![0.0; n];
    a.matvec_into(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect();
    let r0 = r.clone();
    let mut rho = 1.0_f64;
    let mut alpha = 1.0_f64;
    let mut omega = 1.0_f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    for iter in 0..max_iterations {
        let rnorm = vecops::norm2(&r);
        if rnorm / bnorm <= opts.tolerance {
            return Ok(CgSolution {
                x,
                iterations: iter,
                residual: rnorm / bnorm,
            });
        }
        let rho_new = vecops::dot(&r0, &r);
        if rho_new.abs() < f64::MIN_POSITIVE * 1e4 {
            return Err(LinalgError::NotConverged {
                context: "bicgstab breakdown",
                iterations: iter,
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        for i in 0..n {
            phat[i] = p[i] * inv_diag[i];
        }
        a.matvec_into(&phat, &mut v);
        alpha = rho / vecops::dot(&r0, &v);
        let s: Vec<f64> = r
            .iter()
            .zip(v.iter())
            .map(|(ri, vi)| ri - alpha * vi)
            .collect();
        if vecops::norm2(&s) / bnorm <= opts.tolerance {
            vecops::axpy(alpha, &phat, &mut x);
            let res = vecops::norm2(&s) / bnorm;
            return Ok(CgSolution {
                x,
                iterations: iter + 1,
                residual: res,
            });
        }
        for i in 0..n {
            shat[i] = s[i] * inv_diag[i];
        }
        a.matvec_into(&shat, &mut t);
        let tt = vecops::dot(&t, &t);
        if tt == 0.0 {
            return Err(LinalgError::NotConverged {
                context: "bicgstab stagnation",
                iterations: iter,
            });
        }
        omega = vecops::dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        if omega == 0.0 {
            return Err(LinalgError::NotConverged {
                context: "bicgstab omega breakdown",
                iterations: iter,
            });
        }
    }
    let rnorm = vecops::norm2(&r) / bnorm;
    if rnorm <= opts.tolerance * 10.0 {
        return Ok(CgSolution {
            x,
            iterations: max_iterations,
            residual: rnorm,
        });
    }
    Err(LinalgError::NotConverged {
        context: "bicgstab_solve",
        iterations: max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Tridiagonal [−1, 2, −1] plus a Dirichlet-ish shift to make it SPD.
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.1);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.to_csr()
    }

    #[test]
    fn builder_merges_duplicates() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 1, 5.0);
        let a = b.to_csr();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 5.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn builder_drops_cancelled_entries() {
        let mut b = TripletBuilder::new(1, 1);
        b.push(0, 0, 1.0);
        b.push(0, 0, -1.0);
        let a = b.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_bounds_checked() {
        let mut b = TripletBuilder::new(1, 1);
        b.push(1, 0, 1.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = laplacian_1d(10);
        let dense = a.to_dense();
        let x: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let ys = a.matvec(&x).unwrap();
        let yd = dense.matvec(&x).unwrap();
        for (s, d) in ys.iter().zip(yd.iter()) {
            assert!((s - d).abs() < 1e-14);
        }
    }

    #[test]
    fn matvec_shape_checked() {
        let a = laplacian_1d(4);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn symmetry_detection() {
        let a = laplacian_1d(6);
        assert!(a.is_symmetric(0.0));
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        assert!(!b.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn cg_matches_dense_solve() {
        let a = laplacian_1d(30);
        let b: Vec<f64> = (0..30).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let sol = cg_solve(&a, &b, &CgOptions::default()).unwrap();
        let dense_x = crate::lu::solve(&a.to_dense(), &b).unwrap();
        for (c, d) in sol.x.iter().zip(dense_x.iter()) {
            assert!((c - d).abs() < 1e-7, "cg {c} vs dense {d}");
        }
        assert!(sol.residual <= 1e-10);
    }

    #[test]
    fn cg_warm_start_is_fast() {
        let a = laplacian_1d(50);
        let b = vec![1.0; 50];
        let cold = cg_solve(&a, &b, &CgOptions::default()).unwrap();
        let warm = cg_solve(
            &a,
            &b,
            &CgOptions {
                initial_guess: Some(cold.x.clone()),
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(warm.iterations <= 1, "warm start took {}", warm.iterations);
    }

    #[test]
    fn cg_zero_rhs() {
        let a = laplacian_1d(5);
        let sol = cg_solve(&a, &[0.0; 5], &CgOptions::default()).unwrap();
        assert_eq!(sol.x, vec![0.0; 5]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn cg_rejects_indefinite_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 0, -1.0);
        b.push(1, 1, 1.0);
        let a = b.to_csr();
        assert!(matches!(
            cg_solve(&a, &[1.0, 1.0], &CgOptions::default()),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cg_iteration_cap() {
        let a = laplacian_1d(40);
        let b = vec![1.0; 40];
        let res = cg_solve(
            &a,
            &b,
            &CgOptions {
                max_iterations: 1,
                tolerance: 1e-14,
                initial_guess: None,
            },
        );
        assert!(matches!(res, Err(LinalgError::NotConverged { .. })));
    }

    fn advection_diffusion(n: usize, peclet: f64) -> CsrMatrix {
        // 1-D advection-diffusion, upwind: nonsymmetric but diagonally
        // dominant.
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0 + peclet + 0.1);
            if i > 0 {
                b.push(i, i - 1, -1.0 - peclet);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        b.to_csr()
    }

    #[test]
    fn bicgstab_matches_dense_on_nonsymmetric() {
        let a = advection_diffusion(25, 1.5);
        assert!(!a.is_symmetric(1e-12));
        let b: Vec<f64> = (0..25).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let sol = bicgstab_solve(&a, &b, &CgOptions::default()).unwrap();
        let dense = crate::lu::solve(&a.to_dense(), &b).unwrap();
        for (s, d) in sol.x.iter().zip(dense.iter()) {
            assert!((s - d).abs() < 1e-6, "bicgstab {s} vs dense {d}");
        }
    }

    #[test]
    fn bicgstab_handles_spd_too() {
        let a = laplacian_1d(30);
        let b = vec![1.0; 30];
        let cg = cg_solve(&a, &b, &CgOptions::default()).unwrap();
        let bi = bicgstab_solve(&a, &b, &CgOptions::default()).unwrap();
        for (c, s) in cg.x.iter().zip(bi.x.iter()) {
            assert!((c - s).abs() < 1e-6);
        }
    }

    #[test]
    fn bicgstab_zero_rhs_and_warm_start() {
        let a = advection_diffusion(10, 0.7);
        let zero = bicgstab_solve(&a, &[0.0; 10], &CgOptions::default()).unwrap();
        assert_eq!(zero.x, vec![0.0; 10]);
        let b = vec![1.0; 10];
        let first = bicgstab_solve(&a, &b, &CgOptions::default()).unwrap();
        let warm = bicgstab_solve(
            &a,
            &b,
            &CgOptions {
                initial_guess: Some(first.x.clone()),
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(warm.iterations <= 1);
    }

    #[test]
    fn bicgstab_rejects_zero_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let a = b.to_csr();
        assert!(matches!(
            bicgstab_solve(&a, &[1.0, 1.0], &CgOptions::default()),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn empty_rows_have_ptr_entries() {
        let mut b = TripletBuilder::new(4, 4);
        b.push(0, 0, 1.0);
        b.push(3, 3, 1.0);
        let a = b.to_csr();
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 2), 0.0);
        assert_eq!(a.nnz(), 2);
        // matvec over empty rows must produce zeros.
        let y = a.matvec(&[1.0; 4]).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 0.0, 1.0]);
    }
}
