//! Dense row-major matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::{LinalgError, Result};
use crate::vecops;

/// A dense, row-major matrix of `f64`.
///
/// Row-major storage makes row extraction free, which matters because the
/// EigenMaps sensing matrix `Ψ̃_K` is a *row selection* of the basis matrix
/// (one row per sensor location).
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument {
                context: "from_vec: data length must equal rows*cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a column vector (an `n × 1` matrix) from a slice.
    pub fn column_from(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(d: &[f64]) -> Self {
        let mut m = Matrix::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the `i`-th row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let c = self.cols;
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Copies the `j`-th column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Writes `v` into the `j`-th column.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols` or `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        assert_eq!(v.len(), self.rows, "set_col: length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// Borrows the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix–matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                context: "matmul",
                expected: (self.cols, rhs.cols),
                found: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the innermost loop walks contiguous rows of both
        // `rhs` and `out`, which is the cache-friendly order for row-major.
        for i in 0..self.rows {
            let arow = self.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                vecops::axpy(aik, brow, orow);
            }
        }
        Ok(out)
    }

    /// Product with the transpose of `self` on the left: `selfᵀ · rhs`.
    ///
    /// Computed without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows != rhs.rows`.
    pub fn tr_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                context: "tr_matmul",
                expected: (self.rows, rhs.cols),
                found: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for t in 0..self.rows {
            let arow = self.row(t);
            let brow = rhs.row(t);
            for (i, &ati) in arow.iter().enumerate() {
                if ati == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                vecops::axpy(ati, brow, orow);
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                context: "matvec",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| vecops::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != rows`.
    pub fn tr_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                context: "tr_matvec",
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (t, &xt) in x.iter().enumerate() {
            if xt != 0.0 {
                vecops::axpy(xt, self.row(t), &mut out);
            }
        }
        Ok(out)
    }

    /// Returns a new matrix formed by the selected rows, in the given order.
    ///
    /// Duplicated indices are allowed (useful for bootstrap-style sampling).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any index is out of
    /// bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(LinalgError::InvalidArgument {
                    context: "select_rows: index out of bounds",
                });
            }
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Returns a new matrix formed by the first `k` columns.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `k > cols`.
    pub fn leading_cols(&self, k: usize) -> Result<Matrix> {
        if k > self.cols {
            return Err(LinalgError::InvalidArgument {
                context: "leading_cols: k exceeds column count",
            });
        }
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                context: "add",
                expected: self.shape(),
                found: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self − rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                context: "sub",
                expected: self.shape(),
                found: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by `a`, in place.
    pub fn scale_mut(&mut self, a: f64) {
        vecops::scale(a, &mut self.data);
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn norm_fro(&self) -> f64 {
        vecops::norm2(&self.data)
    }

    /// Largest absolute entry `max |a_ij|`.
    pub fn norm_max(&self) -> f64 {
        vecops::norm_inf(&self.data)
    }

    /// Checks symmetry up to an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn identity_and_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let d = Matrix::diag(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 0)], 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch {
                context: "matmul",
                ..
            })
        ));
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let b = Matrix::from_fn(4, 2, |i, j| (i * j) as f64 + 1.0);
        let fast = a.tr_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.tr_matvec(&[1.0]).is_err());
    }

    #[test]
    fn select_rows_and_leading_cols() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.select_rows(&[3, 0, 3]).unwrap();
        assert_eq!(s.row(0), a.row(3));
        assert_eq!(s.row(1), a.row(0));
        assert_eq!(s.row(2), a.row(3));
        assert!(a.select_rows(&[4]).is_err());

        let l = a.leading_cols(2).unwrap();
        assert_eq!(l.shape(), (4, 2));
        assert_eq!(l[(2, 1)], a[(2, 1)]);
        assert!(a.leading_cols(5).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 3.0]]));
        let mut c = a.clone();
        c.scale_mut(3.0);
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 6.0]]));
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 5.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 5.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(a.norm_max(), 4.0);
    }

    #[test]
    fn debug_truncates() {
        let a = Matrix::zeros(20, 20);
        let s = format!("{a:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }

    #[test]
    fn set_col_roundtrip() {
        let mut a = Matrix::zeros(3, 2);
        a.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(a.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.col(0), vec![0.0, 0.0, 0.0]);
    }
}
