//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! The thermal simulator's backward-Euler system matrix `(C/Δt + G)` is SPD,
//! as is the Gram matrix `Ψ̃ᵀΨ̃` of a full-rank sensing matrix; Cholesky is
//! the natural direct solver for both (the iterative alternative lives in
//! [`crate::sparse`]).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor: `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility (checked in debug builds).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for rectangular input.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (n, m) = a.shape();
        if n != m {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        debug_assert!(
            a.is_symmetric(1e-8 * a.norm_max().max(1e-300)),
            "Cholesky::new called with an asymmetric matrix"
        );
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrows the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: "cholesky solve",
                expected: (n, 1),
                found: (b.len(), 1),
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// `log(det A)` computed stably from the factor diagonal.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[8.0, 7.0]).unwrap();
        // A x = b check
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 8.0).abs() < 1e-12);
        assert!((ax[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn l_times_lt_is_a() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l().clone();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.sub(&a).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rectangular_rejected() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let det = crate::lu::Lu::new(&a).unwrap().det();
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_shape_mismatch() {
        let a = Matrix::identity(2);
        let ch = Cholesky::new(&a).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
