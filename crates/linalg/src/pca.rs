//! Principal component analysis of sample covariance matrices.
//!
//! The EigenMaps basis (Sec. 3.1, Prop. 1) is the set of top-`K`
//! eigenvectors of the thermal-map covariance `Cx`. For the paper's grid
//! this is a `3360 × 3360` matrix of which only `K ≤ ~64` eigenpairs are
//! ever needed, so the default path is a **randomized subspace iteration**
//! that only touches the data matrix through `X·v` / `Xᵀ·v` products — the
//! covariance is never formed. An exact dense path ([`Pca::fit_exact`]) is
//! kept for small problems and used to cross-validate the randomized one in
//! tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::eig::sym_eig;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::qr::orthonormalize;
use crate::vecops;

/// Options for the randomized PCA path.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaOptions {
    /// Extra random probe directions beyond `k` (default 10). More
    /// oversampling buys accuracy on slowly-decaying spectra.
    pub oversample: usize,
    /// Power (subspace) iterations (default 3). Thermal covariances decay
    /// fast, so a handful suffices.
    pub power_iterations: usize,
    /// RNG seed for the probe matrix; fixed default keeps figures
    /// reproducible run to run.
    pub seed: u64,
}

impl Default for PcaOptions {
    fn default() -> Self {
        PcaOptions {
            oversample: 10,
            power_iterations: 3,
            seed: 0xE16E_3A95,
        }
    }
}

/// A fitted PCA model: mean, leading eigenpairs of the sample covariance,
/// and the total variance (needed for the approximation-error formula of
/// Prop. 1).
///
/// Sample convention: the data matrix is `T × N` with **one sample per
/// row**. The sample covariance uses the `1/(T−1)` normalization.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    eigenvalues: Vec<f64>,
    components: Matrix,
    total_variance: f64,
    samples: usize,
}

impl Pca {
    /// Fits the top-`k` principal components with randomized subspace
    /// iteration.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `k == 0`, `k > N`, or the data
    ///   matrix has fewer than 2 rows.
    /// * Propagated numeric errors from the internal QR/eigendecomposition
    ///   (not observed on finite input).
    ///
    /// # Examples
    ///
    /// ```
    /// use eigenmaps_linalg::{Matrix, Pca, PcaOptions};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // 100 samples of a 1-D subspace embedded in 4-D, plus tiny noise.
    /// let data = Matrix::from_fn(100, 4, |t, j| {
    ///     let s = (t as f64 / 7.0).sin();
    ///     s * (j as f64 + 1.0) + 1e-6 * ((t * j) as f64).cos()
    /// });
    /// let pca = Pca::fit(&data, 1, &PcaOptions::default())?;
    /// // One component explains essentially all the variance.
    /// assert!(pca.approximation_error(1) < 1e-9 * pca.total_variance());
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(data: &Matrix, k: usize, opts: &PcaOptions) -> Result<Self> {
        let (t, n) = data.shape();
        Self::validate(t, n, k)?;

        let (centered, mean, total_variance) = center(data);
        let denom = (t - 1) as f64;

        let l = (k + opts.oversample).min(n);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let omega = Matrix::from_fn(n, l, |_, _| gaussian(&mut rng));

        // Y = C·Ω without forming C: C·X = Aᵀ(A·X)/(T−1).
        let apply_cov = |x: &Matrix| -> Result<Matrix> {
            let ax = centered.matmul(x)?;
            let mut y = centered.tr_matmul(&ax)?;
            y.scale_mut(1.0 / denom);
            Ok(y)
        };

        let mut q = orthonormalize(&apply_cov(&omega)?)?;
        for _ in 0..opts.power_iterations {
            q = orthonormalize(&apply_cov(&q)?)?;
        }

        // Rayleigh–Ritz: B = Qᵀ C Q, small symmetric eigenproblem.
        let cq = apply_cov(&q)?;
        let mut b = q.tr_matmul(&cq)?;
        // Symmetrize roundoff.
        for i in 0..l {
            for j in (i + 1)..l {
                let avg = 0.5 * (b[(i, j)] + b[(j, i)]);
                b[(i, j)] = avg;
                b[(j, i)] = avg;
            }
        }
        let eig = sym_eig(&b)?;
        let w = eig.vectors.leading_cols(k)?;
        let components = q.matmul(&w)?;
        let eigenvalues: Vec<f64> = eig.values[..k].iter().map(|&v| v.max(0.0)).collect();

        Ok(Pca {
            mean,
            eigenvalues,
            components,
            total_variance,
            samples: t,
        })
    }

    /// Fits the top-`k` components by forming the dense covariance and
    /// running a full Jacobi eigendecomposition — exact, `O(N³)`, intended
    /// for small `N` and for validating the randomized path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Pca::fit`].
    pub fn fit_exact(data: &Matrix, k: usize) -> Result<Self> {
        let (t, n) = data.shape();
        Self::validate(t, n, k)?;

        let (centered, mean, total_variance) = center(data);
        let mut cov = centered.tr_matmul(&centered)?;
        cov.scale_mut(1.0 / (t - 1) as f64);
        let eig = sym_eig(&cov)?;
        Ok(Pca {
            mean,
            eigenvalues: eig.values[..k].iter().map(|&v| v.max(0.0)).collect(),
            components: eig.vectors.leading_cols(k)?,
            total_variance,
            samples: t,
        })
    }

    fn validate(t: usize, n: usize, k: usize) -> Result<()> {
        if k == 0 || k > n {
            return Err(LinalgError::InvalidArgument {
                context: "pca: k must satisfy 1 <= k <= N",
            });
        }
        if t < 2 {
            return Err(LinalgError::InvalidArgument {
                context: "pca: need at least 2 samples",
            });
        }
        Ok(())
    }

    /// Sample mean (length `N`), subtracted before analysis.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Leading covariance eigenvalues `λ₀ ≥ λ₁ ≥ …`, length `k`.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthonormal principal components, `N × k`, column `i` pairing with
    /// `eigenvalues()[i]`.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Total variance `tr(Cx) = Σ λ_n` over **all** `N` eigenvalues
    /// (computed exactly from the centered data, not just the `k` retained
    /// ones).
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// Number of samples the model was fitted on.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Prop. 1 approximation error `ξ(K) = Σ_{n ≥ K} λ_n` for `K ≤ k`,
    /// i.e. the expected squared error energy of the best `K`-dimensional
    /// linear approximation.
    ///
    /// # Panics
    ///
    /// Panics if `keep > k()`.
    pub fn approximation_error(&self, keep: usize) -> f64 {
        assert!(
            keep <= self.k(),
            "keep={keep} exceeds fitted k={}",
            self.k()
        );
        let explained: f64 = self.eigenvalues[..keep].iter().sum();
        (self.total_variance - explained).max(0.0)
    }

    /// A copy of this model keeping only the first `keep` components
    /// (cheap way to sweep `K` after a single large fit).
    ///
    /// # Panics
    ///
    /// Panics if `keep` is 0 or exceeds the fitted `k`.
    pub fn truncated(&self, keep: usize) -> Pca {
        assert!(
            keep >= 1 && keep <= self.k(),
            "truncated: keep={keep} outside 1..={}",
            self.k()
        );
        Pca {
            mean: self.mean.clone(),
            eigenvalues: self.eigenvalues[..keep].to_vec(),
            components: self
                .components
                .leading_cols(keep)
                .expect("keep validated above"),
            total_variance: self.total_variance,
            samples: self.samples,
        }
    }

    /// Projects a sample onto the retained components, returning the `k`
    /// coefficients `α = Ψᵀ(x − mean)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != N`.
    pub fn project(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                context: "pca project",
                expected: (self.mean.len(), 1),
                found: (x.len(), 1),
            });
        }
        let centered = vecops::sub(x, &self.mean);
        self.components.tr_matvec(&centered)
    }

    /// Reconstructs a sample from `k` coefficients: `x̂ = Ψ α + mean`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `coeffs.len() != k`.
    pub fn reconstruct(&self, coeffs: &[f64]) -> Result<Vec<f64>> {
        let mut x = self.components.matvec(coeffs)?;
        vecops::axpy(1.0, &self.mean, &mut x);
        Ok(x)
    }

    /// Best `keep`-dimensional approximation of `x` (project then
    /// reconstruct, using only the first `keep` components).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != N`.
    ///
    /// # Panics
    ///
    /// Panics if `keep > k()`.
    pub fn approximate(&self, x: &[f64], keep: usize) -> Result<Vec<f64>> {
        assert!(
            keep <= self.k(),
            "keep={keep} exceeds fitted k={}",
            self.k()
        );
        let mut coeffs = self.project(x)?;
        for c in coeffs[keep..].iter_mut() {
            *c = 0.0;
        }
        self.reconstruct(&coeffs)
    }
}

/// Centers the rows of `data`; returns `(centered, mean, total_variance)`
/// where `total_variance = tr(C) = Σ_j ‖x_j − mean‖² / (T−1)`.
fn center(data: &Matrix) -> (Matrix, Vec<f64>, f64) {
    let (t, n) = data.shape();
    let mut mean = vec![0.0; n];
    for i in 0..t {
        vecops::axpy(1.0, data.row(i), &mut mean);
    }
    vecops::scale(1.0 / t as f64, &mut mean);

    let mut centered = data.clone();
    let mut total = 0.0;
    for i in 0..t {
        let row = centered.row_mut(i);
        for (v, m) in row.iter_mut().zip(mean.iter()) {
            *v -= m;
        }
        total += vecops::norm2_sq(row);
    }
    (centered, mean, total / (t - 1).max(1) as f64)
}

/// Standard normal sample via Box–Muller (avoids a `rand_distr` dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic data with a known planted spectrum: x = Σ_i √λ_i g_i e_i.
    fn planted(t: usize, n: usize, lambdas: &[f64], seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(t, n, |_, j| {
            if j < lambdas.len() {
                lambdas[j].sqrt() * gaussian(&mut rng)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn exact_recovers_planted_spectrum() {
        let lambdas = [100.0, 25.0, 4.0];
        let data = planted(4000, 6, &lambdas, 1);
        let pca = Pca::fit_exact(&data, 3).unwrap();
        for (est, truth) in pca.eigenvalues().iter().zip(lambdas.iter()) {
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.15, "eigenvalue {est} vs planted {truth}");
        }
    }

    #[test]
    fn randomized_matches_exact() {
        let lambdas = [50.0, 10.0, 3.0, 1.0];
        let data = planted(500, 20, &lambdas, 2);
        let exact = Pca::fit_exact(&data, 4).unwrap();
        let rand = Pca::fit(&data, 4, &PcaOptions::default()).unwrap();
        for (a, b) in exact.eigenvalues().iter().zip(rand.eigenvalues().iter()) {
            assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
        }
        // Subspaces must agree: |⟨v_exact, v_rand⟩| ≈ 1 for separated modes.
        for i in 0..4 {
            let ve = exact.components().col(i);
            let vr = rand.components().col(i);
            let d = vecops::dot(&ve, &vr).abs();
            assert!(d > 1.0 - 1e-6, "component {i} misaligned: |dot|={d}");
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let data = planted(200, 15, &[9.0, 4.0, 1.0], 3);
        let pca = Pca::fit(&data, 5, &PcaOptions::default()).unwrap();
        let g = pca.components().tr_matmul(pca.components()).unwrap();
        let err = g.sub(&Matrix::identity(5)).unwrap().norm_max();
        assert!(err < 1e-10, "gram error {err}");
    }

    #[test]
    fn approximation_error_is_monotone_and_consistent() {
        let data = planted(300, 10, &[16.0, 8.0, 2.0, 0.5], 4);
        let pca = Pca::fit_exact(&data, 4).unwrap();
        let mut prev = pca.total_variance();
        for k in 0..=4 {
            let e = pca.approximation_error(k);
            assert!(e <= prev + 1e-12, "ξ({k}) increased");
            prev = e;
        }
        // ξ(0) = total variance.
        assert!((pca.approximation_error(0) - pca.total_variance()).abs() < 1e-12);
    }

    #[test]
    fn approximate_achieves_predicted_error() {
        // Empirical MSE of the K-term approximation over the training set
        // should match ξ(K)·(T-1)/T-ish; just require it's close.
        let data = planted(800, 8, &[10.0, 5.0, 1.0, 0.2], 5);
        let pca = Pca::fit_exact(&data, 4).unwrap();
        let k = 2;
        let mut total_sq = 0.0;
        for t in 0..data.rows() {
            let x = data.row(t);
            let xh = pca.approximate(x, k).unwrap();
            total_sq += vecops::norm2_sq(&vecops::sub(x, &xh));
        }
        let empirical = total_sq / (data.rows() - 1) as f64;
        let predicted = pca.approximation_error(k);
        let rel = (empirical - predicted).abs() / predicted;
        assert!(rel < 0.05, "empirical {empirical} vs predicted {predicted}");
    }

    #[test]
    fn projection_of_mean_is_zero() {
        let data = planted(100, 6, &[4.0, 1.0], 6);
        let pca = Pca::fit_exact(&data, 2).unwrap();
        let coeffs = pca.project(pca.mean()).unwrap();
        assert!(vecops::norm_inf(&coeffs) < 1e-12);
    }

    #[test]
    fn project_reconstruct_roundtrip_in_subspace() {
        let data = planted(100, 6, &[4.0, 1.0], 7);
        let pca = Pca::fit_exact(&data, 2).unwrap();
        // A vector already in the subspace+mean reconstructs exactly.
        let x = pca.reconstruct(&[1.5, -0.5]).unwrap();
        let coeffs = pca.project(&x).unwrap();
        assert!((coeffs[0] - 1.5).abs() < 1e-12);
        assert!((coeffs[1] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn validates_arguments() {
        let data = Matrix::zeros(10, 5);
        assert!(Pca::fit(&data, 0, &PcaOptions::default()).is_err());
        assert!(Pca::fit(&data, 6, &PcaOptions::default()).is_err());
        let one = Matrix::zeros(1, 5);
        assert!(Pca::fit(&one, 2, &PcaOptions::default()).is_err());
        let pca = Pca::fit_exact(&planted(50, 5, &[1.0], 8), 2).unwrap();
        assert!(pca.project(&[0.0; 4]).is_err());
        assert!(pca.reconstruct(&[0.0; 3]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = planted(100, 12, &[5.0, 2.0], 9);
        let a = Pca::fit(&data, 3, &PcaOptions::default()).unwrap();
        let b = Pca::fit(&data, 3, &PcaOptions::default()).unwrap();
        assert_eq!(a.eigenvalues(), b.eigenvalues());
        assert_eq!(a.components(), b.components());
    }

    #[test]
    fn mean_is_removed() {
        // Shift all samples by a constant; eigen-structure must not change.
        let base = planted(400, 6, &[9.0, 1.0], 10);
        let shifted = Matrix::from_fn(400, 6, |i, j| base[(i, j)] + 100.0);
        let p0 = Pca::fit_exact(&base, 2).unwrap();
        let p1 = Pca::fit_exact(&shifted, 2).unwrap();
        for (a, b) in p0.eigenvalues().iter().zip(p1.eigenvalues().iter()) {
            assert!((a - b).abs() < 1e-8 * a.max(1.0));
        }
        assert!((p1.mean()[0] - (p0.mean()[0] + 100.0)).abs() < 1e-9);
    }
}
