//! Orthonormal DCT-II bases, including the zigzag-ordered 2-D low-pass
//! subspace used by the k-LSE baseline (Nowroz et al., DAC 2010).
//!
//! k-LSE approximates a thermal map by its `K` lowest-frequency 2-D DCT
//! coefficients; reconstruction solves the same least-squares problem as
//! EigenMaps but over this fixed (data-independent) subspace. Reproducing it
//! faithfully requires the exact orthonormal DCT-II convention below.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Orthonormal 1-D DCT-II matrix of size `n × n`.
///
/// `D[k][t] = c_k · cos(π (2t+1) k / (2n))` with `c_0 = √(1/n)` and
/// `c_k = √(2/n)` for `k ≥ 1`. Rows are the basis functions; `D Dᵀ = I`.
pub fn dct_matrix(n: usize) -> Matrix {
    let nf = n as f64;
    Matrix::from_fn(n, n, |k, t| {
        let ck = if k == 0 {
            (1.0 / nf).sqrt()
        } else {
            (2.0 / nf).sqrt()
        };
        ck * (std::f64::consts::PI * (2.0 * t as f64 + 1.0) * k as f64 / (2.0 * nf)).cos()
    })
}

/// Enumerates 2-D frequency pairs `(p, q)` (`p` over rows/height, `q` over
/// columns/width) in zigzag order: ascending `p + q`, alternating direction
/// within each anti-diagonal — the classic JPEG-style low-frequency-first
/// ordering that k-LSE uses to pick its `K` atoms.
pub fn zigzag_order(h: usize, w: usize) -> Vec<(usize, usize)> {
    let mut order = Vec::with_capacity(h * w);
    if h == 0 || w == 0 {
        return order;
    }
    for s in 0..(h + w - 1) {
        if s % 2 == 0 {
            // Walk up-right: p from high to low.
            let p_start = s.min(h - 1);
            let mut p = p_start as isize;
            while p >= 0 {
                let q = s - p as usize;
                if q < w {
                    order.push((p as usize, q));
                }
                p -= 1;
            }
        } else {
            // Walk down-left: p from low to high.
            for p in 0..=s.min(h - 1) {
                let q = s - p;
                if q < w {
                    order.push((p, q));
                }
            }
        }
    }
    order
}

/// Builds the `N × K` matrix whose columns are the first `K` zigzag-ordered
/// 2-D DCT atoms of an `h × w` grid, vectorized **column-major**
/// (`i = row + col·h`, the paper's stacking convention).
///
/// Columns are orthonormal: the 2-D DCT is a tensor product of orthonormal
/// 1-D transforms.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `k > h·w`.
///
/// # Examples
///
/// ```
/// use eigenmaps_linalg::dct::dct2_basis;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let basis = dct2_basis(4, 4, 6)?;
/// assert_eq!(basis.shape(), (16, 6));
/// // Columns are orthonormal.
/// let gram = basis.tr_matmul(&basis)?;
/// assert!((gram[(0, 0)] - 1.0).abs() < 1e-12);
/// assert!(gram[(0, 1)].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn dct2_basis(h: usize, w: usize, k: usize) -> Result<Matrix> {
    let n = h * w;
    if k > n {
        return Err(LinalgError::InvalidArgument {
            context: "dct2_basis: k exceeds h*w",
        });
    }
    let dh = dct_matrix(h);
    let dw = dct_matrix(w);
    let order = zigzag_order(h, w);
    let mut basis = Matrix::zeros(n, k);
    for (col, &(p, q)) in order.iter().take(k).enumerate() {
        // Atom(p,q)[r, c] = Dh[p, r] * Dw[q, c]; vectorize column-major.
        for c in 0..w {
            let dwqc = dw[(q, c)];
            for r in 0..h {
                basis[(r + c * h, col)] = dh[(p, r)] * dwqc;
            }
        }
    }
    Ok(basis)
}

/// Projects a column-major vectorized `h × w` field onto the first `k`
/// zigzag DCT atoms and reconstructs it — the k-LSE *approximation* (as
/// opposed to reconstruction-from-sensors) used in Fig. 3(a) of the paper.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] if `x.len() != h·w`, and
/// propagates [`dct2_basis`] errors.
pub fn dct2_lowpass(x: &[f64], h: usize, w: usize, k: usize) -> Result<Vec<f64>> {
    if x.len() != h * w {
        return Err(LinalgError::ShapeMismatch {
            context: "dct2_lowpass",
            expected: (h * w, 1),
            found: (x.len(), 1),
        });
    }
    let basis = dct2_basis(h, w, k)?;
    let coeffs = basis.tr_matvec(x)?;
    basis.matvec(&coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_matrix_is_orthonormal() {
        for n in [1, 2, 5, 8] {
            let d = dct_matrix(n);
            let ddt = d.matmul(&d.transpose()).unwrap();
            let err = ddt.sub(&Matrix::identity(n)).unwrap().norm_max();
            assert!(err < 1e-12, "n={n} err={err}");
        }
    }

    #[test]
    fn dct_dc_row_is_constant() {
        let d = dct_matrix(4);
        let expect = 0.5; // √(1/4)
        for t in 0..4 {
            assert!((d[(0, t)] - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn zigzag_small_grid() {
        // 3x3 zigzag: the JPEG pattern.
        let z = zigzag_order(3, 3);
        assert_eq!(
            z,
            vec![
                (0, 0),
                (0, 1),
                (1, 0),
                (2, 0),
                (1, 1),
                (0, 2),
                (1, 2),
                (2, 1),
                (2, 2)
            ]
        );
    }

    #[test]
    fn zigzag_covers_all_frequencies_once() {
        let z = zigzag_order(5, 7);
        assert_eq!(z.len(), 35);
        let mut seen = std::collections::HashSet::new();
        for &(p, q) in &z {
            assert!(p < 5 && q < 7);
            assert!(seen.insert((p, q)), "duplicate frequency ({p},{q})");
        }
        // Low frequencies come first: total frequency never decreases by
        // more than within one anti-diagonal.
        for win in z.windows(2) {
            let s0 = win[0].0 + win[0].1;
            let s1 = win[1].0 + win[1].1;
            assert!(s1 >= s0, "zigzag went backwards: {win:?}");
        }
    }

    #[test]
    fn zigzag_rectangular_and_degenerate() {
        assert_eq!(zigzag_order(1, 4), vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        assert_eq!(zigzag_order(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(zigzag_order(2, 1), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn dct2_basis_columns_orthonormal() {
        let b = dct2_basis(6, 5, 12).unwrap();
        let gram = b.tr_matmul(&b).unwrap();
        let err = gram.sub(&Matrix::identity(12)).unwrap().norm_max();
        assert!(err < 1e-12, "gram error {err}");
    }

    #[test]
    fn dct2_basis_full_is_complete() {
        // With k = h*w, projection must be exact for any vector.
        let (h, w) = (4, 3);
        let b = dct2_basis(h, w, h * w).unwrap();
        let x: Vec<f64> = (0..12).map(|i| ((i * i) as f64).sin()).collect();
        let xr = b.matvec(&b.tr_matvec(&x).unwrap()).unwrap();
        for (a, r) in x.iter().zip(xr.iter()) {
            assert!((a - r).abs() < 1e-12);
        }
    }

    #[test]
    fn dct2_basis_k_too_large() {
        assert!(dct2_basis(2, 2, 5).is_err());
    }

    #[test]
    fn lowpass_preserves_constant_field() {
        // A constant field is pure DC: k=1 must reproduce it exactly.
        let x = vec![3.5; 20];
        let y = dct2_lowpass(&x, 5, 4, 1).unwrap();
        for v in y {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn lowpass_error_decreases_with_k() {
        let (h, w) = (8, 8);
        let x: Vec<f64> = (0..64)
            .map(|i| {
                let r = (i % 8) as f64;
                let c = (i / 8) as f64;
                (r / 3.0).sin() + (c / 2.0).cos() + 0.1 * (r * c / 7.0).sin()
            })
            .collect();
        let mut prev = f64::INFINITY;
        for k in [1, 4, 16, 36, 64] {
            let y = dct2_lowpass(&x, h, w, k).unwrap();
            let err: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(err <= prev + 1e-12, "k={k}: {err} > {prev}");
            prev = err;
        }
        assert!(prev < 1e-20, "full basis must be exact, err={prev}");
    }

    #[test]
    fn lowpass_length_checked() {
        assert!(dct2_lowpass(&[1.0; 5], 2, 3, 2).is_err());
    }
}
