//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no registry access, so the property tests link
//! against this minimal implementation instead of the real `proptest`. It
//! supports range strategies, tuple strategies, [`strategy::Strategy::prop_map`], the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are
//! generated from a deterministic per-test seed; there is **no shrinking** —
//! a failing case panics with its message directly.

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; try another input.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

pub mod test_runner {
    //! Configuration and per-case RNG derivation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (only the case count is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG for attempt `attempt` of the test named `name`.
    pub fn case_rng(name: &str, attempt: u32) -> StdRng {
        // FNV-1a over the test path keeps seeds distinct across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Maps generated values to a dependent strategy and draws from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_ranges!(usize, u64, u32, u8, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// Strategy generating `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `Vec` of exactly `len` draws from `element` (the real crate accepts
    /// any size range; the workspace only uses exact lengths).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the shape
/// `proptest! { #![proptest_config(cfg)] #[test] fn name(arg in strategy, ..) { .. } .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{$cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{$crate::test_runner::Config::default(); $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} attempts for {} accepted)",
                        attempts,
                        accepted
                    );
                    let mut case_rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut case_rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", attempts, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shifted() -> impl Strategy<Value = u64> {
        (0u64..10).prop_map(|v| v + 100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..=7, b in 0u64..5, x in 0.25f64..0.75) {
            prop_assert!((3..=7).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.25..0.75).contains(&x), "x = {x}");
        }

        #[test]
        fn prop_map_applies(v in shifted()) {
            prop_assert!((100..110).contains(&v));
            prop_assert_eq!(v, v);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..4) {
            prop_assume!(n != 1);
            prop_assert!(n != 1);
        }
    }
}
