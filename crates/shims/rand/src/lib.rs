//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no registry access, so instead of the real
//! `rand` this path dependency provides the same surface backed by a
//! xoshiro256++ generator with SplitMix64 seeding:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] (standard uniform), [`Rng::gen_bool`], [`Rng::gen_range`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic per seed (everything the workspace relies on)
//! but do **not** match the upstream `rand` byte-for-byte.

/// Types that can be sampled from the "standard" distribution (uniform on
/// `[0, 1)` for floats, uniform over all values for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u8, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform integer in `[0, span)` by rejection sampling.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Random number generator interface (merged `RngCore` + `Rng` of the real
/// crate, since the workspace never needs them separately).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed, `Clone` + `Debug` so it can be
    /// embedded in reproducible models.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_with_decent_mean() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "32 elements staying in place is ~impossible");
    }
}
