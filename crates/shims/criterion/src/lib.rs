//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no registry access, so the benchmark targets
//! link against this minimal harness instead of the real `criterion`. It
//! supports the same source-level API (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `black_box`) and reports mean wall-clock time per iteration. It performs
//! no statistical analysis, outlier rejection or HTML reporting.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    target: Duration,
    max_iters: u64,
    /// Mean per-iteration time measured by the last `iter` call.
    mean: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time per
    /// call: one warm-up call, then batches until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also primes caches/allocators
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.target && iters < self.max_iters {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.mean = if iters == 0 {
            elapsed
        } else {
            elapsed / iters as u32
        };
    }
}

fn run_benchmark(full_id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        // Scale the budget with the requested sample count, within reason:
        // the default 100-sample config gets ~1 s, `sample_size(10)` ~300 ms.
        target: Duration::from_millis(100 + 9 * sample_size.min(100) as u64),
        max_iters: 1_000_000,
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("{full_id:<55} time: [{:>12.3?} per iter]", b.mean);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample-count hint (scales the time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Runs one benchmark with a shared input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut f = f;
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        run_benchmark(&id.id, 100, |b| f(b));
        self
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("28x30").id, "28x30");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
