//! Workload scenarios and power-trace generation.
//!
//! The paper drives 3D-ICE with the proprietary power traces of Leon et
//! al. (ref. 7 of the paper), recorded while the chip ran "different scenarios/workload".
//! Those traces are not available, so this module synthesizes statistically
//! comparable ones: per-block utilization processes (first-order
//! autoregressive, i.e. Markov, with scenario-specific targets and burst
//! behaviour) mapped through each block's idle/peak power envelope.
//! Derived activity couples the uncore realistically: an L2 bank follows
//! the cores of its half of the die, the crossbar follows aggregate
//! traffic, the FPU bursts with compute phases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::{BlockKind, Floorplan};
use crate::error::{FloorplanError, Result};

/// A workload scenario shaping the utilization processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Scenario {
    /// Everything near idle, small fluctuations.
    Idle,
    /// Throughput server load: all cores moderately busy with frequent
    /// short bursts (the T1's design point).
    WebServer,
    /// Half the cores pinned hot (compute-bound batch job), FPU busy.
    ComputeBound,
    /// One hot task the OS migrates from core to core every few hundred
    /// milliseconds — the "no clear spatio-temporal pattern" case from the
    /// paper's introduction.
    Migration,
    /// Random mixture: every few hundred ms a new random subset of cores
    /// becomes active.
    Mixed,
}

impl Scenario {
    /// All scenarios, in the order the default dataset schedule uses.
    pub const ALL: [Scenario; 5] = [
        Scenario::Idle,
        Scenario::WebServer,
        Scenario::ComputeBound,
        Scenario::Migration,
        Scenario::Mixed,
    ];
}

/// A `T × B` matrix of per-block power (W), one row per time step.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    steps: usize,
    blocks: usize,
    /// Row-major `steps × blocks` wattages.
    data: Vec<f64>,
    /// Interval between rows, seconds.
    dt: f64,
}

impl PowerTrace {
    /// Builds a trace from explicit per-step rows (e.g. parsed from a
    /// `.ptrace` file).
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::TraceShapeMismatch`] if any row length differs
    ///   from `blocks`.
    /// * [`FloorplanError::InvalidConfig`] if `dt` is not positive.
    pub fn from_rows(blocks: usize, rows: Vec<Vec<f64>>, dt: f64) -> Result<PowerTrace> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(FloorplanError::InvalidConfig {
                context: "trace interval must be positive".into(),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * blocks);
        for row in &rows {
            if row.len() != blocks {
                return Err(FloorplanError::TraceShapeMismatch {
                    expected: blocks,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(PowerTrace {
            steps: rows.len(),
            blocks,
            data,
            dt,
        })
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.steps
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }

    /// Number of blocks per step.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Step interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Block wattages at step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn step(&self, t: usize) -> &[f64] {
        assert!(t < self.steps, "step {t} out of range");
        &self.data[t * self.blocks..(t + 1) * self.blocks]
    }

    /// Iterates over the steps.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.steps).map(move |t| self.step(t))
    }

    /// Concatenates two traces (must agree on blocks and dt).
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::TraceShapeMismatch`] on disagreement.
    pub fn concat(mut self, other: &PowerTrace) -> Result<PowerTrace> {
        if other.blocks != self.blocks || (other.dt - self.dt).abs() > 1e-12 {
            return Err(FloorplanError::TraceShapeMismatch {
                expected: self.blocks,
                found: other.blocks,
            });
        }
        self.data.extend_from_slice(&other.data);
        self.steps += other.steps;
        Ok(self)
    }
}

/// Synthesizes per-block power traces for a floorplan.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    floorplan: Floorplan,
    dt: f64,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator with the trace interval `dt` (seconds) and a
    /// deterministic seed.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidConfig`] if `dt` is not positive.
    pub fn new(floorplan: Floorplan, dt: f64, seed: u64) -> Result<Self> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(FloorplanError::InvalidConfig {
                context: "trace interval must be positive".into(),
            });
        }
        Ok(TraceGenerator {
            floorplan,
            dt,
            seed,
        })
    }

    /// The floorplan being driven.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Generates a `steps`-long trace for one scenario.
    ///
    /// Deterministic in `(seed, scenario, steps)`.
    pub fn generate(&self, scenario: Scenario, steps: usize) -> PowerTrace {
        let b = self.floorplan.len();
        let cores = self.floorplan.blocks_of_kind(BlockKind::Core);
        let n_cores = cores.len().max(1);
        let mut rng = StdRng::seed_from_u64(self.seed ^ scenario_salt(scenario));

        // Per-core AR(1) utilization state.
        let mut core_u = vec![0.1_f64; n_cores];
        // Migration state: which core hosts the hot task.
        let mut hot_core = 0usize;
        // Mixed state: current active subset.
        let mut active: Vec<bool> = (0..n_cores).map(|_| rng.gen_bool(0.5)).collect();
        // Phase length in steps for regime switches (~300 ms at dt=50 ms).
        let phase = ((0.3 / self.dt).round() as usize).max(1);

        let mut data = Vec::with_capacity(steps * b);
        for t in 0..steps {
            if t % phase == 0 && t > 0 {
                match scenario {
                    Scenario::Migration => {
                        hot_core = rng.gen_range(0..n_cores);
                    }
                    Scenario::Mixed => {
                        for a in active.iter_mut() {
                            *a = rng.gen_bool(0.45);
                        }
                    }
                    _ => {}
                }
            }
            // Scenario-specific utilization targets.
            for (ci, u) in core_u.iter_mut().enumerate() {
                let target = match scenario {
                    Scenario::Idle => 0.05,
                    Scenario::WebServer => {
                        if rng.gen_bool(0.08) {
                            0.95 // short burst
                        } else {
                            0.45
                        }
                    }
                    Scenario::ComputeBound => {
                        if ci < n_cores / 2 {
                            0.95
                        } else {
                            0.15
                        }
                    }
                    Scenario::Migration => {
                        if ci == hot_core {
                            0.95
                        } else {
                            0.10
                        }
                    }
                    Scenario::Mixed => {
                        if active[ci] {
                            0.85
                        } else {
                            0.10
                        }
                    }
                };
                // AR(1): u ← ρu + (1−ρ)target + σε, clamped to [0, 1].
                let rho = 0.80;
                let sigma = 0.06;
                let eps: f64 = rng.gen::<f64>() * 2.0 - 1.0;
                *u = (rho * *u + (1.0 - rho) * target + sigma * eps).clamp(0.0, 1.0);
            }

            // Derived uncore activity.
            let mean_u: f64 = core_u.iter().sum::<f64>() / n_cores as f64;
            let left_u: f64 =
                core_u.iter().take(n_cores / 2).sum::<f64>() / (n_cores / 2).max(1) as f64;
            let right_u: f64 = core_u.iter().skip(n_cores / 2).sum::<f64>()
                / (n_cores - n_cores / 2).max(1) as f64;
            let fpu_u = match scenario {
                Scenario::ComputeBound => (mean_u * 1.4).min(1.0),
                Scenario::Idle => 0.02,
                _ => mean_u * 0.5,
            };

            let mut core_cursor = 0usize;
            for block in self.floorplan.blocks() {
                let u = match block.kind {
                    BlockKind::Core => {
                        let u = core_u[core_cursor % n_cores];
                        core_cursor += 1;
                        u
                    }
                    // L2 banks: left banks follow the first half of the
                    // cores, right banks the second (cache traffic locality).
                    BlockKind::L2Cache => {
                        if block.x < 0.5 {
                            left_u * 0.9
                        } else {
                            right_u * 0.9
                        }
                    }
                    BlockKind::Crossbar => mean_u,
                    BlockKind::Fpu => fpu_u,
                    BlockKind::DramCtl => (mean_u * 0.8).min(1.0),
                    BlockKind::IoBridge => match scenario {
                        Scenario::WebServer => (mean_u * 1.2).min(1.0),
                        _ => mean_u * 0.4,
                    },
                    BlockKind::Misc => 0.5,
                };
                data.push(block.power(u));
            }
        }
        PowerTrace {
            steps,
            blocks: b,
            data,
            dt: self.dt,
        }
    }

    /// Generates the default multi-scenario schedule: `steps_per_scenario`
    /// steps of every scenario in [`Scenario::ALL`] order, concatenated —
    /// the reproduction's stand-in for the paper's scenario mix.
    ///
    /// # Errors
    ///
    /// Propagates [`PowerTrace::concat`] errors (cannot occur here).
    pub fn generate_schedule(&self, steps_per_scenario: usize) -> Result<PowerTrace> {
        let mut trace: Option<PowerTrace> = None;
        for (i, &s) in Scenario::ALL.iter().enumerate() {
            let gen = TraceGenerator {
                floorplan: self.floorplan.clone(),
                dt: self.dt,
                seed: self.seed.wrapping_add(i as u64 * 0x9E37_79B9),
            };
            let part = gen.generate(s, steps_per_scenario);
            trace = Some(match trace {
                None => part,
                Some(t) => t.concat(&part)?,
            });
        }
        Ok(trace.expect("ALL is non-empty"))
    }
}

fn scenario_salt(s: Scenario) -> u64 {
    match s {
        Scenario::Idle => 0x1D1E,
        Scenario::WebServer => 0x3EB5,
        Scenario::ComputeBound => 0xC0B0,
        Scenario::Migration => 0x316A,
        Scenario::Mixed => 0x317E,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> TraceGenerator {
        TraceGenerator::new(Floorplan::ultrasparc_t1(), 0.05, seed).unwrap()
    }

    #[test]
    fn trace_dimensions() {
        let g = generator(1);
        let t = g.generate(Scenario::WebServer, 40);
        assert_eq!(t.len(), 40);
        assert_eq!(t.blocks(), 18);
        assert_eq!(t.step(0).len(), 18);
        assert_eq!(t.iter().count(), 40);
        assert!((t.dt() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generator(7).generate(Scenario::Mixed, 30);
        let b = generator(7).generate(Scenario::Mixed, 30);
        let c = generator(8).generate(Scenario::Mixed, 30);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn power_within_block_envelopes() {
        let g = generator(2);
        let fp = g.floorplan().clone();
        for scenario in Scenario::ALL {
            let t = g.generate(scenario, 50);
            for step in t.iter() {
                for (p, b) in step.iter().zip(fp.blocks()) {
                    assert!(
                        *p >= b.idle_power - 1e-12 && *p <= b.peak_power + 1e-12,
                        "{}: {} outside [{}, {}]",
                        b.name,
                        p,
                        b.idle_power,
                        b.peak_power
                    );
                }
            }
        }
    }

    #[test]
    fn idle_is_cooler_than_compute() {
        let g = generator(3);
        let idle = g.generate(Scenario::Idle, 100);
        let busy = g.generate(Scenario::ComputeBound, 100);
        let total = |t: &PowerTrace| -> f64 { t.iter().map(|s| s.iter().sum::<f64>()).sum() };
        assert!(total(&busy) > 1.5 * total(&idle));
    }

    #[test]
    fn migration_moves_the_hot_core() {
        let g = generator(4);
        let t = g.generate(Scenario::Migration, 400);
        let fp = g.floorplan();
        let cores = fp.blocks_of_kind(crate::block::BlockKind::Core);
        // Identify the hottest core at several well-separated times; over
        // a long window the hot spot must move at least once.
        let hottest = |step: &[f64]| -> usize {
            cores
                .iter()
                .copied()
                .max_by(|&a, &b| step[a].partial_cmp(&step[b]).unwrap())
                .unwrap()
        };
        let marks: Vec<usize> = (0..8).map(|i| hottest(t.step(i * 50))).collect();
        let first = marks[0];
        assert!(
            marks.iter().any(|&m| m != first),
            "hot task never migrated: {marks:?}"
        );
    }

    #[test]
    fn compute_bound_is_spatially_asymmetric() {
        let g = generator(5);
        let t = g.generate(Scenario::ComputeBound, 60);
        let fp = g.floorplan();
        let cores = fp.blocks_of_kind(crate::block::BlockKind::Core);
        let (first_half, second_half) = cores.split_at(cores.len() / 2);
        let avg = |ids: &[usize]| -> f64 {
            t.iter()
                .map(|s| ids.iter().map(|&i| s[i]).sum::<f64>() / ids.len() as f64)
                .sum::<f64>()
                / t.len() as f64
        };
        assert!(avg(first_half) > 1.5 * avg(second_half));
    }

    #[test]
    fn schedule_concatenates_all_scenarios() {
        let g = generator(6);
        let t = g.generate_schedule(20).unwrap();
        assert_eq!(t.len(), 20 * Scenario::ALL.len());
    }

    #[test]
    fn invalid_dt_rejected() {
        assert!(TraceGenerator::new(Floorplan::ultrasparc_t1(), 0.0, 1).is_err());
    }

    #[test]
    fn concat_validates_shape() {
        let g = generator(1);
        let a = g.generate(Scenario::Idle, 5);
        let other = TraceGenerator::new(Floorplan::ultrasparc_t1(), 0.1, 1)
            .unwrap()
            .generate(Scenario::Idle, 5);
        assert!(a.concat(&other).is_err());
    }
}
