//! Error type for floorplan modelling and dataset generation.

use std::error::Error;
use std::fmt;

use eigenmaps_core::CoreError;
use eigenmaps_thermal::ThermalError;

/// Errors produced while building floorplans, generating power traces or
/// running the dataset pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum FloorplanError {
    /// A floorplan or builder parameter was invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        context: String,
    },
    /// A power trace had the wrong number of block entries.
    TraceShapeMismatch {
        /// Blocks expected.
        expected: usize,
        /// Entries received.
        found: usize,
    },
    /// The thermal simulator failed.
    Thermal(ThermalError),
    /// A core-algorithm type failed (e.g. building the map ensemble).
    Core(CoreError),
    /// Reading or writing a cached dataset failed.
    Io(std::io::Error),
    /// A cached dataset file was malformed.
    CorruptCache {
        /// What was wrong with the file.
        context: &'static str,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::InvalidConfig { context } => {
                write!(f, "invalid floorplan configuration: {context}")
            }
            FloorplanError::TraceShapeMismatch { expected, found } => {
                write!(
                    f,
                    "power trace has {found} entries, floorplan has {expected} blocks"
                )
            }
            FloorplanError::Thermal(e) => write!(f, "thermal simulation failed: {e}"),
            FloorplanError::Core(e) => write!(f, "map ensemble construction failed: {e}"),
            FloorplanError::Io(e) => write!(f, "dataset cache I/O failed: {e}"),
            FloorplanError::CorruptCache { context } => {
                write!(f, "corrupt dataset cache: {context}")
            }
        }
    }
}

impl Error for FloorplanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FloorplanError::Thermal(e) => Some(e),
            FloorplanError::Core(e) => Some(e),
            FloorplanError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for FloorplanError {
    fn from(e: ThermalError) -> Self {
        FloorplanError::Thermal(e)
    }
}

impl From<CoreError> for FloorplanError {
    fn from(e: CoreError) -> Self {
        FloorplanError::Core(e)
    }
}

impl From<std::io::Error> for FloorplanError {
    fn from(e: std::io::Error) -> Self {
        FloorplanError::Io(e)
    }
}

impl From<eigenmaps_core::CodecError> for FloorplanError {
    fn from(e: eigenmaps_core::CodecError) -> Self {
        FloorplanError::CorruptCache { context: e.context }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FloorplanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = FloorplanError::TraceShapeMismatch {
            expected: 17,
            found: 3,
        };
        assert!(e.to_string().contains("17"));
        let e = FloorplanError::InvalidConfig {
            context: "grid too small".into(),
        };
        assert!(e.to_string().contains("grid too small"));
    }

    #[test]
    fn sources_chain() {
        let e = FloorplanError::from(ThermalError::InvalidConfig { context: "x" });
        assert!(e.source().is_some());
        let e = FloorplanError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
