//! Rasterization of per-block power onto the thermal grid.

use eigenmaps_thermal::GridSpec;

use crate::block::Floorplan;
use crate::error::{FloorplanError, Result};

/// Distributes block power over grid cells in proportion to geometric
/// overlap.
///
/// The mapping is precomputed once per (floorplan, grid) pair: for every
/// block, the fraction of its area covering each cell. A power vector of
/// `B` block wattages then rasterizes to an `N`-cell power map with one
/// sparse pass — this runs once per trace step, so it must be cheap.
#[derive(Debug, Clone)]
pub struct PowerRasterizer {
    blocks: usize,
    cells: usize,
    /// Per block: `(cell index, fraction of block power landing there)`.
    weights: Vec<Vec<(usize, f64)>>,
}

impl PowerRasterizer {
    /// Precomputes the block→cell overlap weights.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidConfig`] for an empty grid.
    pub fn new(floorplan: &Floorplan, grid: GridSpec) -> Result<Self> {
        if grid.cells() == 0 {
            return Err(FloorplanError::InvalidConfig {
                context: "rasterizer: empty grid".into(),
            });
        }
        let rows = grid.rows;
        let cols = grid.cols;
        let mut weights = Vec::with_capacity(floorplan.len());
        for block in floorplan.blocks() {
            let mut w: Vec<(usize, f64)> = Vec::new();
            // Cell (r, c) spans [c/cols, (c+1)/cols) × [r/rows, (r+1)/rows)
            // in normalized coordinates.
            let c0 = (block.x * cols as f64).floor() as usize;
            let c1 = ((block.x + block.width) * cols as f64).ceil() as usize;
            let r0 = (block.y * rows as f64).floor() as usize;
            let r1 = ((block.y + block.height) * rows as f64).ceil() as usize;
            let mut total = 0.0;
            for c in c0..c1.min(cols) {
                let cx0 = c as f64 / cols as f64;
                let cx1 = (c + 1) as f64 / cols as f64;
                let ox = (block.x + block.width).min(cx1) - block.x.max(cx0);
                if ox <= 0.0 {
                    continue;
                }
                for r in r0..r1.min(rows) {
                    let cy0 = r as f64 / rows as f64;
                    let cy1 = (r + 1) as f64 / rows as f64;
                    let oy = (block.y + block.height).min(cy1) - block.y.max(cy0);
                    if oy <= 0.0 {
                        continue;
                    }
                    let overlap = ox * oy;
                    w.push((grid.index(r, c), overlap));
                    total += overlap;
                }
            }
            // Normalize so the block's wattage is conserved exactly.
            if total > 0.0 {
                for (_, f) in w.iter_mut() {
                    *f /= total;
                }
            }
            weights.push(w);
        }
        Ok(PowerRasterizer {
            blocks: floorplan.len(),
            cells: grid.cells(),
            weights,
        })
    }

    /// Number of floorplan blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Rasterizes per-block wattages into a per-cell power map.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::TraceShapeMismatch`] if
    /// `block_power.len()` differs from the block count.
    pub fn rasterize(&self, block_power: &[f64]) -> Result<Vec<f64>> {
        if block_power.len() != self.blocks {
            return Err(FloorplanError::TraceShapeMismatch {
                expected: self.blocks,
                found: block_power.len(),
            });
        }
        let mut cells = vec![0.0; self.cells];
        for (w, &p) in self.weights.iter().zip(block_power.iter()) {
            for &(cell, frac) in w {
                cells[cell] += p * frac;
            }
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockKind};

    fn half_and_half() -> Floorplan {
        let left = Block::new("left", BlockKind::Core, 0.0, 0.0, 0.5, 1.0, 0.0, 10.0).unwrap();
        let right = Block::new("right", BlockKind::Misc, 0.5, 0.0, 0.5, 1.0, 0.0, 10.0).unwrap();
        Floorplan::new("half", 0.01, 0.01, vec![left, right]).unwrap()
    }

    #[test]
    fn power_is_conserved() {
        let fp = Floorplan::ultrasparc_t1();
        let grid = GridSpec::new(14, 15, 1e-3, 1e-3);
        let rast = PowerRasterizer::new(&fp, grid).unwrap();
        let block_power: Vec<f64> = (0..fp.len()).map(|i| 0.5 + i as f64 * 0.1).collect();
        let cells = rast.rasterize(&block_power).unwrap();
        let total_in: f64 = block_power.iter().sum();
        let total_out: f64 = cells.iter().sum();
        assert!(
            (total_in - total_out).abs() < 1e-9,
            "in {total_in} out {total_out}"
        );
    }

    #[test]
    fn split_floorplan_maps_to_correct_halves() {
        let fp = half_and_half();
        let grid = GridSpec::new(4, 4, 1e-3, 1e-3);
        let rast = PowerRasterizer::new(&fp, grid).unwrap();
        let cells = rast.rasterize(&[8.0, 0.0]).unwrap();
        // Left block covers columns 0..2: power only there.
        for c in 0..4 {
            for r in 0..4 {
                let p = cells[grid.index(r, c)];
                if c < 2 {
                    assert!((p - 1.0).abs() < 1e-12, "({r},{c}) = {p}");
                } else {
                    assert_eq!(p, 0.0, "({r},{c})");
                }
            }
        }
    }

    #[test]
    fn partial_cell_overlap_weighted() {
        // One block covering 1.5 columns of a 2-col grid.
        let b = Block::new("b", BlockKind::Core, 0.0, 0.0, 0.75, 1.0, 0.0, 1.0).unwrap();
        let fp = Floorplan::new("f", 0.01, 0.01, vec![b]).unwrap();
        let grid = GridSpec::new(1, 2, 1e-3, 1e-3);
        let rast = PowerRasterizer::new(&fp, grid).unwrap();
        let cells = rast.rasterize(&[3.0]).unwrap();
        // 2/3 of the block sits in column 0, 1/3 in column 1.
        assert!((cells[0] - 2.0).abs() < 1e-12);
        assert!((cells[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_shape_checked() {
        let fp = half_and_half();
        let rast = PowerRasterizer::new(&fp, GridSpec::new(2, 2, 1e-3, 1e-3)).unwrap();
        assert!(matches!(
            rast.rasterize(&[1.0]),
            Err(FloorplanError::TraceShapeMismatch { .. })
        ));
    }

    #[test]
    fn t1_core_power_lands_on_core_cells() {
        let fp = Floorplan::ultrasparc_t1();
        let grid = GridSpec::new(14, 15, 1e-3, 1e-3);
        let rast = PowerRasterizer::new(&fp, grid).unwrap();
        // Only core0 powered: all wattage must land in its rectangle
        // (top-left quadrant region, y in [0,0.22] → rows 0..=3).
        let mut power = vec![0.0; fp.len()];
        power[0] = 4.0;
        let cells = rast.rasterize(&power).unwrap();
        let mut outside = 0.0;
        for c in 0..15 {
            for r in 0..14 {
                let p = cells[grid.index(r, c)];
                let in_core0 = (c as f64) / 15.0 < 0.25 && (r as f64) / 14.0 < 0.22;
                let touches_core0 = (c as f64) < 0.25 * 15.0 && (r as f64) < 0.22 * 14.0 + 1.0;
                if !in_core0 && !touches_core0 {
                    outside += p;
                }
            }
        }
        assert!(outside < 1e-9, "power leaked outside core0: {outside}");
    }
}
