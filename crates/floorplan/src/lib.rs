//! UltraSPARC T1 floorplan modelling, workload synthesis and design-time
//! dataset generation for the EigenMaps reproduction.
//!
//! The paper's evaluation needs three inputs this crate provides:
//!
//! * a **floorplan** of the 8-core UltraSPARC T1 ([`Floorplan::ultrasparc_t1`],
//!   Fig. 1 of the paper) with per-block power envelopes scaled to the
//!   chip's ~63 W budget;
//! * **power traces** for "different scenarios/workload"
//!   ([`TraceGenerator`], [`Scenario`]) — the published traces of Leon et
//!   al. are proprietary, so statistically comparable Markov-modulated
//!   traces are synthesized (see DESIGN.md, substitutions);
//! * the **design-time dataset** of `T = 2652` thermal maps on a
//!   `56 × 60` grid ([`DatasetBuilder`]), produced by replaying the traces
//!   through the compact transient thermal simulator of
//!   [`eigenmaps_thermal`].
//!
//! Datasets can be cached to disk ([`cache::save_ensemble`] /
//! [`cache::load_ensemble`]) so the figure binaries pay the simulation
//! cost once.
//!
//! # Examples
//!
//! ```
//! use eigenmaps_floorplan::{DatasetBuilder, BlockKind};
//! use eigenmaps_core::Mask;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = DatasetBuilder::ultrasparc_t1()
//!     .grid(14, 15)     // coarse smoke-test grid
//!     .snapshots(40)
//!     .seed(1)
//!     .build()?;
//!
//! // The Fig. 6 constraint: no sensors in the L2 cache banks.
//! let fp = dataset.floorplan();
//! let mask = Mask::all_allowed(14, 15)
//!     .forbid_rects(&fp.rects_of_kind(BlockKind::L2Cache));
//! assert!(mask.allowed_count() < 14 * 15);
//! # Ok(())
//! # }
//! ```

pub mod block;
pub mod cache;
pub mod dataset;
pub mod error;
pub mod power;
pub mod ptrace;
pub mod workload;

pub use block::{Block, BlockKind, Floorplan};
pub use dataset::{DatasetBuilder, ThermalDataset};
pub use error::{FloorplanError, Result};
pub use power::PowerRasterizer;
pub use ptrace::{from_ptrace_string, load_ptrace, save_ptrace, to_ptrace_string};
pub use workload::{PowerTrace, Scenario, TraceGenerator};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::block::{Block, BlockKind, Floorplan};
    pub use crate::cache::{load_ensemble, save_ensemble};
    pub use crate::dataset::{DatasetBuilder, ThermalDataset};
    pub use crate::error::{FloorplanError, Result};
    pub use crate::power::PowerRasterizer;
    pub use crate::ptrace::{from_ptrace_string, load_ptrace, save_ptrace, to_ptrace_string};
    pub use crate::workload::{PowerTrace, Scenario, TraceGenerator};
}
