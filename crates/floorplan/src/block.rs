//! Floorplan blocks and the UltraSPARC T1 (Niagara) model.
//!
//! The paper's evaluation platform is an 8-core UltraSPARC T1 (Fig. 1 of
//! the paper; Leon et al., JSSC 2007). The floorplan here follows the
//! simplified layout of the paper's figure — two rows of four SPARC cores
//! at the top and bottom edges, L2 cache banks on the left and right
//! flanks, and the crossbar (CCX), FPU, DRAM controllers and I/O bridge in
//! the middle band — with per-block power budgets scaled to the chip's
//! ~63 W envelope.

use crate::error::{FloorplanError, Result};

/// Functional unit category; drives both the workload model and the
/// cache placement constraint of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum BlockKind {
    /// An in-order SPARC core (4 threads on the T1).
    Core,
    /// An L2 cache bank — sensors cannot be placed here in the
    /// constrained experiment (regular structure).
    L2Cache,
    /// The CPX/PCX crossbar connecting cores to L2 banks.
    Crossbar,
    /// The shared floating-point unit.
    Fpu,
    /// A DRAM controller.
    DramCtl,
    /// The I/O bridge.
    IoBridge,
    /// Anything else (clock spine, misc glue).
    Misc,
}

/// A rectangular floorplan block in normalized die coordinates.
///
/// `x` runs along columns (die width), `y` along rows (die height); all
/// four of `x, y, width, height` are fractions of the die in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instance name, unique within a floorplan (e.g. `"core3"`).
    pub name: String,
    /// Functional category.
    pub kind: BlockKind,
    /// Left edge, normalized.
    pub x: f64,
    /// Top edge, normalized.
    pub y: f64,
    /// Width, normalized.
    pub width: f64,
    /// Height, normalized.
    pub height: f64,
    /// Power draw when idle (W).
    pub idle_power: f64,
    /// Power draw at full utilization (W).
    pub peak_power: f64,
}

impl Block {
    /// Creates a block after validating geometry and power numbers.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidConfig`] if the rectangle leaves
    /// the unit square, has non-positive extent, or the power range is
    /// inverted/negative.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        kind: BlockKind,
        x: f64,
        y: f64,
        width: f64,
        height: f64,
        idle_power: f64,
        peak_power: f64,
    ) -> Result<Self> {
        let name = name.into();
        if !(width > 0.0 && height > 0.0) {
            return Err(FloorplanError::InvalidConfig {
                context: format!("block {name}: non-positive extent"),
            });
        }
        if x < 0.0 || y < 0.0 || x + width > 1.0 + 1e-9 || y + height > 1.0 + 1e-9 {
            return Err(FloorplanError::InvalidConfig {
                context: format!("block {name}: rectangle outside the unit die"),
            });
        }
        if idle_power < 0.0 || peak_power < idle_power {
            return Err(FloorplanError::InvalidConfig {
                context: format!("block {name}: power range invalid"),
            });
        }
        Ok(Block {
            name,
            kind,
            x,
            y,
            width,
            height,
            idle_power,
            peak_power,
        })
    }

    /// Normalized area of the block.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Power at utilization `u ∈ [0, 1]`: linear between idle and peak
    /// (the standard activity-factor model).
    pub fn power(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_power + (self.peak_power - self.idle_power) * u
    }

    /// The block rectangle as `(x, y, w, h)` — the shape masks consume.
    pub fn rect(&self) -> (f64, f64, f64, f64) {
        (self.x, self.y, self.width, self.height)
    }
}

/// A named collection of blocks plus physical die dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    name: String,
    die_width: f64,
    die_height: f64,
    blocks: Vec<Block>,
}

impl Floorplan {
    /// Creates a floorplan from parts.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidConfig`] for an empty block list,
    /// non-positive die dimensions, or duplicate block names.
    pub fn new(
        name: impl Into<String>,
        die_width: f64,
        die_height: f64,
        blocks: Vec<Block>,
    ) -> Result<Self> {
        let name = name.into();
        if blocks.is_empty() {
            return Err(FloorplanError::InvalidConfig {
                context: format!("floorplan {name}: no blocks"),
            });
        }
        if !(die_width > 0.0 && die_height > 0.0) {
            return Err(FloorplanError::InvalidConfig {
                context: format!("floorplan {name}: non-positive die dimensions"),
            });
        }
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                if blocks[i].name == blocks[j].name {
                    return Err(FloorplanError::InvalidConfig {
                        context: format!("duplicate block name {}", blocks[i].name),
                    });
                }
            }
        }
        Ok(Floorplan {
            name,
            die_width,
            die_height,
            blocks,
        })
    }

    /// The UltraSPARC T1 model used throughout the reproduction:
    /// 8 cores, 4 L2 data banks, crossbar, FPU, 2 DRAM controllers, I/O
    /// bridge and a misc/clock block — 18 blocks, ~63 W peak total on a
    /// 19.2 mm × 18.0 mm die (90 nm generation).
    pub fn ultrasparc_t1() -> Self {
        // Helper keeps the table readable.
        let b = |name: &str, kind, x, y, w, h, idle, peak| {
            Block::new(name, kind, x, y, w, h, idle, peak).expect("static T1 table is valid")
        };
        let mut blocks = Vec::with_capacity(17);
        // Two rows of four cores at the top and bottom edges.
        for i in 0..4 {
            blocks.push(b(
                &format!("core{i}"),
                BlockKind::Core,
                i as f64 * 0.25,
                0.0,
                0.25,
                0.22,
                1.2,
                5.2,
            ));
        }
        for i in 4..8 {
            blocks.push(b(
                &format!("core{i}"),
                BlockKind::Core,
                (i - 4) as f64 * 0.25,
                0.78,
                0.25,
                0.22,
                1.2,
                5.2,
            ));
        }
        // L2 data banks on the flanks.
        blocks.push(b(
            "l2b0",
            BlockKind::L2Cache,
            0.0,
            0.22,
            0.20,
            0.28,
            0.8,
            1.9,
        ));
        blocks.push(b(
            "l2b1",
            BlockKind::L2Cache,
            0.0,
            0.50,
            0.20,
            0.28,
            0.8,
            1.9,
        ));
        blocks.push(b(
            "l2b2",
            BlockKind::L2Cache,
            0.80,
            0.22,
            0.20,
            0.28,
            0.8,
            1.9,
        ));
        blocks.push(b(
            "l2b3",
            BlockKind::L2Cache,
            0.80,
            0.50,
            0.20,
            0.28,
            0.8,
            1.9,
        ));
        // Middle band: crossbar, FPU, DRAM controllers, IOB, misc.
        blocks.push(b(
            "ccx",
            BlockKind::Crossbar,
            0.20,
            0.42,
            0.40,
            0.16,
            1.0,
            3.6,
        ));
        blocks.push(b("fpu", BlockKind::Fpu, 0.60, 0.42, 0.20, 0.16, 0.3, 1.8));
        blocks.push(b(
            "dram0",
            BlockKind::DramCtl,
            0.20,
            0.22,
            0.30,
            0.20,
            0.7,
            1.6,
        ));
        blocks.push(b(
            "dram1",
            BlockKind::DramCtl,
            0.50,
            0.22,
            0.30,
            0.20,
            0.7,
            1.6,
        ));
        blocks.push(b(
            "iob",
            BlockKind::IoBridge,
            0.20,
            0.58,
            0.30,
            0.20,
            0.6,
            1.4,
        ));
        blocks.push(b("misc", BlockKind::Misc, 0.50, 0.58, 0.30, 0.20, 0.9, 1.5));
        Floorplan::new("UltraSPARC T1", 19.2e-3, 18.0e-3, blocks).expect("static table is valid")
    }

    /// A dual-core Athlon 64 X2 model — the processor the k-LSE paper
    /// (Nowroz et al.) evaluated on. The EigenMaps paper attributes part
    /// of k-LSE's weakness on the T1 to the T1 "generating more high
    /// frequency content" than the Athlon; this floorplan lets the
    /// `ablation_processors` experiment test that claim: two big cores
    /// and a large shared L2 produce smoother, lower-frequency maps than
    /// the T1's eight small cores.
    pub fn athlon64_x2() -> Self {
        let b = |name: &str, kind, x, y, w, h, idle, peak| {
            Block::new(name, kind, x, y, w, h, idle, peak).expect("static Athlon table is valid")
        };
        let blocks = vec![
            // Two wide cores across the top half.
            b("core0", BlockKind::Core, 0.0, 0.0, 0.5, 0.45, 6.0, 32.0),
            b("core1", BlockKind::Core, 0.5, 0.0, 0.5, 0.45, 6.0, 32.0),
            // Per-core L2 banks across the bottom.
            b("l2c0", BlockKind::L2Cache, 0.0, 0.55, 0.5, 0.45, 1.5, 4.0),
            b("l2c1", BlockKind::L2Cache, 0.5, 0.55, 0.5, 0.45, 1.5, 4.0),
            // Northbridge / crossbar band between cores and caches.
            b("xbar", BlockKind::Crossbar, 0.0, 0.45, 0.5, 0.10, 1.0, 3.0),
            b("memctl", BlockKind::DramCtl, 0.5, 0.45, 0.3, 0.10, 1.0, 2.5),
            b("ht", BlockKind::IoBridge, 0.8, 0.45, 0.2, 0.10, 0.5, 1.5),
        ];
        Floorplan::new("Athlon 64 X2", 14.7e-3, 12.8e-3, blocks).expect("static table is valid")
    }

    /// Floorplan name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical die width in meters.
    pub fn die_width(&self) -> f64 {
        self.die_width
    }

    /// Physical die height in meters.
    pub fn die_height(&self) -> f64 {
        self.die_height
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the floorplan has no blocks (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Looks a block up by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Indices of all blocks of a given kind.
    pub fn blocks_of_kind(&self, kind: BlockKind) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| (b.kind == kind).then_some(i))
            .collect()
    }

    /// Total power with every block at the given utilization.
    pub fn total_power(&self, utilization: f64) -> f64 {
        self.blocks.iter().map(|b| b.power(utilization)).sum()
    }

    /// Rectangles of every block of `kind`, for building placement masks
    /// (e.g. "no sensors in the caches", Fig. 6).
    pub fn rects_of_kind(&self, kind: BlockKind) -> Vec<(f64, f64, f64, f64)> {
        self.blocks
            .iter()
            .filter(|b| b.kind == kind)
            .map(|b| b.rect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_shape() {
        let fp = Floorplan::ultrasparc_t1();
        assert_eq!(fp.len(), 18);
        assert_eq!(fp.blocks_of_kind(BlockKind::Core).len(), 8);
        assert_eq!(fp.blocks_of_kind(BlockKind::L2Cache).len(), 4);
        assert!(fp.block("core0").is_some());
        assert!(fp.block("ccx").is_some());
        assert!(fp.block("nonexistent").is_none());
    }

    #[test]
    fn t1_power_budget_plausible() {
        let fp = Floorplan::ultrasparc_t1();
        let peak = fp.total_power(1.0);
        let idle = fp.total_power(0.0);
        // Leon et al. report a ~63 W chip; allow the die-level budget to
        // land in a plausible band (the remainder is I/O and leakage).
        assert!((50.0..75.0).contains(&peak), "peak {peak} W");
        assert!((5.0..25.0).contains(&idle), "idle {idle} W");
    }

    #[test]
    fn t1_blocks_inside_die_and_disjoint() {
        let fp = Floorplan::ultrasparc_t1();
        for b in fp.blocks() {
            assert!(b.x >= 0.0 && b.y >= 0.0);
            assert!(b.x + b.width <= 1.0 + 1e-9);
            assert!(b.y + b.height <= 1.0 + 1e-9);
        }
        // Pairwise overlap area must be zero.
        for (i, a) in fp.blocks().iter().enumerate() {
            for c in fp.blocks().iter().skip(i + 1) {
                let ox = (a.x + a.width).min(c.x + c.width) - a.x.max(c.x);
                let oy = (a.y + a.height).min(c.y + c.height) - a.y.max(c.y);
                let overlap = ox.max(0.0) * oy.max(0.0);
                assert!(
                    overlap < 1e-12,
                    "blocks {} and {} overlap by {overlap}",
                    a.name,
                    c.name
                );
            }
        }
    }

    #[test]
    fn t1_covers_the_die() {
        let fp = Floorplan::ultrasparc_t1();
        let total: f64 = fp.blocks().iter().map(Block::area).sum();
        assert!((total - 1.0).abs() < 1e-9, "covered {total}");
    }

    #[test]
    fn block_power_is_linear_and_clamped() {
        let b = Block::new("x", BlockKind::Core, 0.0, 0.0, 0.5, 0.5, 1.0, 5.0).unwrap();
        assert_eq!(b.power(0.0), 1.0);
        assert_eq!(b.power(1.0), 5.0);
        assert_eq!(b.power(0.5), 3.0);
        assert_eq!(b.power(-1.0), 1.0);
        assert_eq!(b.power(2.0), 5.0);
    }

    #[test]
    fn block_validation() {
        assert!(Block::new("x", BlockKind::Misc, 0.0, 0.0, 0.0, 0.5, 0.0, 1.0).is_err());
        assert!(Block::new("x", BlockKind::Misc, 0.8, 0.0, 0.5, 0.5, 0.0, 1.0).is_err());
        assert!(Block::new("x", BlockKind::Misc, 0.0, 0.0, 0.5, 0.5, 2.0, 1.0).is_err());
        assert!(Block::new("x", BlockKind::Misc, 0.0, 0.0, 0.5, 0.5, -1.0, 1.0).is_err());
    }

    #[test]
    fn floorplan_validation() {
        assert!(Floorplan::new("f", 0.01, 0.01, vec![]).is_err());
        let b = Block::new("a", BlockKind::Misc, 0.0, 0.0, 0.5, 0.5, 0.0, 1.0).unwrap();
        assert!(Floorplan::new("f", 0.0, 0.01, vec![b.clone()]).is_err());
        assert!(Floorplan::new("f", 0.01, 0.01, vec![b.clone(), b]).is_err());
    }

    #[test]
    fn athlon_shape_and_budget() {
        let fp = Floorplan::athlon64_x2();
        assert_eq!(fp.blocks_of_kind(BlockKind::Core).len(), 2);
        assert_eq!(fp.blocks_of_kind(BlockKind::L2Cache).len(), 2);
        // ~89 W TDP class part.
        let peak = fp.total_power(1.0);
        assert!((60.0..110.0).contains(&peak), "peak {peak} W");
        // Blocks tile the die with no overlap.
        let total: f64 = fp.blocks().iter().map(Block::area).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (i, a) in fp.blocks().iter().enumerate() {
            for c in fp.blocks().iter().skip(i + 1) {
                let ox = (a.x + a.width).min(c.x + c.width) - a.x.max(c.x);
                let oy = (a.y + a.height).min(c.y + c.height) - a.y.max(c.y);
                assert!(ox.max(0.0) * oy.max(0.0) < 1e-12);
            }
        }
    }

    #[test]
    fn cache_rects_for_masking() {
        let fp = Floorplan::ultrasparc_t1();
        let rects = fp.rects_of_kind(BlockKind::L2Cache);
        assert_eq!(rects.len(), 4);
        // All cache banks hug the left or right edge.
        for (x, _, w, _) in rects {
            assert!(x < 1e-9 || (x + w) > 1.0 - 1e-9);
        }
    }
}
