//! Design-time dataset generation: replay power traces through the
//! transient thermal simulator and collect the die thermal maps.
//!
//! This is the reproduction of the paper's experimental setup (Sec. 4):
//! `T = 2652` transient snapshots of a `W = 60 × H = 56` UltraSPARC T1
//! thermal map, produced by 3D-ICE from the Leon et al. power traces. The
//! defaults of [`DatasetBuilder`] regenerate exactly those dimensions.

use eigenmaps_core::{MapEnsemble, ThermalMap};
use eigenmaps_thermal::{Environment, GridSpec, Layer, ThermalModel, TransientSim};

use crate::block::Floorplan;
use crate::error::{FloorplanError, Result};
use crate::power::PowerRasterizer;
use crate::workload::{PowerTrace, Scenario, TraceGenerator};

/// A generated design-time dataset: the map ensemble plus the provenance
/// needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ThermalDataset {
    ensemble: MapEnsemble,
    floorplan: Floorplan,
    dt: f64,
    seed: u64,
}

impl ThermalDataset {
    /// The thermal-map ensemble (what PCA consumes).
    pub fn ensemble(&self) -> &MapEnsemble {
        &self.ensemble
    }

    /// Shorthand for `ensemble().map(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn map(&self, t: usize) -> ThermalMap {
        self.ensemble.map(t)
    }

    /// Number of snapshots `T`.
    pub fn len(&self) -> usize {
        self.ensemble.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.ensemble.is_empty()
    }

    /// The floorplan that generated the maps.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Snapshot interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Seed that generated the workload traces.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Builder for [`ThermalDataset`].
///
/// Defaults reproduce the paper's setup: UltraSPARC T1 floorplan,
/// `56 × 60` grid (`N = 3360`), 2652 snapshots at 50 ms from the
/// five-scenario workload schedule.
///
/// # Examples
///
/// ```
/// use eigenmaps_floorplan::DatasetBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A laptop-scale smoke dataset: coarse grid, few snapshots.
/// let dataset = DatasetBuilder::ultrasparc_t1()
///     .grid(14, 15)
///     .snapshots(60)
///     .seed(7)
///     .build()?;
/// assert_eq!(dataset.len(), 60);
/// assert_eq!(dataset.ensemble().cells(), 14 * 15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    floorplan: Floorplan,
    rows: usize,
    cols: usize,
    snapshots: usize,
    dt: f64,
    seed: u64,
    ambient: f64,
    heat_transfer_coefficient: f64,
    settle_steps: usize,
}

impl DatasetBuilder {
    /// Starts a builder for the UltraSPARC T1 with the paper's defaults.
    pub fn ultrasparc_t1() -> Self {
        DatasetBuilder {
            floorplan: Floorplan::ultrasparc_t1(),
            rows: 56,
            cols: 60,
            snapshots: 2652,
            dt: 0.05,
            seed: 0xD1E5,
            ambient: 45.0,
            heat_transfer_coefficient: 8.0e3,
            // ~5 s of warm-up: several package time constants, so the
            // recording starts from a thermally settled chip rather than
            // the all-ambient initial condition.
            settle_steps: 100,
        }
    }

    /// Uses a custom floorplan instead of the T1.
    pub fn floorplan(mut self, floorplan: Floorplan) -> Self {
        self.floorplan = floorplan;
        self
    }

    /// Overrides the grid resolution (`rows = H`, `cols = W`).
    pub fn grid(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Overrides the number of snapshots `T`.
    pub fn snapshots(mut self, snapshots: usize) -> Self {
        self.snapshots = snapshots;
        self
    }

    /// Overrides the snapshot interval in seconds.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Overrides the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the ambient temperature (°C).
    pub fn ambient(mut self, ambient: f64) -> Self {
        self.ambient = ambient;
        self
    }

    /// Overrides the sink heat-transfer coefficient (W/m²K).
    pub fn heat_transfer_coefficient(mut self, h: f64) -> Self {
        self.heat_transfer_coefficient = h;
        self
    }

    /// Overrides the number of warm-up steps discarded before recording
    /// (lets the stack leave the all-ambient initial condition).
    pub fn settle_steps(mut self, steps: usize) -> Self {
        self.settle_steps = steps;
        self
    }

    /// Runs the pipeline: trace generation → rasterization → transient
    /// thermal simulation → map ensemble.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::InvalidConfig`] for empty grids or zero
    ///   snapshots.
    /// * Propagated thermal-simulation and shape errors.
    pub fn build(self) -> Result<ThermalDataset> {
        if self.rows == 0 || self.cols == 0 {
            return Err(FloorplanError::InvalidConfig {
                context: "dataset grid is empty".into(),
            });
        }
        if self.snapshots == 0 {
            return Err(FloorplanError::InvalidConfig {
                context: "dataset needs at least one snapshot".into(),
            });
        }

        // Physical cell size from the die dimensions.
        let cell_w = self.floorplan.die_width() / self.cols as f64;
        let cell_h = self.floorplan.die_height() / self.rows as f64;
        let grid = GridSpec::new(self.rows, self.cols, cell_w, cell_h);

        let model = ThermalModel::new(
            grid,
            Layer::default_stack(),
            Environment {
                ambient: self.ambient,
                heat_transfer_coefficient: self.heat_transfer_coefficient,
            },
        )?;
        let mut sim = TransientSim::new(model, self.dt)?;
        let rasterizer = PowerRasterizer::new(&self.floorplan, grid)?;

        // Workload schedule covering all scenarios, padded to T snapshots.
        let generator = TraceGenerator::new(self.floorplan.clone(), self.dt, self.seed)?;
        let per_scenario = (self.snapshots + self.settle_steps).div_ceil(Scenario::ALL.len());
        let trace: PowerTrace = generator.generate_schedule(per_scenario)?;

        // Warm-up: run the first `settle_steps` without recording.
        let mut maps = Vec::with_capacity(self.snapshots);
        for (t, block_power) in trace.iter().enumerate() {
            if maps.len() == self.snapshots {
                break;
            }
            let cells = rasterizer.rasterize(block_power)?;
            let die = sim.step(&cells)?;
            if t >= self.settle_steps {
                maps.push(ThermalMap::new(self.rows, self.cols, die.to_vec())?);
            }
        }
        // The schedule is sized to cover settle + snapshots, but guard
        // against rounding.
        while maps.len() < self.snapshots {
            let cells = rasterizer.rasterize(trace.step(trace.len() - 1))?;
            let die = sim.step(&cells)?;
            maps.push(ThermalMap::new(self.rows, self.cols, die.to_vec())?);
        }

        Ok(ThermalDataset {
            ensemble: MapEnsemble::from_maps(&maps)?,
            floorplan: self.floorplan,
            dt: self.dt,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ThermalDataset {
        DatasetBuilder::ultrasparc_t1()
            .grid(14, 15)
            .snapshots(50)
            .settle_steps(10)
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn dimensions_match_request() {
        let d = small();
        assert_eq!(d.len(), 50);
        assert_eq!(d.ensemble().rows(), 14);
        assert_eq!(d.ensemble().cols(), 15);
        assert!((d.dt() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn maps_are_physical() {
        let d = small();
        for t in 0..d.len() {
            let m = d.map(t);
            // Above ambient, below silicon limits.
            assert!(m.min() >= 45.0 - 1e-6, "map {t} min {}", m.min());
            assert!(m.max() < 150.0, "map {t} max {}", m.max());
        }
    }

    #[test]
    fn maps_vary_over_time_and_space() {
        let d = small();
        let var = d.ensemble().cell_variance();
        let total: f64 = var.iter().sum();
        assert!(total > 1e-3, "dataset has no thermal variation: {total}");
        // Spatial structure: the hottest map has a real gradient.
        let m = d.map(d.len() - 1);
        assert!(m.max() - m.min() > 0.2, "map too flat: {:?}", m);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetBuilder::ultrasparc_t1()
            .grid(8, 9)
            .snapshots(12)
            .settle_steps(4)
            .seed(11)
            .build()
            .unwrap();
        let b = DatasetBuilder::ultrasparc_t1()
            .grid(8, 9)
            .snapshots(12)
            .settle_steps(4)
            .seed(11)
            .build()
            .unwrap();
        for t in 0..a.len() {
            assert_eq!(a.map(t).as_slice(), b.map(t).as_slice());
        }
    }

    #[test]
    fn builder_validation() {
        assert!(DatasetBuilder::ultrasparc_t1().grid(0, 5).build().is_err());
        assert!(DatasetBuilder::ultrasparc_t1()
            .grid(4, 4)
            .snapshots(0)
            .build()
            .is_err());
    }

    #[test]
    fn hot_cores_show_up_in_maps() {
        // With the T1 floorplan, core rows (top/bottom) should on average
        // run hotter than the die mid-band over a busy trace.
        let d = DatasetBuilder::ultrasparc_t1()
            .grid(14, 15)
            .snapshots(80)
            .settle_steps(30)
            .seed(5)
            .build()
            .unwrap();
        let last = d.map(d.len() - 1);
        let rows = last.rows();
        let mut edge = 0.0;
        let mut middle = 0.0;
        let mut edge_n = 0.0;
        let mut mid_n = 0.0;
        for r in 0..rows {
            for c in 0..last.cols() {
                let v = last.get(r, c);
                let y = r as f64 / rows as f64;
                if !(0.22..=0.78).contains(&y) {
                    edge += v;
                    edge_n += 1.0;
                } else {
                    middle += v;
                    mid_n += 1.0;
                }
            }
        }
        assert!(
            edge / edge_n > middle / mid_n,
            "core bands not hotter: {} vs {}",
            edge / edge_n,
            middle / mid_n
        );
    }
}
