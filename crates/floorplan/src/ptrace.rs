//! Power-trace text I/O in the HotSpot `.ptrace` convention: a header line
//! naming the blocks, then one whitespace/comma-separated row of wattages
//! per time step.
//!
//! Lets users replace the synthetic workload generator with measured
//! traces (the paper drove 3D-ICE from the Leon et al. measurements) and
//! export generated traces for use with other tools.

use std::fmt::Write as _;
use std::path::Path;

use crate::block::Floorplan;
use crate::error::{FloorplanError, Result};
use crate::workload::PowerTrace;

/// Serializes a trace to `.ptrace` text: header of block names, one row
/// per step.
///
/// # Errors
///
/// Returns [`FloorplanError::TraceShapeMismatch`] if the trace width
/// disagrees with the floorplan.
pub fn to_ptrace_string(floorplan: &Floorplan, trace: &PowerTrace) -> Result<String> {
    if trace.blocks() != floorplan.len() {
        return Err(FloorplanError::TraceShapeMismatch {
            expected: floorplan.len(),
            found: trace.blocks(),
        });
    }
    let mut out = String::new();
    let names: Vec<&str> = floorplan.blocks().iter().map(|b| b.name.as_str()).collect();
    out.push_str(&names.join("\t"));
    out.push('\n');
    for step in trace.iter() {
        let mut first = true;
        for v in step {
            if !first {
                out.push('\t');
            }
            let _ = write!(out, "{v:.6}");
            first = false;
        }
        out.push('\n');
    }
    Ok(out)
}

/// Writes a trace to a `.ptrace` file.
///
/// # Errors
///
/// Propagates [`to_ptrace_string`] and filesystem errors.
pub fn save_ptrace(floorplan: &Floorplan, trace: &PowerTrace, path: &Path) -> Result<()> {
    let body = to_ptrace_string(floorplan, trace)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, body)?;
    Ok(())
}

/// Parses `.ptrace` text against a floorplan. The header must contain
/// exactly the floorplan's block names; columns are reordered to the
/// floorplan's block order, so traces exported from tools with a different
/// block ordering load correctly. `dt` is the step interval to stamp on
/// the trace (the format itself carries no timing).
///
/// # Errors
///
/// * [`FloorplanError::InvalidConfig`] for missing/unknown header names,
///   unparsable numbers, or inconsistent row widths.
pub fn from_ptrace_string(floorplan: &Floorplan, text: &str, dt: f64) -> Result<PowerTrace> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or_else(|| FloorplanError::InvalidConfig {
        context: "ptrace: empty file".into(),
    })?;
    let names: Vec<&str> = header
        .split(['\t', ',', ' '])
        .filter(|s| !s.is_empty())
        .collect();
    if names.len() != floorplan.len() {
        return Err(FloorplanError::InvalidConfig {
            context: format!(
                "ptrace: header has {} columns, floorplan has {} blocks",
                names.len(),
                floorplan.len()
            ),
        });
    }
    // Column i of the file feeds floorplan block `order[i]`.
    let mut order = Vec::with_capacity(names.len());
    for name in &names {
        let idx = floorplan
            .blocks()
            .iter()
            .position(|b| b.name == *name)
            .ok_or_else(|| FloorplanError::InvalidConfig {
                context: format!("ptrace: unknown block {name}"),
            })?;
        if order.contains(&idx) {
            return Err(FloorplanError::InvalidConfig {
                context: format!("ptrace: duplicate block {name}"),
            });
        }
        order.push(idx);
    }

    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let vals: Vec<&str> = line
            .split(['\t', ',', ' '])
            .filter(|s| !s.is_empty())
            .collect();
        if vals.len() != names.len() {
            return Err(FloorplanError::InvalidConfig {
                context: format!(
                    "ptrace: row {} has {} values, expected {}",
                    lineno + 2,
                    vals.len(),
                    names.len()
                ),
            });
        }
        let mut row = vec![0.0; names.len()];
        for (col, v) in vals.iter().enumerate() {
            let w: f64 = v.parse().map_err(|_| FloorplanError::InvalidConfig {
                context: format!("ptrace: bad number {v:?} at row {}", lineno + 2),
            })?;
            if !w.is_finite() || w < 0.0 {
                return Err(FloorplanError::InvalidConfig {
                    context: format!("ptrace: non-physical power {w} at row {}", lineno + 2),
                });
            }
            row[order[col]] = w;
        }
        rows.push(row);
    }
    PowerTrace::from_rows(floorplan.len(), rows, dt)
}

/// Reads a trace from a `.ptrace` file.
///
/// # Errors
///
/// Propagates [`from_ptrace_string`] and filesystem errors.
pub fn load_ptrace(floorplan: &Floorplan, path: &Path, dt: f64) -> Result<PowerTrace> {
    let text = std::fs::read_to_string(path)?;
    from_ptrace_string(floorplan, &text, dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Scenario, TraceGenerator};

    fn fp_and_trace() -> (Floorplan, PowerTrace) {
        let fp = Floorplan::ultrasparc_t1();
        let trace = TraceGenerator::new(fp.clone(), 0.05, 4)
            .unwrap()
            .generate(Scenario::WebServer, 12);
        (fp, trace)
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let (fp, trace) = fp_and_trace();
        let text = to_ptrace_string(&fp, &trace).unwrap();
        let back = from_ptrace_string(&fp, &text, trace.dt()).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.blocks(), trace.blocks());
        for t in 0..trace.len() {
            for (a, b) in back.step(t).iter().zip(trace.step(t)) {
                assert!((a - b).abs() < 1e-5, "step {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let (fp, trace) = fp_and_trace();
        let path = std::env::temp_dir().join(format!(
            "eigenmaps-ptrace-test-{}.ptrace",
            std::process::id()
        ));
        save_ptrace(&fp, &trace, &path).unwrap();
        let back = load_ptrace(&fp, &path, trace.dt()).unwrap();
        assert_eq!(back.len(), trace.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_reordering() {
        let fp = Floorplan::ultrasparc_t1();
        // Header in reverse block order; single row of distinct values.
        let names: Vec<String> = fp.blocks().iter().rev().map(|b| b.name.clone()).collect();
        let values: Vec<String> = (0..fp.len()).map(|i| format!("{}.0", i + 1)).collect();
        let text = format!("{}\n{}\n", names.join("\t"), values.join("\t"));
        let trace = from_ptrace_string(&fp, &text, 0.1).unwrap();
        // File column 0 (= last block) carried 1.0.
        let step = trace.step(0);
        assert_eq!(step[fp.len() - 1], 1.0);
        assert_eq!(step[0], fp.len() as f64);
    }

    #[test]
    fn rejects_malformed_input() {
        let fp = Floorplan::ultrasparc_t1();
        assert!(from_ptrace_string(&fp, "", 0.1).is_err());
        assert!(from_ptrace_string(&fp, "bogus\n1.0\n", 0.1).is_err());
        // Right header, short row.
        let names: Vec<String> = fp.blocks().iter().map(|b| b.name.clone()).collect();
        let text = format!("{}\n1.0 2.0\n", names.join(" "));
        assert!(from_ptrace_string(&fp, &text, 0.1).is_err());
        // Negative power.
        let row: Vec<String> = (0..fp.len()).map(|_| "-1.0".to_string()).collect();
        let text = format!("{}\n{}\n", names.join(" "), row.join(" "));
        assert!(from_ptrace_string(&fp, &text, 0.1).is_err());
        // Duplicate column.
        let mut dup = names.clone();
        dup[1] = dup[0].clone();
        let row: Vec<String> = (0..fp.len()).map(|_| "1.0".to_string()).collect();
        let text = format!("{}\n{}\n", dup.join(" "), row.join(" "));
        assert!(from_ptrace_string(&fp, &text, 0.1).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let fp = Floorplan::ultrasparc_t1();
        let names: Vec<String> = fp.blocks().iter().map(|b| b.name.clone()).collect();
        let row: Vec<String> = (0..fp.len()).map(|_| "2.5".to_string()).collect();
        let text = format!(
            "# exported by eigenmaps\n\n{}\n\n{}\n# trailing comment\n",
            names.join("\t"),
            row.join("\t")
        );
        let trace = from_ptrace_string(&fp, &text, 0.05).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.step(0)[0], 2.5);
    }
}
