//! Binary on-disk caching of map ensembles.
//!
//! Regenerating the full 2652-snapshot dataset takes a little while, so the
//! figure binaries cache it. The format is a deliberately tiny hand-rolled
//! little-endian layout (magic, dims, then raw `f64`s) encoded with the
//! shared workspace byte codec ([`eigenmaps_core::codec`]) rather than an
//! extra serialization dependency — see DESIGN.md §6.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use eigenmaps_core::codec::{Decoder, Encoder};
use eigenmaps_core::MapEnsemble;
use eigenmaps_linalg::Matrix;

use crate::error::{FloorplanError, Result};

const MAGIC: &[u8; 8] = b"EIGMAPS1";

/// Magic + three `u64` dimensions.
const HEADER_LEN: usize = 32;

/// Writes an ensemble to `path` (creating parent directories).
///
/// # Errors
///
/// Returns [`FloorplanError::Io`] on filesystem failures.
pub fn save_ensemble(ensemble: &MapEnsemble, path: &Path) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut header = Encoder::with_capacity(HEADER_LEN);
    header
        .bytes(MAGIC)
        .put_len(ensemble.len())
        .put_len(ensemble.rows())
        .put_len(ensemble.cols());
    // Stream the payload instead of materializing one flat buffer — full
    // datasets are tens of MiB.
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&header.finish())?;
    for &v in ensemble.data().as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an ensemble previously written by [`save_ensemble`].
///
/// The header is read and validated *before* the payload is allocated, so
/// a corrupt header (or a file that merely isn't an ensemble cache) costs
/// a 32-byte read, never a payload-sized allocation.
///
/// # Errors
///
/// * [`FloorplanError::Io`] on filesystem failures.
/// * [`FloorplanError::CorruptCache`] on magic/size mismatches.
pub fn load_ensemble(path: &Path) -> Result<MapEnsemble> {
    let mut file = File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)
        .map_err(|_| FloorplanError::CorruptCache {
            context: "file shorter than header",
        })?;
    let mut dec = Decoder::new(&header);
    dec.magic(MAGIC)?;
    let t = dec.take_len()?;
    let rows = dec.take_len()?;
    let cols = dec.take_len()?;
    dec.finish()?;
    let n = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(t))
        .ok_or(FloorplanError::CorruptCache {
            context: "dimensions overflow",
        })?;
    // Hard cap to avoid allocating absurd amounts from a corrupt header
    // (1 GiB of f64s).
    if n > (1usize << 27) {
        return Err(FloorplanError::CorruptCache {
            context: "dimensions exceed sanity cap",
        });
    }
    // Decode the payload through a small fixed buffer straight into the
    // f64 vec: one payload-sized allocation, not bytes + floats.
    let mut data = vec![0.0f64; n];
    let mut buf = [0u8; 8 * 1024];
    let mut idx = 0usize;
    while idx < n {
        let take = ((n - idx) * 8).min(buf.len());
        file.read_exact(&mut buf[..take])
            .map_err(|_| FloorplanError::CorruptCache {
                context: "truncated payload",
            })?;
        for chunk in buf[..take].chunks_exact(8) {
            data[idx] = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            idx += 1;
        }
    }
    // Reject trailing garbage.
    if file.read(&mut [0u8; 1])? != 0 {
        return Err(FloorplanError::CorruptCache {
            context: "trailing bytes after payload",
        });
    }
    let matrix =
        Matrix::from_vec(t, rows * cols, data).map_err(|_| FloorplanError::CorruptCache {
            context: "payload size inconsistent",
        })?;
    Ok(MapEnsemble::new(rows, cols, matrix)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eigenmaps_core::ThermalMap;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "eigenmaps-cache-test-{name}-{}",
            std::process::id()
        ))
    }

    fn sample_ensemble() -> MapEnsemble {
        let maps: Vec<ThermalMap> = (0..7)
            .map(|t| ThermalMap::from_fn(4, 5, |r, c| t as f64 + r as f64 * 0.5 + c as f64 * 0.1))
            .collect();
        MapEnsemble::from_maps(&maps).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let path = tmp("roundtrip");
        let ens = sample_ensemble();
        save_ensemble(&ens, &path).unwrap();
        let back = load_ensemble(&path).unwrap();
        assert_eq!(back.len(), ens.len());
        assert_eq!(back.rows(), ens.rows());
        assert_eq!(back.cols(), ens.cols());
        for t in 0..ens.len() {
            assert_eq!(back.map_slice(t), ens.map_slice(t));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTMAGIC0000000000000000").unwrap();
        assert!(matches!(
            load_ensemble(&path),
            Err(FloorplanError::CorruptCache { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        let ens = sample_ensemble();
        save_ensemble(&ens, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            load_ensemble(&path),
            Err(FloorplanError::CorruptCache { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_rejected() {
        let path = tmp("trailing");
        let ens = sample_ensemble();
        save_ensemble(&ens, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_ensemble(&path),
            Err(FloorplanError::CorruptCache { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_header_rejected_by_sanity_cap() {
        let path = tmp("oversized");
        let mut enc = Encoder::with_capacity(32);
        enc.bytes(MAGIC)
            .put_len(1 << 20)
            .put_len(1 << 20)
            .put_len(1 << 20)
            .f64(0.0);
        std::fs::write(&path, enc.finish()).unwrap();
        assert!(matches!(
            load_ensemble(&path),
            Err(FloorplanError::CorruptCache { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_ensemble(Path::new("/nonexistent/definitely/not/here.bin")),
            Err(FloorplanError::Io(_))
        ));
    }
}
