//! Binary on-disk caching of map ensembles.
//!
//! Regenerating the full 2652-snapshot dataset takes a little while, so the
//! figure binaries cache it. The format is a deliberately tiny hand-rolled
//! little-endian layout (magic, version, dims, then raw `f64`s) rather than
//! an extra serialization dependency — see DESIGN.md §6.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use eigenmaps_core::MapEnsemble;
use eigenmaps_linalg::Matrix;

use crate::error::{FloorplanError, Result};

const MAGIC: &[u8; 8] = b"EIGMAPS1";

/// Writes an ensemble to `path` (creating parent directories).
///
/// # Errors
///
/// Returns [`FloorplanError::Io`] on filesystem failures.
pub fn save_ensemble(ensemble: &MapEnsemble, path: &Path) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    for dim in [
        ensemble.len() as u64,
        ensemble.rows() as u64,
        ensemble.cols() as u64,
    ] {
        w.write_all(&dim.to_le_bytes())?;
    }
    for t in 0..ensemble.len() {
        for &v in ensemble.map_slice(t) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an ensemble previously written by [`save_ensemble`].
///
/// # Errors
///
/// * [`FloorplanError::Io`] on filesystem failures.
/// * [`FloorplanError::CorruptCache`] on magic/size mismatches.
pub fn load_ensemble(path: &Path) -> Result<MapEnsemble> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| FloorplanError::CorruptCache {
            context: "file shorter than header",
        })?;
    if &magic != MAGIC {
        return Err(FloorplanError::CorruptCache {
            context: "bad magic (not an ensemble cache)",
        });
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut BufReader<File>| -> Result<u64> {
        r.read_exact(&mut u64buf)
            .map_err(|_| FloorplanError::CorruptCache {
                context: "truncated header",
            })?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let t = read_u64(&mut r)? as usize;
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let n = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(t))
        .ok_or(FloorplanError::CorruptCache {
            context: "dimensions overflow",
        })?;
    // Hard cap to avoid allocating absurd amounts from a corrupt header
    // (1 GiB of f64s).
    if n > (1usize << 27) {
        return Err(FloorplanError::CorruptCache {
            context: "dimensions exceed sanity cap",
        });
    }
    let mut data = Vec::with_capacity(n);
    let mut f64buf = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut f64buf)
            .map_err(|_| FloorplanError::CorruptCache {
                context: "truncated payload",
            })?;
        data.push(f64::from_le_bytes(f64buf));
    }
    // Reject trailing garbage.
    if r.read(&mut f64buf)? != 0 {
        return Err(FloorplanError::CorruptCache {
            context: "trailing bytes after payload",
        });
    }
    let matrix =
        Matrix::from_vec(t, rows * cols, data).map_err(|_| FloorplanError::CorruptCache {
            context: "payload size inconsistent",
        })?;
    Ok(MapEnsemble::new(rows, cols, matrix)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eigenmaps_core::ThermalMap;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "eigenmaps-cache-test-{name}-{}",
            std::process::id()
        ))
    }

    fn sample_ensemble() -> MapEnsemble {
        let maps: Vec<ThermalMap> = (0..7)
            .map(|t| ThermalMap::from_fn(4, 5, |r, c| t as f64 + r as f64 * 0.5 + c as f64 * 0.1))
            .collect();
        MapEnsemble::from_maps(&maps).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let path = tmp("roundtrip");
        let ens = sample_ensemble();
        save_ensemble(&ens, &path).unwrap();
        let back = load_ensemble(&path).unwrap();
        assert_eq!(back.len(), ens.len());
        assert_eq!(back.rows(), ens.rows());
        assert_eq!(back.cols(), ens.cols());
        for t in 0..ens.len() {
            assert_eq!(back.map_slice(t), ens.map_slice(t));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTMAGIC0000000000000000").unwrap();
        assert!(matches!(
            load_ensemble(&path),
            Err(FloorplanError::CorruptCache { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = tmp("truncated");
        let ens = sample_ensemble();
        save_ensemble(&ens, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(
            load_ensemble(&path),
            Err(FloorplanError::CorruptCache { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_rejected() {
        let path = tmp("trailing");
        let ens = sample_ensemble();
        save_ensemble(&ens, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_ensemble(&path),
            Err(FloorplanError::CorruptCache { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_ensemble(Path::new("/nonexistent/definitely/not/here.bin")),
            Err(FloorplanError::Io(_))
        ));
    }
}
