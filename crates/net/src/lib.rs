//! Network edge for the EigenMaps serving runtime.
//!
//! Everything below the socket — micro-batching, fair scheduling,
//! streaming sessions, deployment registry — lives in
//! [`eigenmaps_serve`]. This crate puts that runtime on the network with
//! three pieces:
//!
//! * [`protocol`] — the `EMWIRE1` versioned, length-prefixed,
//!   checksummed binary wire format covering the full serving surface
//!   (batches, streaming sessions, snapshot/resume, catalog, publish,
//!   metrics), built on the same little-endian codec as the workspace's
//!   file formats. The module docs are the format specification.
//! * [`door`] — [`NetServer`], a single-threaded nonblocking TCP
//!   accept/poll event loop (plain [`std::net`], no async runtime) that
//!   bridges wire requests onto [`eigenmaps_serve::Server`] and
//!   completes parked tickets through a wakeup channel.
//! * [`client`] — [`Client`], a blocking request/response client with
//!   typed helpers and retryability surfaced on errors.
//!
//! Determinism carries over the wire: `f64` cells travel bit-exact, so a
//! batch served over TCP is bitwise-identical to the same batch served
//! in-process, and a session can be snapshotted, carried to a restarted
//! server, resumed over the wire and continue producing bit-identical
//! estimates.
//!
//! ```no_run
//! use std::sync::Arc;
//! use eigenmaps_serve::{DeploymentRegistry, Server};
//! use eigenmaps_net::{Client, NetServer};
//!
//! let registry = Arc::new(DeploymentRegistry::new());
//! let server = Arc::new(Server::new(registry, 2));
//! let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server))?;
//! let addr = door.local_addr();
//! let handle = door.handle();
//! let loop_thread = std::thread::spawn(move || door.run());
//!
//! let mut client = Client::connect(addr)?;
//! let catalog = client.catalog()?;
//! assert!(catalog.is_empty());
//!
//! handle.shutdown();
//! loop_thread.join().unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod door;
pub mod protocol;

pub use client::{BatchReply, Client, NetError, SessionInfo};
pub use door::{DoorHandle, NetConfig, NetServer};
pub use protocol::{
    status_of, DecodeFailure, EncodeError, FrameBuffer, Request, Response, WireError, WireExemplar,
    WireMap, WireMetrics, WireStage, WireStatus, WireTenantTrace, WireTrace, WireTraceEvent,
    MAX_FRAME_BYTES,
};

/// Convenience glob import for the network edge.
pub mod prelude {
    pub use crate::client::{BatchReply, Client, NetError, SessionInfo};
    pub use crate::door::{DoorHandle, NetConfig, NetServer};
    pub use crate::protocol::{
        EncodeError, FrameBuffer, Request, Response, WireError, WireExemplar, WireMap, WireMetrics,
        WireStage, WireStatus, WireTenantTrace, WireTrace, WireTraceEvent,
    };
}
