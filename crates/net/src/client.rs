//! A blocking `EMWIRE1` client over [`std::net::TcpStream`]: one
//! request/response exchange at a time, typed helpers for every request
//! kind, and retryability surfaced on errors so callers can spin on
//! `Saturated`/`SessionBusy`/`DeadlineShed` backpressure.
//!
//! QoS travels both ways: a shed request surfaces as a retryable
//! [`NetError::Server`] with [`WireStatus::DeadlineShed`], and a batch
//! answered under brownout arrives with [`BatchReply::degraded`] set so
//! callers know the maps came from a truncated basis.

use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use eigenmaps_core::ThermalMap;

use crate::protocol::{
    EncodeError, FrameBuffer, Request, Response, WireError, WireMetrics, WireStatus, WireTrace,
    MAX_FRAME_BYTES,
};

/// What a [`Client`] call can fail with.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed (including read timeouts).
    Io(std::io::Error),
    /// The request was too large to seal into one frame; nothing was
    /// sent. Split the batch (or artifact) and retry smaller.
    Encode(EncodeError),
    /// The server's reply failed `EMWIRE1` validation.
    Wire(WireError),
    /// The server answered with a typed `Error` reply.
    Server {
        /// The typed status; [`WireStatus::is_retryable`] distinguishes
        /// backpressure from semantic refusals.
        status: WireStatus,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The connection closed before a reply arrived.
    Disconnected,
    /// The server replied with a well-formed message of the wrong kind
    /// for the request.
    UnexpectedReply {
        /// What the exchange was waiting for.
        expected: &'static str,
    },
}

impl NetError {
    /// Whether retrying the identical call may succeed (transient
    /// backpressure such as `Saturated` or `SessionBusy`).
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Server { status, .. } if status.is_retryable())
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Encode(e) => write!(f, "request too large: {e}"),
            NetError::Wire(e) => write!(f, "protocol error: {e}"),
            NetError::Server { status, message } => write!(f, "server error ({status}): {message}"),
            NetError::Disconnected => f.write_str("connection closed before a reply arrived"),
            NetError::UnexpectedReply { expected } => {
                write!(
                    f,
                    "server replied with the wrong message kind (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<EncodeError> for NetError {
    fn from(e: EncodeError) -> Self {
        NetError::Encode(e)
    }
}

/// A streaming session as seen from the client: the ids and counters the
/// server reported on open/resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// Server-assigned session id, scoped to this connection.
    pub session: u64,
    /// Registry version the session is pinned to.
    pub version: u32,
    /// Frames already served (nonzero after a resume).
    pub frames: u64,
    /// Durable id the server's checkpoint store tracks the session
    /// under (`0` when the server has no durability store). Present it
    /// to [`Client::attach`] to reclaim the session after a server
    /// restart.
    pub durable: u64,
}

/// The outcome of a successful batch submission.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// Registry version the batch was served against.
    pub version: u32,
    /// One reconstructed map per submitted frame, in order.
    pub maps: Vec<ThermalMap>,
    /// Whether the maps were synthesized at reduced (truncated-basis)
    /// fidelity under brownout; resubmit after the overload passes for
    /// exact answers.
    pub degraded: bool,
}

/// A blocking `EMWIRE1` client. Not thread-safe by design — one
/// in-flight exchange at a time, matched by correlation id.
pub struct Client {
    stream: TcpStream,
    frames: FrameBuffer,
    next_id: u64,
}

impl Client {
    /// Connects with the default frame bound and a 30 s read timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_with(addr, MAX_FRAME_BYTES, Some(Duration::from_secs(30)))
    }

    /// Connects with an explicit frame bound and read timeout (`None`
    /// blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from connecting.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        max_frame: usize,
        read_timeout: Option<Duration>,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(read_timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            frames: FrameBuffer::new(max_frame),
            next_id: 1,
        })
    }

    /// Sends `request` and blocks for its reply. Replies are matched by
    /// correlation id; id `0` (the server's marker for an uncorrelatable
    /// frame-level error) is accepted too, so protocol rejections
    /// surface instead of deadlocking the exchange.
    ///
    /// # Errors
    ///
    /// Any [`NetError`]; `Error` replies become [`NetError::Server`].
    pub fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&request.encode(id)?)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            while let Some(outcome) = self.frames.next_record() {
                let record = outcome?;
                let (got, response) = Response::decode(&record).map_err(|failure| failure.error)?;
                if got == id || got == 0 {
                    if let Response::Error { status, message } = response {
                        return Err(NetError::Server { status, message });
                    }
                    return Ok(response);
                }
                // A stale reply from an earlier abandoned exchange on
                // this stream — skip it and keep reading.
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.frames.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Reconstructs a batch of frames against `deployment`'s latest
    /// version; returns the pinned version, the maps (frame order
    /// preserved) and whether brownout degraded their fidelity.
    ///
    /// A shed request surfaces as a retryable [`NetError::Server`] with
    /// [`WireStatus::DeadlineShed`] — resubmit with fresh readings once
    /// the overload passes.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn submit_batch(
        &mut self,
        deployment: &str,
        frames: Vec<Vec<f64>>,
    ) -> Result<BatchReply, NetError> {
        let request = Request::SubmitBatch {
            deployment: deployment.to_string(),
            frames,
        };
        match self.call(&request)? {
            Response::Batch {
                version,
                maps,
                degraded,
            } => {
                let maps = maps
                    .into_iter()
                    .map(|m| m.into_map())
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(BatchReply {
                    version,
                    maps,
                    degraded,
                })
            }
            _ => Err(NetError::UnexpectedReply { expected: "Batch" }),
        }
    }

    /// Opens a streaming session against `deployment`.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn open_session(&mut self, deployment: &str, gain: f64) -> Result<SessionInfo, NetError> {
        let request = Request::OpenSession {
            deployment: deployment.to_string(),
            gain,
        };
        self.expect_session(&request)
    }

    /// Resumes a session from `EMSESS1` snapshot bytes — works against a
    /// different server process than the one that snapshotted, as long
    /// as the matching artifact is published there.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn resume(&mut self, snapshot: Vec<u8>) -> Result<SessionInfo, NetError> {
        self.expect_session(&Request::Resume { snapshot })
    }

    /// Attaches to a checkpoint-recovered session by the durable id a
    /// previous connection reported in [`SessionInfo::durable`]. Succeeds
    /// at most once per id per server restart; an id the server does not
    /// hold hydrated maps to an `UnknownSession` error.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn attach(&mut self, durable: u64) -> Result<SessionInfo, NetError> {
        self.expect_session(&Request::Attach { durable })
    }

    fn expect_session(&mut self, request: &Request) -> Result<SessionInfo, NetError> {
        match self.call(request)? {
            Response::SessionOpened {
                session,
                version,
                frames,
                durable,
            } => Ok(SessionInfo {
                session,
                version,
                frames,
                durable,
            }),
            _ => Err(NetError::UnexpectedReply {
                expected: "SessionOpened",
            }),
        }
    }

    /// Steps an open session with one frame of readings and blocks for
    /// the filtered estimate.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn step(&mut self, session: u64, readings: Vec<f64>) -> Result<ThermalMap, NetError> {
        let request = Request::StepSession { session, readings };
        match self.call(&request)? {
            // Steps are never degraded (the flag travels for protocol
            // uniformity only), so the estimate passes through as-is.
            Response::Step { map, .. } => Ok(map.into_map()?),
            _ => Err(NetError::UnexpectedReply { expected: "Step" }),
        }
    }

    /// Closes an open session.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn close_session(&mut self, session: u64) -> Result<(), NetError> {
        match self.call(&Request::CloseSession { session })? {
            Response::Closed => Ok(()),
            _ => Err(NetError::UnexpectedReply { expected: "Closed" }),
        }
    }

    /// Snapshots an open session to durable `EMSESS1` bytes. Retryable
    /// `SessionBusy` while steps are in flight.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn snapshot(&mut self, session: u64) -> Result<Vec<u8>, NetError> {
        match self.call(&Request::Snapshot { session })? {
            Response::Snapshot { snapshot } => Ok(snapshot),
            _ => Err(NetError::UnexpectedReply {
                expected: "Snapshot",
            }),
        }
    }

    /// Lists the server's deployments and live versions.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn catalog(&mut self) -> Result<Vec<(String, Vec<u32>)>, NetError> {
        match self.call(&Request::Catalog)? {
            Response::Catalog { entries } => Ok(entries),
            _ => Err(NetError::UnexpectedReply {
                expected: "Catalog",
            }),
        }
    }

    /// Publishes `EMDEPLOY` artifact bytes under `name`; returns the
    /// assigned version.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn publish(&mut self, name: &str, artifact: Vec<u8>) -> Result<u32, NetError> {
        let request = Request::Publish {
            name: name.to_string(),
            artifact,
        };
        match self.call(&request)? {
            Response::Published { version } => Ok(version),
            _ => Err(NetError::UnexpectedReply {
                expected: "Published",
            }),
        }
    }

    /// Fetches the server's metrics snapshot, wire gauges included.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn metrics(&mut self) -> Result<WireMetrics, NetError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(*metrics),
            _ => Err(NetError::UnexpectedReply {
                expected: "Metrics",
            }),
        }
    }

    /// Fetches the server's flight-recorder snapshot: the stage-event
    /// ring plus per-tenant stage quantiles and slow-request exemplars.
    ///
    /// # Errors
    ///
    /// Any [`NetError`].
    pub fn trace(&mut self) -> Result<WireTrace, NetError> {
        match self.call(&Request::Trace)? {
            Response::Trace(trace) => Ok(trace),
            _ => Err(NetError::UnexpectedReply { expected: "Trace" }),
        }
    }

    /// The underlying stream, e.g. to shut it down abruptly in tests.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
