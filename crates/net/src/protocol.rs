//! The `EMWIRE1` binary wire protocol: versioned, length-prefixed,
//! checksummed frames over the shared little-endian codec
//! ([`eigenmaps_core::codec`]), covering the full serving surface.
//!
//! `EMWIRE1` is the fourth binary format in the workspace, next to
//! `EMDEPLOY` (deployment artifacts), `EIGMAPS1` (ensemble caches) and
//! `EMSESS1` (session snapshots) — those three are specified in
//! [`eigenmaps_core::codec`]'s module docs; this one lives here because it
//! frames *conversations*, not files.
//!
//! # Frame layout
//!
//! Every message — request or response — travels as one frame:
//!
//! | offset | field      | type        | value |
//! |--------|------------|-------------|-------|
//! | 0      | `length`   | `u32`       | byte length of the record that follows (everything below) |
//! | 4      | `magic`    | 7 bytes     | `"EMWIRE1"` |
//! | 11     | `version`  | `u32`       | 1 |
//! | 15     | `id`       | `u64`       | request correlation id, echoed verbatim in the response |
//! | 23     | `kind`     | `u8`        | message kind tag (see below) |
//! | 24     | `body`     | kind-specific | see the per-kind tables |
//! | 24+n   | `checksum` | `u64`       | FNV-1a 64 over `magic..body` ([`fnv1a64`]) |
//!
//! All integers are little-endian; lengths/counts are `u64` on the wire
//! ([`Encoder::put_len`]). The minimal record is 28 bytes (empty body).
//!
//! ## Kind tags
//!
//! | tag | message | direction | body |
//! |-----|---------|-----------|------|
//! | `0x01` | `SubmitBatch`  | → | `name: str`, `frames: u64`, then per frame `m: u64`, `f64 × m` |
//! | `0x02` | `OpenSession`  | → | `name: str`, `gain: f64` |
//! | `0x03` | `StepSession`  | → | `session: u64`, `m: u64`, `f64 × m` |
//! | `0x04` | `CloseSession` | → | `session: u64` |
//! | `0x05` | `Snapshot`     | → | `session: u64` |
//! | `0x06` | `Resume`       | → | `len: u64`, `EMSESS1 bytes × len` |
//! | `0x07` | `Catalog`      | → | empty |
//! | `0x08` | `Publish`      | → | `name: str`, `len: u64`, `EMDEPLOY bytes × len` |
//! | `0x09` | `Metrics`      | → | empty |
//! | `0x0A` | `Trace`        | → | empty |
//! | `0x0B` | `Attach`       | → | `durable: u64` |
//! | `0x81` | `Batch`         | ← | `version: u32`, `count: u64`, then per map `rows: u64`, `cols: u64`, `f64 × rows·cols`, then `degraded: u8` (0 or 1) |
//! | `0x82` | `SessionOpened` | ← | `session: u64`, `version: u32`, `frames: u64`, `durable: u64` |
//! | `0x83` | `Step`          | ← | `rows: u64`, `cols: u64`, `f64 × rows·cols`, `degraded: u8` (0 or 1) |
//! | `0x84` | `Closed`        | ← | empty |
//! | `0x85` | `Snapshot`      | ← | `len: u64`, `EMSESS1 bytes × len` |
//! | `0x86` | `Catalog`       | ← | `count: u64`, then per entry `name: str`, `versions: u64`, `u32 × versions` |
//! | `0x87` | `Published`     | ← | `version: u32` |
//! | `0x88` | `Metrics`       | ← | [`WireMetrics`]: the headline scalars — including the QoS counters `shed`, `degraded`, `brownout` (0/1 gauge) and `brownout_entries` — and wire gauges in declaration order (`u64` each, durations in ns), the per-reason reap counters, then the raw request- and session-latency histograms (each `count: u64`, `u64 × count` bucket counts, `samples: u64`, `total_ns: u64`) |
//! | `0x89` | `Trace`         | ← | [`WireTrace`]: `written: u64`, `dropped: u64`, ring events (`count`, then per event `trace: u64`, `tenant: str`, `stage: u8`, `arg: u64`, `at_ns: u64`), per-tenant stage quantiles and slow-request exemplars ([`WireTenantTrace`]) |
//! | `0xFF` | `Error`         | ← | `status: u8` ([`WireStatus`]), `message: str` |
//!
//! `str` means `len: u64` then UTF-8 bytes. Request tags occupy
//! `0x01..=0x7F`, response tags `0x80..=0xFF`, so a frame can never be
//! mistaken for the opposite direction.
//!
//! The `Trace` pair serves the flight recorder
//! ([`eigenmaps_serve::trace`]); the event taxonomy, the stage byte
//! values carried in `stage`/`arg`, and the ring-buffer semantics behind
//! `written`/`dropped` are specified in the repository's
//! `ARCHITECTURE.md`, section *Observability: the flight recorder*.
//!
//! # Validation rules
//!
//! * A `length` prefix larger than the transport's max-frame-size bound
//!   ([`MAX_FRAME_BYTES`] by default) is **oversized**: the receiver must
//!   not buffer (or allocate) the payload; [`FrameBuffer`] skips exactly
//!   `length` bytes as they arrive, so framing survives and the
//!   connection does not tear down.
//! * A complete record shorter than 28 bytes, with the wrong magic, an
//!   unsupported version or a trailing checksum that does not match
//!   `fnv1a64(magic..body)` is **corrupt**: the record is consumed (its
//!   advertised length is trusted — the checksum says the *content* is
//!   bad, not the framing), the error is reported and the connection
//!   lives on. The correlation id of a corrupt record is untrusted and
//!   never echoed.
//! * A record whose envelope validates but whose body fails to decode —
//!   truncated body, trailing bytes, impossible counts, invalid UTF-8 —
//!   is **malformed**; an unassigned or wrong-direction `kind` is
//!   **unknown-kind**. Both keep the connection; the id *is* trustworthy
//!   (the checksum covered it) and is echoed in the error reply.
//! * A frame that has not fully arrived is simply incomplete — the
//!   receiver waits. A connection that closes mid-frame is a disconnect,
//!   not a protocol error.
//! * The bound is enforced on the **encode side too**: sealing a record
//!   longer than [`MAX_FRAME_BYTES`] fails with [`EncodeError`] instead
//!   of emitting a frame the peer is guaranteed to discard. This also
//!   keeps the `u32` length prefix exact — a record over `u32::MAX`
//!   bytes would otherwise wrap silently and desync the stream.
//!
//! Every decode is bounds-checked by [`Decoder`] before anything is
//! allocated, so a hostile length field inside a body cannot cause an
//! absurd allocation: the body's own take()s fail first (the whole record
//! is at most the frame bound).

use std::fmt;

use eigenmaps_core::codec::{fnv1a64, CodecError, Decoder, Encoder};
use eigenmaps_core::ThermalMap;
use eigenmaps_serve::{HistogramSnapshot, ServeError, WireSnapshot};

/// Magic bytes opening every `EMWIRE1` record.
pub const MAGIC: &[u8; 7] = b"EMWIRE1";
/// Wire protocol version encoded (and required) by this implementation.
pub const VERSION: u32 = 1;
/// Default max-frame-size bound: the largest record (length prefix
/// excluded) an endpoint will buffer. 16 MiB fits ~2M `f64` cells per
/// message — far beyond any realistic thermal-map batch.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;
/// Fixed bytes in every record besides the body: magic (7) + version (4)
/// + id (8) + kind (1) + checksum (8).
pub const RECORD_OVERHEAD: usize = 28;

const KIND_SUBMIT_BATCH: u8 = 0x01;
const KIND_OPEN_SESSION: u8 = 0x02;
const KIND_STEP_SESSION: u8 = 0x03;
const KIND_CLOSE_SESSION: u8 = 0x04;
const KIND_SNAPSHOT: u8 = 0x05;
const KIND_RESUME: u8 = 0x06;
const KIND_CATALOG: u8 = 0x07;
const KIND_PUBLISH: u8 = 0x08;
const KIND_METRICS: u8 = 0x09;
const KIND_TRACE: u8 = 0x0A;
const KIND_ATTACH: u8 = 0x0B;
const KIND_BATCH_REPLY: u8 = 0x81;
const KIND_SESSION_OPENED: u8 = 0x82;
const KIND_STEP_REPLY: u8 = 0x83;
const KIND_CLOSED: u8 = 0x84;
const KIND_SNAPSHOT_REPLY: u8 = 0x85;
const KIND_CATALOG_REPLY: u8 = 0x86;
const KIND_PUBLISHED: u8 = 0x87;
const KIND_METRICS_REPLY: u8 = 0x88;
const KIND_TRACE_REPLY: u8 = 0x89;
const KIND_ERROR: u8 = 0xFF;

/// How a received byte sequence failed `EMWIRE1` validation. Mirrors
/// [`eigenmaps_serve::WireErrorKind`] for the metrics gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeded the max-frame-size bound; the payload
    /// is skipped unread.
    Oversized {
        /// The advertised record length.
        len: usize,
        /// The bound it exceeded.
        max: usize,
    },
    /// The record failed integrity validation (too short, bad magic,
    /// unsupported version, checksum mismatch).
    Corrupt {
        /// Which check failed.
        context: &'static str,
    },
    /// The envelope was sound but the body did not decode.
    Malformed {
        /// Which field failed.
        context: &'static str,
    },
    /// The record carried a kind tag this endpoint does not handle.
    UnknownKind {
        /// The offending tag.
        kind: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::Corrupt { context } => write!(f, "corrupt frame: {context}"),
            WireError::Malformed { context } => write!(f, "malformed frame body: {context}"),
            WireError::UnknownKind { kind } => write!(f, "unknown frame kind 0x{kind:02X}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Malformed { context: e.context }
    }
}

/// An encoder refused to seal a record that would exceed the
/// max-frame-size bound — the encode-side mirror of
/// [`WireError::Oversized`]. Refusing here (rather than emitting the
/// frame) matters twice over: the peer would discard the payload unread
/// anyway, and a record longer than `u32::MAX` bytes would silently wrap
/// the length prefix and desync the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeError {
    /// The record length (length prefix excluded) that was refused.
    pub len: usize,
    /// The bound it exceeded.
    pub max: usize,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refusing to encode a {len}-byte record: exceeds the {max}-byte frame bound",
            len = self.len,
            max = self.max
        )
    }
}

impl std::error::Error for EncodeError {}

/// A decode failure plus the correlation id, when it can be trusted: the
/// checksum covers the id, so ids survive malformed-body and unknown-kind
/// failures but never corrupt ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeFailure {
    /// The frame's correlation id, if the envelope validated.
    pub id: Option<u64>,
    /// What went wrong.
    pub error: WireError,
}

/// Typed error statuses carried by `Error` replies — [`ServeError`]
/// mirrored onto the wire, plus the statuses only a transport can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// No deployment is published under the requested name.
    UnknownDeployment,
    /// The deployment exists but not at the requested version.
    UnknownVersion,
    /// The server is shutting down (or its runtime died).
    Terminated,
    /// Admission control refused the request — **retryable**: the queue
    /// drains on its own schedule.
    Saturated,
    /// A session snapshot disagrees with the published artifact.
    SnapshotMismatch,
    /// The request was well-framed but semantically invalid (bad shapes,
    /// unparseable artifact bytes, …).
    BadRequest,
    /// The frame itself failed validation (corrupt/malformed/oversized/
    /// unknown kind).
    BadFrame,
    /// The referenced session id is not open on this connection.
    UnknownSession,
    /// The session has steps in flight; a snapshot would not be a
    /// well-defined point in the stream — **retryable** once the steps
    /// complete.
    SessionBusy,
    /// The request blew its per-tenant deadline while queued and was shed
    /// by QoS admission control — **retryable** with fresh sensor
    /// readings once the overload passes.
    DeadlineShed,
}

impl WireStatus {
    /// Whether the client may retry the identical request and expect it
    /// to eventually succeed (transient backpressure, not a semantic
    /// refusal).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            WireStatus::Saturated | WireStatus::SessionBusy | WireStatus::DeadlineShed
        )
    }

    fn to_u8(self) -> u8 {
        match self {
            WireStatus::UnknownDeployment => 1,
            WireStatus::UnknownVersion => 2,
            WireStatus::Terminated => 3,
            WireStatus::Saturated => 4,
            WireStatus::SnapshotMismatch => 5,
            WireStatus::BadRequest => 6,
            WireStatus::BadFrame => 7,
            WireStatus::UnknownSession => 8,
            WireStatus::SessionBusy => 9,
            WireStatus::DeadlineShed => 10,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => WireStatus::UnknownDeployment,
            2 => WireStatus::UnknownVersion,
            3 => WireStatus::Terminated,
            4 => WireStatus::Saturated,
            5 => WireStatus::SnapshotMismatch,
            6 => WireStatus::BadRequest,
            7 => WireStatus::BadFrame,
            8 => WireStatus::UnknownSession,
            9 => WireStatus::SessionBusy,
            10 => WireStatus::DeadlineShed,
            _ => {
                return Err(WireError::Malformed {
                    context: "unknown error status",
                })
            }
        })
    }
}

impl fmt::Display for WireStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WireStatus::UnknownDeployment => "unknown-deployment",
            WireStatus::UnknownVersion => "unknown-version",
            WireStatus::Terminated => "terminated",
            WireStatus::Saturated => "saturated",
            WireStatus::SnapshotMismatch => "snapshot-mismatch",
            WireStatus::BadRequest => "bad-request",
            WireStatus::BadFrame => "bad-frame",
            WireStatus::UnknownSession => "unknown-session",
            WireStatus::SessionBusy => "session-busy",
            WireStatus::DeadlineShed => "deadline-shed",
        };
        f.write_str(name)
    }
}

/// Maps a [`ServeError`] onto its wire status and human-readable message.
pub fn status_of(error: &ServeError) -> (WireStatus, String) {
    let status = match error {
        ServeError::UnknownDeployment { .. } => WireStatus::UnknownDeployment,
        ServeError::UnknownVersion { .. } => WireStatus::UnknownVersion,
        ServeError::Terminated { .. } => WireStatus::Terminated,
        ServeError::Saturated { .. } => WireStatus::Saturated,
        ServeError::SnapshotMismatch { .. } => WireStatus::SnapshotMismatch,
        ServeError::DeadlineShed { .. } => WireStatus::DeadlineShed,
        _ => WireStatus::BadRequest,
    };
    (status, error.to_string())
}

/// One client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Reconstruct a batch of sensor-reading frames against the latest
    /// version of a named deployment.
    SubmitBatch {
        /// Registry name to resolve.
        deployment: String,
        /// Sensor readings, one inner vec per frame.
        frames: Vec<Vec<f64>>,
    },
    /// Open a streaming tracker session against a named deployment.
    OpenSession {
        /// Registry name to resolve.
        deployment: String,
        /// Temporal-filter gain in `[0, 1]`.
        gain: f64,
    },
    /// Step an open session with one frame of readings.
    StepSession {
        /// Session id from `SessionOpened`.
        session: u64,
        /// One frame of sensor readings.
        readings: Vec<f64>,
    },
    /// Close an open session.
    CloseSession {
        /// Session id from `SessionOpened`.
        session: u64,
    },
    /// Snapshot an open session to durable `EMSESS1` bytes.
    Snapshot {
        /// Session id from `SessionOpened`.
        session: u64,
    },
    /// Resume a session from `EMSESS1` bytes (possibly on a different
    /// server process than the one that snapshotted it).
    Resume {
        /// The `EMSESS1` record.
        snapshot: Vec<u8>,
    },
    /// List the registry's deployments and live versions.
    Catalog,
    /// Publish `EMDEPLOY` artifact bytes under a name.
    Publish {
        /// Registry name to publish under.
        name: String,
        /// The `EMDEPLOY` record.
        artifact: Vec<u8>,
    },
    /// Fetch a metrics snapshot (including the wire gauges).
    Metrics,
    /// Fetch a flight-recorder snapshot: the event ring, per-tenant stage
    /// quantiles and slow-request exemplars.
    Trace,
    /// Attach to a hydrated (checkpoint-recovered) session by its durable
    /// id, claiming it for this connection. The durable ids of recovered
    /// sessions come from the `EMSTORE1` manifest the server booted from;
    /// each can be claimed exactly once per restart.
    Attach {
        /// Durable session id assigned by the server's checkpoint store.
        durable: u64,
    },
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reconstructed maps for a `SubmitBatch`, with the pinned version.
    Batch {
        /// Registry version the batch was served against.
        version: u32,
        /// One reconstructed map per submitted frame, in order.
        maps: Vec<WireMap>,
        /// Whether the maps were synthesized at reduced (truncated-basis)
        /// fidelity under brownout; exact answers require a resubmit
        /// after the overload passes.
        degraded: bool,
    },
    /// A session was opened (or resumed).
    SessionOpened {
        /// Server-assigned session id, scoped to this connection.
        session: u64,
        /// Registry version the session is pinned to.
        version: u32,
        /// Frames already served (nonzero after a resume).
        frames: u64,
        /// Durable id under which the server's checkpoint store tracks
        /// this session, or `0` when no durability store is attached.
        /// Clients present this id to `Attach` after a server restart.
        durable: u64,
    },
    /// The filtered estimate for one `StepSession`.
    Step {
        /// The reconstructed, temporally filtered map.
        map: WireMap,
        /// Always `false` today — session steps are never degraded (the
        /// stream's temporal filter must stay bitwise-continuous) — but
        /// carried positionally so batch and step replies report fidelity
        /// uniformly.
        degraded: bool,
    },
    /// A `CloseSession` completed.
    Closed,
    /// The session's durable `EMSESS1` snapshot.
    Snapshot {
        /// The `EMSESS1` record.
        snapshot: Vec<u8>,
    },
    /// The registry catalog.
    Catalog {
        /// `(name, live versions)` pairs, sorted by name.
        entries: Vec<(String, Vec<u32>)>,
    },
    /// A `Publish` completed.
    Published {
        /// The version the artifact was published at.
        version: u32,
    },
    /// A metrics snapshot (boxed: it dwarfs every other reply variant).
    Metrics(Box<WireMetrics>),
    /// A flight-recorder snapshot.
    Trace(WireTrace),
    /// The request failed (or a frame was rejected).
    Error {
        /// Typed status; check [`WireStatus::is_retryable`].
        status: WireStatus,
        /// Human-readable detail.
        message: String,
    },
}

/// A thermal map in wire form: dimensions plus row-major cells. Converts
/// losslessly to/from [`ThermalMap`] — `f64` bits pass through untouched,
/// which is what keeps reconstruction over TCP bitwise-identical to the
/// in-process path.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMap {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Row-major cell temperatures, `rows * cols` long.
    pub cells: Vec<f64>,
}

impl From<&ThermalMap> for WireMap {
    fn from(map: &ThermalMap) -> Self {
        WireMap {
            rows: map.rows(),
            cols: map.cols(),
            cells: map.as_slice().to_vec(),
        }
    }
}

impl WireMap {
    /// Rebuilds the [`ThermalMap`].
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] if `rows * cols != cells.len()` or a
    /// dimension is zero.
    pub fn into_map(self) -> Result<ThermalMap, WireError> {
        ThermalMap::new(self.rows, self.cols, self.cells).map_err(|_| WireError::Malformed {
            context: "map dimensions disagree with cell count",
        })
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.rows).put_len(self.cols);
        enc.f64_slice(&self.cells);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let rows = dec.take_len()?;
        let cols = dec.take_len()?;
        let cells = rows
            .checked_mul(cols)
            .ok_or(WireError::Malformed {
                context: "map dimensions overflow",
            })
            .and_then(|n| dec.f64_vec(n).map_err(WireError::from))?;
        Ok(WireMap { rows, cols, cells })
    }
}

/// The metrics scalars served over the wire: the headline serving
/// counters plus the connection/wire gauges ([`WireSnapshot`]).
/// Durations travel as nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Requests accepted by the serving front end.
    pub requests: u64,
    /// Frames across all accepted requests.
    pub frames: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Streaming session steps served.
    pub session_steps: u64,
    /// Streaming sessions open at snapshot time.
    pub sessions_open: u64,
    /// High-water mark of concurrently open sessions.
    pub max_sessions_open: u64,
    /// Median batch-request latency, in nanoseconds.
    pub latency_p50_ns: u64,
    /// 99th-percentile batch-request latency, in nanoseconds.
    pub latency_p99_ns: u64,
    /// Requests shed at their deadline by QoS admission control.
    pub shed: u64,
    /// Requests answered at degraded (truncated-basis) fidelity.
    pub degraded: u64,
    /// Whether the server was in brownout at snapshot time (0 or 1).
    pub brownout: u64,
    /// Times the server has entered brownout (false → true edges).
    pub brownout_entries: u64,
    /// The connection/wire gauges (including the per-reason reap
    /// counters).
    pub wire: WireSnapshot,
    /// Raw batch-request latency histogram — the mergeable form of
    /// `latency_p50_ns`/`latency_p99_ns`, bucketed over
    /// [`eigenmaps_serve::bucket_bounds_ns`].
    pub latency_buckets: HistogramSnapshot,
    /// Raw session-step latency histogram, same buckets.
    pub session_latency_buckets: HistogramSnapshot,
}

fn encode_histogram(enc: &mut Encoder, h: &HistogramSnapshot) {
    enc.put_len(h.buckets.len());
    for &count in &h.buckets {
        enc.u64(count);
    }
    enc.u64(h.count).u64(h.total_ns);
}

fn decode_histogram(dec: &mut Decoder<'_>) -> Result<HistogramSnapshot, WireError> {
    let n = dec.take_len()?;
    let mut buckets = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        buckets.push(dec.u64()?);
    }
    Ok(HistogramSnapshot {
        buckets,
        count: dec.u64()?,
        total_ns: dec.u64()?,
    })
}

impl WireMetrics {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.requests)
            .u64(self.frames)
            .u64(self.batches)
            .u64(self.errors)
            .u64(self.session_steps)
            .u64(self.sessions_open)
            .u64(self.max_sessions_open)
            .u64(self.latency_p50_ns)
            .u64(self.latency_p99_ns)
            .u64(self.shed)
            .u64(self.degraded)
            .u64(self.brownout)
            .u64(self.brownout_entries)
            .u64(self.wire.connections_open)
            .u64(self.wire.max_connections_open)
            .u64(self.wire.frames_in)
            .u64(self.wire.frames_out)
            .u64(self.wire.bytes_in)
            .u64(self.wire.bytes_out)
            .u64(self.wire.errors_oversized)
            .u64(self.wire.errors_corrupt)
            .u64(self.wire.errors_malformed)
            .u64(self.wire.errors_unknown_kind)
            .u64(self.wire.errors_rejected)
            .u64(self.wire.reaped_idle)
            .u64(self.wire.reaped_slow_client)
            .u64(self.wire.reaped_drain)
            .u64(self.wire.checkpoints)
            .u64(self.wire.checkpoint_sessions)
            .u64(self.wire.hydrated_deployments)
            .u64(self.wire.hydrated_sessions)
            .u64(self.wire.hydration_skipped);
        encode_histogram(enc, &self.latency_buckets);
        encode_histogram(enc, &self.session_latency_buckets);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(WireMetrics {
            requests: dec.u64()?,
            frames: dec.u64()?,
            batches: dec.u64()?,
            errors: dec.u64()?,
            session_steps: dec.u64()?,
            sessions_open: dec.u64()?,
            max_sessions_open: dec.u64()?,
            latency_p50_ns: dec.u64()?,
            latency_p99_ns: dec.u64()?,
            shed: dec.u64()?,
            degraded: dec.u64()?,
            brownout: dec.u64()?,
            brownout_entries: dec.u64()?,
            wire: WireSnapshot {
                connections_open: dec.u64()?,
                max_connections_open: dec.u64()?,
                frames_in: dec.u64()?,
                frames_out: dec.u64()?,
                bytes_in: dec.u64()?,
                bytes_out: dec.u64()?,
                errors_oversized: dec.u64()?,
                errors_corrupt: dec.u64()?,
                errors_malformed: dec.u64()?,
                errors_unknown_kind: dec.u64()?,
                errors_rejected: dec.u64()?,
                reaped_idle: dec.u64()?,
                reaped_slow_client: dec.u64()?,
                reaped_drain: dec.u64()?,
                checkpoints: dec.u64()?,
                checkpoint_sessions: dec.u64()?,
                hydrated_deployments: dec.u64()?,
                hydrated_sessions: dec.u64()?,
                hydration_skipped: dec.u64()?,
            },
            latency_buckets: decode_histogram(dec)?,
            session_latency_buckets: decode_histogram(dec)?,
        })
    }
}

/// A flight-recorder snapshot in wire form: the event ring's recent
/// history plus per-tenant stage-latency quantiles and slow-request
/// exemplars. Stage codes/args follow [`eigenmaps_serve::Stage`]
/// (`code()`/`arg()`/`from_wire`); see `ARCHITECTURE.md`, section
/// *Observability: the flight recorder*, for the taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireTrace {
    /// Events ever written to the ring.
    pub written: u64,
    /// Events lost to overwrite or writer contention.
    pub dropped: u64,
    /// The surviving ring events, oldest first.
    pub events: Vec<WireTraceEvent>,
    /// Per-tenant stage quantiles and exemplars, sorted by tenant name.
    pub tenants: Vec<WireTenantTrace>,
}

/// One ring event on the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireTraceEvent {
    /// The trace id the event belongs to.
    pub trace: u64,
    /// Tenant (deployment name) the trace was opened for.
    pub tenant: String,
    /// Stage code ([`eigenmaps_serve::Stage::code`]).
    pub stage: u8,
    /// Stage argument (coalesced request count or rejection reason).
    pub arg: u64,
    /// Timestamp on the recorder's clock, in nanoseconds since its epoch.
    pub at_ns: u64,
}

/// One tenant's stage-latency quantiles and worst full traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireTenantTrace {
    /// Tenant (deployment name).
    pub tenant: String,
    /// Median queue wait (admitted → shard-dispatched), ns.
    pub queue_wait_p50_ns: u64,
    /// p99 queue wait, ns.
    pub queue_wait_p99_ns: u64,
    /// Median execute (shard-dispatched → kernel-done), ns.
    pub execute_p50_ns: u64,
    /// p99 execute, ns.
    pub execute_p99_ns: u64,
    /// Median respond (kernel-done → responded/rejected), ns.
    pub respond_p50_ns: u64,
    /// p99 respond, ns.
    pub respond_p99_ns: u64,
    /// The K worst (slowest admitted → terminal) full traces.
    pub exemplars: Vec<WireExemplar>,
}

/// One slow-request exemplar: a full stage timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireExemplar {
    /// The trace id.
    pub trace: u64,
    /// Admitted → terminal-stage wall time, ns.
    pub total_ns: u64,
    /// The recorded stages in timeline order.
    pub stages: Vec<WireStage>,
}

/// One stage stamp inside an exemplar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStage {
    /// Stage code ([`eigenmaps_serve::Stage::code`]).
    pub stage: u8,
    /// Stage argument (coalesced request count or rejection reason).
    pub arg: u64,
    /// Timestamp in nanoseconds since the recorder's epoch.
    pub at_ns: u64,
}

impl WireTrace {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.written).u64(self.dropped);
        enc.put_len(self.events.len());
        for event in &self.events {
            enc.u64(event.trace);
            encode_str(enc, &event.tenant);
            enc.u8(event.stage).u64(event.arg).u64(event.at_ns);
        }
        enc.put_len(self.tenants.len());
        for tenant in &self.tenants {
            encode_str(enc, &tenant.tenant);
            enc.u64(tenant.queue_wait_p50_ns)
                .u64(tenant.queue_wait_p99_ns)
                .u64(tenant.execute_p50_ns)
                .u64(tenant.execute_p99_ns)
                .u64(tenant.respond_p50_ns)
                .u64(tenant.respond_p99_ns);
            enc.put_len(tenant.exemplars.len());
            for exemplar in &tenant.exemplars {
                enc.u64(exemplar.trace).u64(exemplar.total_ns);
                enc.put_len(exemplar.stages.len());
                for stage in &exemplar.stages {
                    enc.u8(stage.stage).u64(stage.arg).u64(stage.at_ns);
                }
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let written = dec.u64()?;
        let dropped = dec.u64()?;
        let count = dec.take_len()?;
        let mut events = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            events.push(WireTraceEvent {
                trace: dec.u64()?,
                tenant: decode_str(dec)?,
                stage: dec.u8()?,
                arg: dec.u64()?,
                at_ns: dec.u64()?,
            });
        }
        let count = dec.take_len()?;
        let mut tenants = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tenant = decode_str(dec)?;
            let queue_wait_p50_ns = dec.u64()?;
            let queue_wait_p99_ns = dec.u64()?;
            let execute_p50_ns = dec.u64()?;
            let execute_p99_ns = dec.u64()?;
            let respond_p50_ns = dec.u64()?;
            let respond_p99_ns = dec.u64()?;
            let exemplar_count = dec.take_len()?;
            let mut exemplars = Vec::with_capacity(exemplar_count.min(1024));
            for _ in 0..exemplar_count {
                let trace = dec.u64()?;
                let total_ns = dec.u64()?;
                let stage_count = dec.take_len()?;
                let mut stages = Vec::with_capacity(stage_count.min(1024));
                for _ in 0..stage_count {
                    stages.push(WireStage {
                        stage: dec.u8()?,
                        arg: dec.u64()?,
                        at_ns: dec.u64()?,
                    });
                }
                exemplars.push(WireExemplar {
                    trace,
                    total_ns,
                    stages,
                });
            }
            tenants.push(WireTenantTrace {
                tenant,
                queue_wait_p50_ns,
                queue_wait_p99_ns,
                execute_p50_ns,
                execute_p99_ns,
                respond_p50_ns,
                respond_p99_ns,
                exemplars,
            });
        }
        Ok(WireTrace {
            written,
            dropped,
            events,
            tenants,
        })
    }
}

fn encode_str(enc: &mut Encoder, s: &str) {
    enc.put_len(s.len());
    enc.bytes(s.as_bytes());
}

fn decode_str(dec: &mut Decoder<'_>) -> Result<String, WireError> {
    let len = dec.take_len()?;
    let raw = dec.take(len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed {
        context: "invalid UTF-8 string",
    })
}

fn encode_blob(enc: &mut Encoder, bytes: &[u8]) {
    enc.put_len(bytes.len());
    enc.bytes(bytes);
}

fn decode_blob(dec: &mut Decoder<'_>) -> Result<Vec<u8>, WireError> {
    let len = dec.take_len()?;
    Ok(dec.take(len)?.to_vec())
}

fn decode_bool(dec: &mut Decoder<'_>) -> Result<bool, WireError> {
    match dec.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Malformed {
            context: "boolean flag out of range",
        }),
    }
}

fn encode_readings(enc: &mut Encoder, readings: &[f64]) {
    enc.put_len(readings.len());
    enc.f64_slice(readings);
}

fn decode_readings(dec: &mut Decoder<'_>) -> Result<Vec<f64>, WireError> {
    let m = dec.take_len()?;
    Ok(dec.f64_vec(m)?)
}

/// Seals `kind` + `body` into a complete wire frame (length prefix
/// included) under correlation id `id`.
///
/// # Errors
///
/// [`EncodeError`] when the record exceeds [`MAX_FRAME_BYTES`] — the
/// encode-side mirror of the receiver's oversized check. The bound also
/// keeps the `u32` length prefix exact: without it, `record.len() as u32`
/// would silently truncate any record over `u32::MAX` bytes.
fn seal_frame(id: u64, kind: u8, body: impl FnOnce(&mut Encoder)) -> Result<Vec<u8>, EncodeError> {
    let mut enc = Encoder::with_capacity(64);
    enc.bytes(MAGIC).u32(VERSION).u64(id).u8(kind);
    body(&mut enc);
    let mut record = enc.finish();
    let checksum = fnv1a64(&record);
    record.extend_from_slice(&checksum.to_le_bytes());
    if record.len() > MAX_FRAME_BYTES {
        return Err(EncodeError {
            len: record.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    let prefix = u32::try_from(record.len()).expect("bound fits in u32");
    let mut frame = Vec::with_capacity(4 + record.len());
    frame.extend_from_slice(&prefix.to_le_bytes());
    frame.extend_from_slice(&record);
    Ok(frame)
}

/// Validates a complete record's envelope (magic, version, checksum) and
/// hands back a decoder positioned at `id`.
fn open_record<'a>(record: &'a [u8]) -> Result<Decoder<'a>, WireError> {
    if record.len() < RECORD_OVERHEAD {
        return Err(WireError::Corrupt {
            context: "record shorter than the fixed envelope",
        });
    }
    let (payload, trailer) = record.split_at(record.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if fnv1a64(payload) != stored {
        return Err(WireError::Corrupt {
            context: "checksum mismatch",
        });
    }
    let mut dec = Decoder::new(payload);
    dec.magic(MAGIC).map_err(|_| WireError::Corrupt {
        context: "bad magic",
    })?;
    dec.version(VERSION).map_err(|_| WireError::Corrupt {
        context: "unsupported wire version",
    })?;
    Ok(dec)
}

impl Request {
    /// Encodes this request as a complete wire frame under `id`.
    ///
    /// # Errors
    ///
    /// [`EncodeError`] when the record would exceed [`MAX_FRAME_BYTES`]
    /// (e.g. a `Publish` artifact or batch too large for one frame).
    pub fn encode(&self, id: u64) -> Result<Vec<u8>, EncodeError> {
        match self {
            Request::SubmitBatch { deployment, frames } => {
                seal_frame(id, KIND_SUBMIT_BATCH, |enc| {
                    encode_str(enc, deployment);
                    enc.put_len(frames.len());
                    for frame in frames {
                        encode_readings(enc, frame);
                    }
                })
            }
            Request::OpenSession { deployment, gain } => seal_frame(id, KIND_OPEN_SESSION, |enc| {
                encode_str(enc, deployment);
                enc.f64(*gain);
            }),
            Request::StepSession { session, readings } => {
                seal_frame(id, KIND_STEP_SESSION, |enc| {
                    enc.u64(*session);
                    encode_readings(enc, readings);
                })
            }
            Request::CloseSession { session } => seal_frame(id, KIND_CLOSE_SESSION, |enc| {
                enc.u64(*session);
            }),
            Request::Snapshot { session } => seal_frame(id, KIND_SNAPSHOT, |enc| {
                enc.u64(*session);
            }),
            Request::Resume { snapshot } => seal_frame(id, KIND_RESUME, |enc| {
                encode_blob(enc, snapshot);
            }),
            Request::Catalog => seal_frame(id, KIND_CATALOG, |_| {}),
            Request::Publish { name, artifact } => seal_frame(id, KIND_PUBLISH, |enc| {
                encode_str(enc, name);
                encode_blob(enc, artifact);
            }),
            Request::Metrics => seal_frame(id, KIND_METRICS, |_| {}),
            Request::Trace => seal_frame(id, KIND_TRACE, |_| {}),
            Request::Attach { durable } => seal_frame(id, KIND_ATTACH, |enc| {
                enc.u64(*durable);
            }),
        }
    }

    /// Decodes a complete record (length prefix stripped) as a request.
    ///
    /// # Errors
    ///
    /// [`DecodeFailure`] carrying the [`WireError`] kind, plus the
    /// correlation id whenever the envelope validated.
    pub fn decode(record: &[u8]) -> Result<(u64, Request), DecodeFailure> {
        let mut dec = open_record(record).map_err(|error| DecodeFailure { id: None, error })?;
        let id = dec.u64().map_err(|e| DecodeFailure {
            id: None,
            error: e.into(),
        })?;
        let fail = |error: WireError| DecodeFailure {
            id: Some(id),
            error,
        };
        let kind = dec.u8().map_err(|e| fail(e.into()))?;
        let request = match kind {
            KIND_SUBMIT_BATCH => {
                let deployment = decode_str(&mut dec).map_err(fail)?;
                let count = dec.take_len().map_err(|e| fail(e.into()))?;
                let mut frames = Vec::new();
                for _ in 0..count {
                    frames.push(decode_readings(&mut dec).map_err(fail)?);
                }
                Request::SubmitBatch { deployment, frames }
            }
            KIND_OPEN_SESSION => Request::OpenSession {
                deployment: decode_str(&mut dec).map_err(fail)?,
                gain: dec.f64().map_err(|e| fail(e.into()))?,
            },
            KIND_STEP_SESSION => Request::StepSession {
                session: dec.u64().map_err(|e| fail(e.into()))?,
                readings: decode_readings(&mut dec).map_err(fail)?,
            },
            KIND_CLOSE_SESSION => Request::CloseSession {
                session: dec.u64().map_err(|e| fail(e.into()))?,
            },
            KIND_SNAPSHOT => Request::Snapshot {
                session: dec.u64().map_err(|e| fail(e.into()))?,
            },
            KIND_RESUME => Request::Resume {
                snapshot: decode_blob(&mut dec).map_err(fail)?,
            },
            KIND_CATALOG => Request::Catalog,
            KIND_PUBLISH => Request::Publish {
                name: decode_str(&mut dec).map_err(fail)?,
                artifact: decode_blob(&mut dec).map_err(fail)?,
            },
            KIND_METRICS => Request::Metrics,
            KIND_TRACE => Request::Trace,
            KIND_ATTACH => Request::Attach {
                durable: dec.u64().map_err(|e| fail(e.into()))?,
            },
            kind => return Err(fail(WireError::UnknownKind { kind })),
        };
        dec.finish().map_err(|_| {
            fail(WireError::Malformed {
                context: "trailing bytes after body",
            })
        })?;
        Ok((id, request))
    }
}

impl Response {
    /// Encodes this response as a complete wire frame under `id`.
    ///
    /// # Errors
    ///
    /// [`EncodeError`] when the record would exceed [`MAX_FRAME_BYTES`]
    /// (e.g. a `Batch` reply whose reconstructed maps dwarf the frames
    /// that requested them).
    pub fn encode(&self, id: u64) -> Result<Vec<u8>, EncodeError> {
        match self {
            Response::Batch {
                version,
                maps,
                degraded,
            } => seal_frame(id, KIND_BATCH_REPLY, |enc| {
                enc.u32(*version);
                enc.put_len(maps.len());
                for map in maps {
                    map.encode(enc);
                }
                enc.u8(*degraded as u8);
            }),
            Response::SessionOpened {
                session,
                version,
                frames,
                durable,
            } => seal_frame(id, KIND_SESSION_OPENED, |enc| {
                enc.u64(*session).u32(*version).u64(*frames).u64(*durable);
            }),
            Response::Step { map, degraded } => seal_frame(id, KIND_STEP_REPLY, |enc| {
                map.encode(enc);
                enc.u8(*degraded as u8);
            }),
            Response::Closed => seal_frame(id, KIND_CLOSED, |_| {}),
            Response::Snapshot { snapshot } => seal_frame(id, KIND_SNAPSHOT_REPLY, |enc| {
                encode_blob(enc, snapshot);
            }),
            Response::Catalog { entries } => seal_frame(id, KIND_CATALOG_REPLY, |enc| {
                enc.put_len(entries.len());
                for (name, versions) in entries {
                    encode_str(enc, name);
                    enc.put_len(versions.len());
                    for &v in versions {
                        enc.u32(v);
                    }
                }
            }),
            Response::Published { version } => seal_frame(id, KIND_PUBLISHED, |enc| {
                enc.u32(*version);
            }),
            Response::Metrics(metrics) => seal_frame(id, KIND_METRICS_REPLY, |enc| {
                metrics.encode(enc);
            }),
            Response::Trace(trace) => seal_frame(id, KIND_TRACE_REPLY, |enc| {
                trace.encode(enc);
            }),
            Response::Error { status, message } => seal_frame(id, KIND_ERROR, |enc| {
                enc.u8(status.to_u8());
                encode_str(enc, message);
            }),
        }
    }

    /// Decodes a complete record (length prefix stripped) as a response.
    ///
    /// # Errors
    ///
    /// [`DecodeFailure`] carrying the [`WireError`] kind, plus the
    /// correlation id whenever the envelope validated.
    pub fn decode(record: &[u8]) -> Result<(u64, Response), DecodeFailure> {
        let mut dec = open_record(record).map_err(|error| DecodeFailure { id: None, error })?;
        let id = dec.u64().map_err(|e| DecodeFailure {
            id: None,
            error: e.into(),
        })?;
        let fail = |error: WireError| DecodeFailure {
            id: Some(id),
            error,
        };
        let kind = dec.u8().map_err(|e| fail(e.into()))?;
        let response = match kind {
            KIND_BATCH_REPLY => {
                let version = dec.u32().map_err(|e| fail(e.into()))?;
                let count = dec.take_len().map_err(|e| fail(e.into()))?;
                let mut maps = Vec::new();
                for _ in 0..count {
                    maps.push(WireMap::decode(&mut dec).map_err(fail)?);
                }
                Response::Batch {
                    version,
                    maps,
                    degraded: decode_bool(&mut dec).map_err(fail)?,
                }
            }
            KIND_SESSION_OPENED => Response::SessionOpened {
                session: dec.u64().map_err(|e| fail(e.into()))?,
                version: dec.u32().map_err(|e| fail(e.into()))?,
                frames: dec.u64().map_err(|e| fail(e.into()))?,
                durable: dec.u64().map_err(|e| fail(e.into()))?,
            },
            KIND_STEP_REPLY => Response::Step {
                map: WireMap::decode(&mut dec).map_err(fail)?,
                degraded: decode_bool(&mut dec).map_err(fail)?,
            },
            KIND_CLOSED => Response::Closed,
            KIND_SNAPSHOT_REPLY => Response::Snapshot {
                snapshot: decode_blob(&mut dec).map_err(fail)?,
            },
            KIND_CATALOG_REPLY => {
                let count = dec.take_len().map_err(|e| fail(e.into()))?;
                let mut entries = Vec::new();
                for _ in 0..count {
                    let name = decode_str(&mut dec).map_err(fail)?;
                    let versions = dec.take_len().map_err(|e| fail(e.into()))?;
                    let mut vs = Vec::new();
                    for _ in 0..versions {
                        vs.push(dec.u32().map_err(|e| fail(e.into()))?);
                    }
                    entries.push((name, vs));
                }
                Response::Catalog { entries }
            }
            KIND_PUBLISHED => Response::Published {
                version: dec.u32().map_err(|e| fail(e.into()))?,
            },
            KIND_METRICS_REPLY => {
                Response::Metrics(Box::new(WireMetrics::decode(&mut dec).map_err(fail)?))
            }
            KIND_TRACE_REPLY => Response::Trace(WireTrace::decode(&mut dec).map_err(fail)?),
            KIND_ERROR => Response::Error {
                status: WireStatus::from_u8(dec.u8().map_err(|e| fail(e.into()))?).map_err(fail)?,
                message: decode_str(&mut dec).map_err(fail)?,
            },
            kind => return Err(fail(WireError::UnknownKind { kind })),
        };
        dec.finish().map_err(|_| {
            fail(WireError::Malformed {
                context: "trailing bytes after body",
            })
        })?;
        Ok((id, response))
    }
}

/// Incremental frame reassembly over a byte stream: feed raw reads in
/// with [`FrameBuffer::extend`], pop complete records (or validation
/// events) with [`FrameBuffer::next_record`].
///
/// Oversized frames are never buffered: the moment a length prefix
/// exceeds the bound, the buffer reports [`WireError::Oversized`] once
/// and silently discards exactly that many payload bytes as they arrive,
/// so the stream stays framed and the connection survives.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes of an oversized frame still to discard.
    discard: u64,
    max_frame: usize,
}

impl FrameBuffer {
    /// A buffer enforcing `max_frame` as the record-size bound.
    pub fn new(max_frame: usize) -> Self {
        FrameBuffer {
            buf: Vec::new(),
            discard: 0,
            max_frame,
        }
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.discard > 0 {
            let skip = (self.discard).min(bytes.len() as u64) as usize;
            self.discard -= skip as u64;
            self.buf.extend_from_slice(&bytes[skip..]);
        } else {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes currently buffered (excluding discarded oversized payload).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete record, `Some(Err(_))` for an oversized
    /// length prefix (reported once; the payload is discarded as it
    /// arrives), or `None` while the next frame is incomplete.
    pub fn next_record(&mut self) -> Option<Result<Vec<u8>, WireError>> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > self.max_frame {
            // Consume the prefix, arm discard mode for the payload; any
            // already-buffered payload bytes are dropped right here.
            let have = self.buf.len() - 4;
            let eat = have.min(len);
            self.buf.drain(..4 + eat);
            self.discard = (len - eat) as u64;
            return Some(Err(WireError::Oversized {
                len,
                max: self.max_frame,
            }));
        }
        if self.buf.len() - 4 < len {
            return None;
        }
        let record = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Some(Ok(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = req.encode(42).expect("encodes");
        let mut fb = FrameBuffer::new(MAX_FRAME_BYTES);
        fb.extend(&frame);
        let record = fb.next_record().expect("complete").expect("valid");
        let (id, back) = Request::decode(&record).expect("decodes");
        assert_eq!(id, 42);
        assert_eq!(back, req);
        assert_eq!(fb.buffered(), 0);
    }

    fn roundtrip_response(resp: Response) {
        let frame = resp.encode(7).expect("encodes");
        let (id, back) = Response::decode(&frame[4..]).expect("decodes");
        assert_eq!(id, 7);
        assert_eq!(back, resp);
    }

    #[test]
    fn every_request_kind_roundtrips() {
        roundtrip_request(Request::SubmitBatch {
            deployment: "sku-a".into(),
            frames: vec![vec![1.0, -2.5, f64::MIN_POSITIVE], vec![0.0]],
        });
        roundtrip_request(Request::OpenSession {
            deployment: "sku-b".into(),
            gain: 0.85,
        });
        roundtrip_request(Request::StepSession {
            session: 3,
            readings: vec![21.0, 22.5],
        });
        roundtrip_request(Request::CloseSession { session: 3 });
        roundtrip_request(Request::Snapshot { session: 9 });
        roundtrip_request(Request::Resume {
            snapshot: vec![1, 2, 3, 255],
        });
        roundtrip_request(Request::Catalog);
        roundtrip_request(Request::Publish {
            name: "sku-c".into(),
            artifact: vec![0; 64],
        });
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Trace);
        roundtrip_request(Request::Attach { durable: u64::MAX });
    }

    #[test]
    fn every_response_kind_roundtrips() {
        roundtrip_response(Response::Batch {
            version: 2,
            maps: vec![WireMap {
                rows: 2,
                cols: 3,
                cells: vec![1.0; 6],
            }],
            degraded: false,
        });
        roundtrip_response(Response::Batch {
            version: 2,
            maps: vec![WireMap {
                rows: 1,
                cols: 1,
                cells: vec![0.5],
            }],
            degraded: true,
        });
        roundtrip_response(Response::SessionOpened {
            session: 11,
            version: 1,
            frames: 40,
            durable: 6,
        });
        roundtrip_response(Response::Step {
            map: WireMap {
                rows: 1,
                cols: 2,
                cells: vec![50.0, 51.0],
            },
            degraded: false,
        });
        roundtrip_response(Response::Closed);
        roundtrip_response(Response::Snapshot {
            snapshot: vec![9; 33],
        });
        roundtrip_response(Response::Catalog {
            entries: vec![("a".into(), vec![1, 3]), ("b".into(), vec![])],
        });
        roundtrip_response(Response::Published { version: 5 });
        roundtrip_response(Response::Metrics(Box::new(WireMetrics {
            requests: 10,
            shed: 3,
            degraded: 2,
            brownout: 1,
            brownout_entries: 4,
            wire: WireSnapshot {
                frames_in: 12,
                reaped_idle: 2,
                reaped_slow_client: 1,
                reaped_drain: 3,
                checkpoints: 4,
                checkpoint_sessions: 8,
                hydrated_deployments: 2,
                hydrated_sessions: 5,
                hydration_skipped: 1,
                ..WireSnapshot::default()
            },
            latency_buckets: HistogramSnapshot {
                buckets: vec![0, 4, 9, 0, 1],
                count: 14,
                total_ns: 123_456,
            },
            session_latency_buckets: HistogramSnapshot {
                buckets: vec![2; 23],
                count: 46,
                total_ns: 9_000,
            },
            ..WireMetrics::default()
        })));
        roundtrip_response(Response::Trace(WireTrace {
            written: 100,
            dropped: 3,
            events: vec![
                WireTraceEvent {
                    trace: 7,
                    tenant: "sku-a".into(),
                    stage: 2,
                    arg: 16,
                    at_ns: 1_000,
                },
                WireTraceEvent {
                    trace: 8,
                    tenant: "sku-b".into(),
                    stage: 6,
                    arg: 1,
                    at_ns: 2_000,
                },
            ],
            tenants: vec![WireTenantTrace {
                tenant: "sku-a".into(),
                queue_wait_p50_ns: 10,
                queue_wait_p99_ns: 20,
                execute_p50_ns: 30,
                execute_p99_ns: 40,
                respond_p50_ns: 50,
                respond_p99_ns: 60,
                exemplars: vec![WireExemplar {
                    trace: 7,
                    total_ns: 5_500,
                    stages: vec![
                        WireStage {
                            stage: 0,
                            arg: 0,
                            at_ns: 100,
                        },
                        WireStage {
                            stage: 5,
                            arg: 0,
                            at_ns: 5_600,
                        },
                    ],
                }],
            }],
        }));
        roundtrip_response(Response::Trace(WireTrace::default()));
        roundtrip_response(Response::Error {
            status: WireStatus::Saturated,
            message: "tenant full".into(),
        });
    }

    #[test]
    fn corrupt_frames_are_rejected_without_an_id() {
        let mut frame = Request::Catalog.encode(1).expect("encodes");
        // Flip one payload bit: checksum mismatch, id untrusted.
        frame[10] ^= 0x40;
        let failure = Request::decode(&frame[4..]).unwrap_err();
        assert_eq!(failure.id, None);
        assert!(matches!(failure.error, WireError::Corrupt { .. }));

        // Too-short record.
        let failure = Request::decode(&[0u8; 8]).unwrap_err();
        assert!(matches!(failure.error, WireError::Corrupt { .. }));
    }

    #[test]
    fn wrong_direction_kind_is_unknown_with_a_trusted_id() {
        let frame = Response::Closed.encode(77).expect("encodes");
        let failure = Request::decode(&frame[4..]).unwrap_err();
        assert_eq!(failure.id, Some(77));
        assert!(matches!(
            failure.error,
            WireError::UnknownKind { kind: KIND_CLOSED }
        ));
    }

    #[test]
    fn oversized_frames_are_skipped_and_framing_survives() {
        let mut fb = FrameBuffer::new(64);
        // An oversized frame (length 1000) delivered in two chunks, then a
        // valid frame on the same stream.
        let mut stream = 1000u32.to_le_bytes().to_vec();
        stream.extend_from_slice(&[0xAB; 1000]);
        let valid = Request::Metrics.encode(5).expect("encodes");
        stream.extend_from_slice(&valid);

        fb.extend(&stream[..300]);
        match fb.next_record() {
            Some(Err(WireError::Oversized { len: 1000, max: 64 })) => {}
            other => panic!("expected oversized, got {other:?}"),
        }
        assert_eq!(fb.next_record(), None, "payload still draining");
        fb.extend(&stream[300..]);
        let record = fb.next_record().expect("framed").expect("valid");
        let (id, req) = Request::decode(&record).expect("decodes");
        assert_eq!((id, req), (5, Request::Metrics));
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let frame = Request::Snapshot { session: 1 }.encode(9).expect("encodes");
        let mut fb = FrameBuffer::new(MAX_FRAME_BYTES);
        for &b in &frame[..frame.len() - 1] {
            fb.extend(&[b]);
            assert_eq!(fb.next_record(), None);
        }
        fb.extend(&frame[frame.len() - 1..]);
        assert!(fb.next_record().unwrap().is_ok());
    }

    #[test]
    fn statuses_mirror_serve_errors_and_flag_retryability() {
        let (status, msg) = status_of(&ServeError::Saturated {
            name: "sku".into(),
            pending: 12,
        });
        assert_eq!(status, WireStatus::Saturated);
        assert!(status.is_retryable());
        assert!(msg.contains("12"));
        let (status, _) = status_of(&ServeError::UnknownDeployment { name: "x".into() });
        assert_eq!(status, WireStatus::UnknownDeployment);
        assert!(!status.is_retryable());
        assert!(WireStatus::SessionBusy.is_retryable());
        assert!(!WireStatus::BadFrame.is_retryable());
        // A shed request is transient backpressure: retry with fresh
        // readings, exactly like Saturated.
        let (status, msg) = status_of(&ServeError::DeadlineShed {
            name: "sku".into(),
            deadline: std::time::Duration::from_millis(5),
            waited: std::time::Duration::from_millis(9),
        });
        assert_eq!(status, WireStatus::DeadlineShed);
        assert!(status.is_retryable());
        assert!(msg.contains("shed"));
        // Status bytes roundtrip.
        for s in [
            WireStatus::UnknownDeployment,
            WireStatus::UnknownVersion,
            WireStatus::Terminated,
            WireStatus::Saturated,
            WireStatus::SnapshotMismatch,
            WireStatus::BadRequest,
            WireStatus::BadFrame,
            WireStatus::UnknownSession,
            WireStatus::SessionBusy,
            WireStatus::DeadlineShed,
        ] {
            assert_eq!(WireStatus::from_u8(s.to_u8()).unwrap(), s);
        }
        assert!(WireStatus::from_u8(0).is_err());
        assert!(WireStatus::from_u8(11).is_err());
    }

    #[test]
    fn oversized_records_are_refused_at_encode_time() {
        // A record one byte over the frame bound must fail to seal rather
        // than ship a frame the peer is guaranteed to discard (and, past
        // u32::MAX, silently wrap the length prefix).
        let artifact = vec![0u8; MAX_FRAME_BYTES + 1];
        let err = Request::Publish {
            name: "huge".into(),
            artifact,
        }
        .encode(1)
        .unwrap_err();
        assert!(err.len > MAX_FRAME_BYTES);
        assert_eq!(err.max, MAX_FRAME_BYTES);
        assert!(err.to_string().contains("refusing to encode"));

        // Responses hit the same wall: a batch reply whose maps exceed
        // the bound is refused, not wrapped.
        let cells_per_map = 1 << 18;
        let maps = (0..(MAX_FRAME_BYTES / (8 * cells_per_map)) + 1)
            .map(|_| WireMap {
                rows: cells_per_map,
                cols: 1,
                cells: vec![0.0; cells_per_map],
            })
            .collect();
        let err = Response::Batch {
            version: 1,
            maps,
            degraded: false,
        }
        .encode(2)
        .unwrap_err();
        assert_eq!(err.max, MAX_FRAME_BYTES);
    }

    #[test]
    fn out_of_range_degraded_flag_is_malformed() {
        // Rebuild a Step reply whose trailing degraded byte is 2.
        let mut enc = Encoder::with_capacity(64);
        enc.bytes(MAGIC).u32(VERSION).u64(4).u8(KIND_STEP_REPLY);
        enc.put_len(1).put_len(1);
        enc.f64_slice(&[42.0]);
        enc.u8(2);
        let mut record = enc.finish();
        let checksum = fnv1a64(&record);
        record.extend_from_slice(&checksum.to_le_bytes());
        let failure = Response::decode(&record).unwrap_err();
        assert_eq!(failure.id, Some(4));
        assert!(matches!(failure.error, WireError::Malformed { .. }));
    }

    #[test]
    fn trailing_garbage_inside_a_record_is_malformed() {
        // Rebuild a Catalog frame with an extra byte before the checksum.
        let mut enc = Encoder::with_capacity(64);
        enc.bytes(MAGIC)
            .u32(VERSION)
            .u64(3)
            .u8(KIND_CATALOG)
            .u8(0xEE);
        let mut record = enc.finish();
        let checksum = fnv1a64(&record);
        record.extend_from_slice(&checksum.to_le_bytes());
        let failure = Request::decode(&record).unwrap_err();
        assert_eq!(failure.id, Some(3));
        assert!(matches!(failure.error, WireError::Malformed { .. }));
    }
}
