//! The TCP front door: a single-threaded, nonblocking accept/poll event
//! loop that speaks [`EMWIRE1`](crate::protocol) and bridges onto the
//! in-process [`Server`] front door.
//!
//! No async runtime: the loop multiplexes plain [`std::net`] sockets in
//! nonblocking mode. Batch and step submissions go through
//! [`Server::try_submit`] / [`TrackerSession::submit_step`]; their
//! tickets park in per-connection tables and complete on a later loop
//! pass. A ticket's `on_ready` callback pokes a wakeup channel — the
//! loop's stand-in for a self-pipe — so responses flush promptly instead
//! of waiting out the poll interval.
//!
//! Robustness contract (exercised by the crate's tests):
//!
//! * corrupt, malformed, truncated or oversized frames produce an
//!   `Error` reply and a metrics tick — never a panic, never a torn-down
//!   connection (oversized payloads are skipped unbuffered);
//! * a client disconnecting with responses in flight just drops its
//!   tickets and sessions — the serving runtime completes the abandoned
//!   responders through its `Terminated` path and the batcher never
//!   wedges;
//! * backpressure: a connection whose write backlog exceeds the
//!   configured bound stops being read until the backlog drains, letting
//!   TCP flow control push back on the client;
//! * idle and slow-client timeouts reap connections that make no
//!   progress; a graceful shutdown drains pending responses first.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eigenmaps_serve::{
    ReapReason, ServeMetrics, ServeRequest, Server, StepTicket, Ticket, TraceExemplar,
    TrackerSession, WireErrorKind,
};

use crate::protocol::{
    status_of, FrameBuffer, Request, Response, WireError, WireExemplar, WireMap, WireMetrics,
    WireStage, WireStatus, WireTenantTrace, WireTrace, WireTraceEvent, MAX_FRAME_BYTES,
};

/// Tunables for the event loop. [`NetConfig::default`] is sized for
/// tests and small fleets; production deployments mostly raise
/// `idle_timeout`.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Largest record (length prefix excluded) the door will buffer;
    /// larger frames are skipped and answered with `BadFrame`.
    pub max_frame_bytes: usize,
    /// How long the loop sleeps on the wakeup channel when idle.
    pub poll_interval: Duration,
    /// Connections with no read/write progress for this long are
    /// dropped — covers both idle clients and slow readers sitting on a
    /// full write backlog.
    pub idle_timeout: Duration,
    /// Soft bound on a connection's unflushed response bytes; past it
    /// the door stops reading from that connection until the backlog
    /// drains.
    pub write_backlog_limit: usize,
    /// On shutdown, how long to keep flushing in-flight responses
    /// before dropping the remaining connections.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_bytes: MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(1),
            idle_timeout: Duration::from_secs(60),
            write_backlog_limit: 4 * 1024 * 1024,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

enum Wake {
    /// A parked ticket became ready — sweep and flush.
    Notify,
    /// Shutdown was requested — enter the drain phase.
    Shutdown,
}

/// A cheap handle for stopping a running [`NetServer`] from another
/// thread.
#[derive(Clone)]
pub struct DoorHandle {
    stop: Arc<AtomicBool>,
    wake: Sender<Wake>,
}

impl DoorHandle {
    /// Requests a graceful shutdown: the door stops accepting, drains
    /// pending responses (bounded by [`NetConfig::drain_timeout`]) and
    /// returns from [`NetServer::run`].
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // The loop may be asleep in `recv_timeout`; losing the race to a
        // dropped receiver just means it already exited.
        let _ = self.wake.send(Wake::Shutdown);
    }
}

/// One accepted connection and everything in flight on it.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Encoded, unflushed response bytes; `written` is the flush cursor.
    outbox: Vec<u8>,
    written: usize,
    /// Batch tickets keyed by request correlation id.
    batches: HashMap<u64, Ticket>,
    /// Step tickets keyed by request correlation id, with the session id
    /// they belong to (for error reporting only).
    steps: HashMap<u64, StepTicket>,
    /// Open sessions keyed by the door-assigned session id.
    sessions: HashMap<u64, TrackerSession>,
    next_session: u64,
    /// Last moment this connection made read or write progress.
    last_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize, now: Instant) -> Self {
        Conn {
            stream,
            frames: FrameBuffer::new(max_frame),
            outbox: Vec::new(),
            written: 0,
            batches: HashMap::new(),
            steps: HashMap::new(),
            sessions: HashMap::new(),
            next_session: 1,
            last_progress: now,
        }
    }

    fn backlog(&self) -> usize {
        self.outbox.len() - self.written
    }

    fn pending(&self) -> usize {
        self.batches.len() + self.steps.len()
    }

    fn enqueue(&mut self, frame: Vec<u8>, metrics: &ServeMetrics) {
        metrics.record_wire_frame_out();
        metrics.record_wire_bytes_out(frame.len() as u64);
        if self.written > 0 && self.written == self.outbox.len() {
            self.outbox.clear();
            self.written = 0;
        }
        self.outbox.extend_from_slice(&frame);
    }
}

/// The `EMWIRE1` TCP front door. Bind with [`NetServer::bind`], grab a
/// [`DoorHandle`] for shutdown, then [`NetServer::run`] the loop (it
/// blocks the calling thread until shutdown).
pub struct NetServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    server: Arc<Server>,
    config: NetConfig,
    stop: Arc<AtomicBool>,
    wake_tx: Sender<Wake>,
    wake_rx: Receiver<Wake>,
    /// Hydrated sessions waiting for a client to `Attach` by durable id.
    orphans: Arc<Mutex<HashMap<u64, TrackerSession>>>,
}

impl NetServer {
    /// Binds a door for `server` on `addr` (use port 0 for an ephemeral
    /// port; read it back from [`NetServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(addr: impl ToSocketAddrs, server: Arc<Server>) -> std::io::Result<Self> {
        Self::bind_with(addr, server, NetConfig::default())
    }

    /// [`NetServer::bind`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        server: Arc<Server>,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = mpsc::channel();
        Ok(NetServer {
            listener,
            local_addr,
            server,
            config,
            stop: Arc::new(AtomicBool::new(false)),
            wake_tx,
            wake_rx,
            orphans: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Parks checkpoint-recovered sessions (from [`Server::hydrate`])
    /// until clients reclaim them with `Attach { durable }`. Each entry
    /// is keyed by its durable id and can be claimed exactly once; ids
    /// never attached stay parked (and keep being checkpointed) for the
    /// life of the door.
    pub fn adopt(&self, sessions: Vec<(u64, TrackerSession)>) {
        let mut orphans = self.orphans.lock().expect("orphan pool poisoned");
        for (durable, session) in sessions {
            orphans.insert(durable, session);
        }
    }

    /// The bound address — the port clients should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable shutdown handle, valid for the lifetime of the loop.
    pub fn handle(&self) -> DoorHandle {
        DoorHandle {
            stop: Arc::clone(&self.stop),
            wake: self.wake_tx.clone(),
        }
    }

    /// Runs the event loop on the calling thread until a [`DoorHandle`]
    /// requests shutdown. Returns after the graceful drain completes.
    pub fn run(self) {
        let NetServer {
            listener,
            local_addr: _,
            server,
            config,
            stop,
            wake_tx,
            wake_rx,
            orphans,
        } = self;
        let metrics = Arc::clone(server.metrics_hub());
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn: u64 = 1;
        let mut drain_deadline: Option<Instant> = None;

        loop {
            // Sleep on the wakeup channel: a ready ticket (or shutdown)
            // pokes it, otherwise the poll interval bounds the nap.
            match wake_rx.recv_timeout(config.poll_interval) {
                Ok(_) | Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("loop holds a sender"),
            }
            while wake_rx.try_recv().is_ok() {}

            let draining = stop.load(Ordering::Acquire);
            let now = Instant::now();
            if draining && drain_deadline.is_none() {
                drain_deadline = Some(now + config.drain_timeout);
            }

            // Accept phase — skipped once draining.
            if !draining {
                loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            metrics.record_connection_opened();
                            conns.insert(next_conn, Conn::new(stream, config.max_frame_bytes, now));
                            next_conn += 1;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        // Transient accept errors (aborted handshakes);
                        // keep serving.
                        Err(_) => break,
                    }
                }
            }

            let mut dead: Vec<u64> = Vec::new();
            for (&id, conn) in conns.iter_mut() {
                let alive = service_conn(
                    conn, &server, &metrics, &wake_tx, &orphans, &config, draining, now,
                );
                if !alive {
                    dead.push(id);
                }
            }
            for id in dead {
                conns.remove(&id);
                metrics.record_connection_closed();
            }

            if draining {
                let drained = conns.values().all(|c| c.backlog() == 0 && c.pending() == 0);
                let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
                if drained || expired {
                    break;
                }
            }
        }

        // Teardown: dropping each connection drops its parked tickets
        // and sessions — the runtime's `Terminated` path completes any
        // abandoned responders. Anything still open here is a drain reap.
        for (_, conn) in conns.drain() {
            metrics.record_reap(ReapReason::Drain);
            eprintln!(
                "eigenmaps-net: reaped {} at shutdown (drain; {} unflushed byte(s), {} ticket(s) in flight)",
                peer_label(&conn),
                conn.backlog(),
                conn.pending(),
            );
            metrics.record_connection_closed();
        }
    }
}

/// One service pass over a connection: read, decode, dispatch, complete
/// ready tickets, flush, and judge liveness. Returns `false` when the
/// connection should be reaped.
#[allow(clippy::too_many_arguments)]
fn service_conn(
    conn: &mut Conn,
    server: &Arc<Server>,
    metrics: &Arc<ServeMetrics>,
    wake: &Sender<Wake>,
    orphans: &Mutex<HashMap<u64, TrackerSession>>,
    config: &NetConfig,
    draining: bool,
    now: Instant,
) -> bool {
    // Read phase — skipped while the write backlog is over the bound
    // (backpressure) or the door is draining.
    let mut peer_closed = false;
    if !draining && conn.backlog() <= config.write_backlog_limit {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    peer_closed = true;
                    break;
                }
                Ok(n) => {
                    metrics.record_wire_bytes_in(n as u64);
                    conn.frames.extend(&chunk[..n]);
                    conn.last_progress = now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    peer_closed = true;
                    break;
                }
            }
        }
    }

    // Frame phase: pop complete records, dispatch each. Never panics on
    // hostile bytes — every failure becomes an `Error` reply.
    while let Some(outcome) = conn.frames.next_record() {
        match outcome {
            Ok(record) => {
                metrics.record_wire_frame_in();
                match Request::decode(&record) {
                    Ok((id, request)) => {
                        dispatch(conn, server, metrics, wake, orphans, id, request)
                    }
                    Err(failure) => {
                        record_wire_error(metrics, &failure.error);
                        // A corrupt envelope has no trustworthy id; 0
                        // marks the reply uncorrelatable.
                        let reply = Response::Error {
                            status: WireStatus::BadFrame,
                            message: failure.error.to_string(),
                        };
                        let reply = seal_reply(reply, failure.id.unwrap_or(0), metrics);
                        conn.enqueue(reply, metrics);
                    }
                }
            }
            Err(err) => {
                record_wire_error(metrics, &err);
                let reply = Response::Error {
                    status: WireStatus::BadFrame,
                    message: err.to_string(),
                };
                let reply = seal_reply(reply, 0, metrics);
                conn.enqueue(reply, metrics);
            }
        }
    }

    // Completion phase: sweep parked tickets for ready responses.
    let ready: Vec<u64> = conn
        .batches
        .iter()
        .filter(|(_, t)| t.is_ready())
        .map(|(&id, _)| id)
        .collect();
    for id in ready {
        let mut ticket = conn
            .batches
            .remove(&id)
            .expect("ready id came from the map");
        let version = ticket.version();
        match ticket.try_wait() {
            Some(Ok(maps)) => {
                let maps = maps.iter().map(WireMap::from).collect();
                let reply = Response::Batch {
                    version,
                    maps,
                    degraded: ticket.is_degraded(),
                };
                conn.enqueue(seal_reply(reply, id, metrics), metrics);
            }
            Some(Err(e)) => {
                conn.enqueue(error_reply(&e, id, metrics), metrics);
            }
            // A spurious readiness race: repark and retry next pass.
            None => {
                conn.batches.insert(id, ticket);
            }
        }
    }
    let ready: Vec<u64> = conn
        .steps
        .iter()
        .filter(|(_, t)| t.is_ready())
        .map(|(&id, _)| id)
        .collect();
    for id in ready {
        let mut ticket = conn.steps.remove(&id).expect("ready id came from the map");
        match ticket.try_wait() {
            Some(Ok(map)) => {
                let map = WireMap::from(&map);
                let reply = Response::Step {
                    map,
                    degraded: ticket.is_degraded(),
                };
                conn.enqueue(seal_reply(reply, id, metrics), metrics);
            }
            Some(Err(e)) => {
                conn.enqueue(error_reply(&e, id, metrics), metrics);
            }
            None => {
                conn.steps.insert(id, ticket);
            }
        }
    }

    // Write phase: flush as much of the outbox as the socket takes.
    while conn.written < conn.outbox.len() {
        match conn.stream.write(&conn.outbox[conn.written..]) {
            Ok(0) => {
                peer_closed = true;
                break;
            }
            Ok(n) => {
                conn.written += n;
                conn.last_progress = now;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                peer_closed = true;
                break;
            }
        }
    }
    if conn.written == conn.outbox.len() && !conn.outbox.is_empty() {
        conn.outbox.clear();
        conn.written = 0;
    }

    if peer_closed {
        // Keep the connection only while unflushed responses might still
        // be deliverable; a read-side EOF with nothing to say is final.
        return false;
    }
    // Idle / slow-client reaping: no progress in either direction for
    // the whole timeout window. An unflushed backlog says the peer is
    // alive but not reading (slow client); an empty one says it simply
    // went quiet (idle).
    if now.duration_since(conn.last_progress) > config.idle_timeout {
        let reason = if conn.backlog() > 0 {
            metrics.record_reap(ReapReason::SlowClient);
            "slow client"
        } else {
            metrics.record_reap(ReapReason::Idle);
            "idle"
        };
        eprintln!(
            "eigenmaps-net: reaped {} after {:?} without progress ({reason}; {} unflushed byte(s))",
            peer_label(conn),
            config.idle_timeout,
            conn.backlog(),
        );
        return false;
    }
    true
}

/// Best-effort peer address for reap log lines; a socket that already
/// failed reports as `<unknown>`.
fn peer_label(conn: &Conn) -> String {
    conn.stream
        .peer_addr()
        .map_or_else(|_| String::from("<unknown>"), |addr| addr.to_string())
}

/// Handles one decoded request, either replying immediately or parking a
/// ticket whose readiness callback will wake the loop.
fn dispatch(
    conn: &mut Conn,
    server: &Arc<Server>,
    metrics: &Arc<ServeMetrics>,
    wake: &Sender<Wake>,
    orphans: &Mutex<HashMap<u64, TrackerSession>>,
    id: u64,
    request: Request,
) {
    match request {
        Request::SubmitBatch { deployment, frames } => {
            match server.try_submit(ServeRequest::new(deployment, frames)) {
                Ok(ticket) => {
                    let tx = wake.clone();
                    ticket.on_ready(move || {
                        let _ = tx.send(Wake::Notify);
                    });
                    conn.batches.insert(id, ticket);
                }
                Err(e) => {
                    let reply = error_reply(&e, id, metrics);
                    conn.enqueue(reply, metrics);
                }
            }
        }
        Request::OpenSession { deployment, gain } => match server.open_session(&deployment, gain) {
            Ok(session) => {
                let reply = register_session(conn, session);
                conn.enqueue(seal_reply(reply, id, metrics), metrics);
            }
            Err(e) => {
                let reply = error_reply(&e, id, metrics);
                conn.enqueue(reply, metrics);
            }
        },
        Request::StepSession { session, readings } => match conn.sessions.get(&session) {
            Some(open) => match open.submit_step(&readings) {
                Ok(ticket) => {
                    let tx = wake.clone();
                    ticket.on_ready(move || {
                        let _ = tx.send(Wake::Notify);
                    });
                    conn.steps.insert(id, ticket);
                }
                Err(e) => {
                    let reply = error_reply(&e, id, metrics);
                    conn.enqueue(reply, metrics);
                }
            },
            None => {
                let reply = unknown_session(session, id, metrics);
                conn.enqueue(reply, metrics);
            }
        },
        Request::CloseSession { session } => {
            if conn.sessions.remove(&session).is_some() {
                conn.enqueue(seal_reply(Response::Closed, id, metrics), metrics);
            } else {
                let reply = unknown_session(session, id, metrics);
                conn.enqueue(reply, metrics);
            }
        }
        Request::Snapshot { session } => match conn.sessions.get(&session) {
            Some(open) => {
                if open.pending_steps() > 0 {
                    metrics.record_wire_error(WireErrorKind::Rejected);
                    let reply = Response::Error {
                        status: WireStatus::SessionBusy,
                        message: format!(
                            "session {session} has {} step(s) in flight; retry once they land",
                            open.pending_steps()
                        ),
                    };
                    conn.enqueue(seal_reply(reply, id, metrics), metrics);
                } else {
                    let snapshot = open.snapshot();
                    conn.enqueue(
                        seal_reply(Response::Snapshot { snapshot }, id, metrics),
                        metrics,
                    );
                }
            }
            None => {
                let reply = unknown_session(session, id, metrics);
                conn.enqueue(reply, metrics);
            }
        },
        Request::Resume { snapshot } => match server.resume_session(&snapshot) {
            Ok(session) => {
                let reply = register_session(conn, session);
                conn.enqueue(seal_reply(reply, id, metrics), metrics);
            }
            Err(e) => {
                let reply = error_reply(&e, id, metrics);
                conn.enqueue(reply, metrics);
            }
        },
        Request::Catalog => {
            let entries = server.registry().catalog();
            conn.enqueue(
                seal_reply(Response::Catalog { entries }, id, metrics),
                metrics,
            );
        }
        Request::Publish { name, artifact } => {
            match server.registry().publish_bytes(&name, &artifact) {
                Ok(version) => {
                    conn.enqueue(
                        seal_reply(Response::Published { version }, id, metrics),
                        metrics,
                    );
                }
                Err(e) => {
                    let reply = error_reply(&e, id, metrics);
                    conn.enqueue(reply, metrics);
                }
            }
        }
        Request::Metrics => {
            let snap = server.metrics();
            let reply = Response::Metrics(Box::new(WireMetrics {
                requests: snap.requests,
                frames: snap.frames,
                batches: snap.batches,
                errors: snap.errors,
                session_steps: snap.session_steps,
                sessions_open: snap.sessions_open,
                max_sessions_open: snap.max_sessions_open,
                latency_p50_ns: snap.latency_p50.as_nanos() as u64,
                latency_p99_ns: snap.latency_p99.as_nanos() as u64,
                shed: snap.shed,
                degraded: snap.degraded,
                brownout: u64::from(snap.brownout),
                brownout_entries: snap.brownout_entries,
                wire: snap.wire,
                latency_buckets: snap.latency_buckets,
                session_latency_buckets: snap.session_latency_buckets,
            }));
            conn.enqueue(seal_reply(reply, id, metrics), metrics);
        }
        Request::Trace => {
            let reply = Response::Trace(flight_snapshot(server));
            conn.enqueue(seal_reply(reply, id, metrics), metrics);
        }
        Request::Attach { durable } => {
            let claimed = orphans
                .lock()
                .expect("orphan pool poisoned")
                .remove(&durable);
            match claimed {
                Some(session) => {
                    let reply = register_session(conn, session);
                    conn.enqueue(seal_reply(reply, id, metrics), metrics);
                }
                None => {
                    let reply = unknown_session(durable, id, metrics);
                    conn.enqueue(reply, metrics);
                }
            }
        }
    }
}

/// Assembles the wire form of the flight recorder: the event ring plus
/// per-tenant stage quantiles (from [`ServeMetrics`]) and slow-request
/// exemplars (from the recorder's exemplar store).
fn flight_snapshot(server: &Arc<Server>) -> WireTrace {
    let recorder = server.recorder();
    let ring = recorder.snapshot();
    let events = ring
        .events
        .iter()
        .map(|event| WireTraceEvent {
            trace: event.trace.0,
            tenant: event.tenant.clone(),
            stage: event.stage.code(),
            arg: event.stage.arg(),
            at_ns: event.at.as_nanos() as u64,
        })
        .collect();
    let mut exemplars = recorder.exemplars();
    let snap = server.metrics();
    let mut tenants: Vec<WireTenantTrace> = snap
        .tenants
        .iter()
        .map(|(name, tenant)| WireTenantTrace {
            tenant: name.clone(),
            queue_wait_p50_ns: tenant.queue_wait.quantile(0.5).as_nanos() as u64,
            queue_wait_p99_ns: tenant.queue_wait.quantile(0.99).as_nanos() as u64,
            execute_p50_ns: tenant.execute.quantile(0.5).as_nanos() as u64,
            execute_p99_ns: tenant.execute.quantile(0.99).as_nanos() as u64,
            respond_p50_ns: tenant.respond.quantile(0.5).as_nanos() as u64,
            respond_p99_ns: tenant.respond.quantile(0.99).as_nanos() as u64,
            exemplars: exemplars
                .remove(name)
                .unwrap_or_default()
                .into_iter()
                .map(wire_exemplar)
                .collect(),
        })
        .collect();
    // Tenants whose only footprint is an exemplar (no finished stage
    // histograms yet) still travel.
    for (name, rest) in exemplars {
        tenants.push(WireTenantTrace {
            tenant: name,
            exemplars: rest.into_iter().map(wire_exemplar).collect(),
            ..WireTenantTrace::default()
        });
    }
    tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    WireTrace {
        written: ring.written,
        dropped: ring.dropped,
        events,
        tenants,
    }
}

fn wire_exemplar(exemplar: TraceExemplar) -> WireExemplar {
    WireExemplar {
        trace: exemplar.trace.0,
        total_ns: exemplar.total.as_nanos() as u64,
        stages: exemplar
            .stages
            .iter()
            .map(|&(stage, at)| WireStage {
                stage: stage.code(),
                arg: stage.arg(),
                at_ns: at.as_nanos() as u64,
            })
            .collect(),
    }
}

/// Registers a freshly opened/resumed session under a door-assigned id
/// and builds its `SessionOpened` reply.
fn register_session(conn: &mut Conn, session: TrackerSession) -> Response {
    let id = conn.next_session;
    conn.next_session += 1;
    let reply = Response::SessionOpened {
        session: id,
        version: session.version(),
        frames: session.frames(),
        durable: session.durable_id(),
    };
    conn.sessions.insert(id, session);
    reply
}

/// Seals a reply frame. A record over the frame bound is downgraded to
/// an `Error` reply on the same correlation id — the peer would discard
/// the oversized frame unread anyway, so it gets a diagnosable refusal
/// instead. Error replies themselves are a status byte plus a short
/// message, far below the bound, so the fallback encode cannot fail.
fn seal_reply(reply: Response, id: u64, metrics: &ServeMetrics) -> Vec<u8> {
    match reply.encode(id) {
        Ok(frame) => frame,
        Err(e) => {
            metrics.record_wire_error(WireErrorKind::Rejected);
            Response::Error {
                status: WireStatus::BadRequest,
                message: e.to_string(),
            }
            .encode(id)
            .expect("error replies fit the frame bound")
        }
    }
}

fn unknown_session(session: u64, id: u64, metrics: &ServeMetrics) -> Vec<u8> {
    metrics.record_wire_error(WireErrorKind::Rejected);
    let reply = Response::Error {
        status: WireStatus::UnknownSession,
        message: format!("session {session} is not open on this connection"),
    };
    seal_reply(reply, id, metrics)
}

fn error_reply(error: &eigenmaps_serve::ServeError, id: u64, metrics: &ServeMetrics) -> Vec<u8> {
    metrics.record_wire_error(WireErrorKind::Rejected);
    let (status, message) = status_of(error);
    seal_reply(Response::Error { status, message }, id, metrics)
}

fn record_wire_error(metrics: &ServeMetrics, error: &WireError) {
    let kind = match error {
        WireError::Oversized { .. } => WireErrorKind::Oversized,
        WireError::Corrupt { .. } => WireErrorKind::Corrupt,
        WireError::Malformed { .. } => WireErrorKind::Malformed,
        WireError::UnknownKind { .. } => WireErrorKind::UnknownKind,
    };
    metrics.record_wire_error(kind);
}
