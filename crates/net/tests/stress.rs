//! Multi-client TCP churn against one door: concurrent clients
//! connecting, submitting, streaming and vanishing mid-flight, all
//! seeded for reproducibility. `EIGENMAPS_STRESS=1` widens the sweep —
//! that is the CI network lane.
//!
//! Invariants per schedule:
//! * every awaited response is bitwise-identical to the pinned
//!   artifact's sequential reconstruction;
//! * abandoned connections (dropped with responses in flight) leak
//!   nothing — the connection gauge returns to zero after the churn and
//!   a fresh client still gets correct answers;
//! * the door thread never panics.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eigenmaps_core::prelude::*;
use eigenmaps_net::prelude::*;
use eigenmaps_serve::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stress() -> bool {
    std::env::var("EIGENMAPS_STRESS").is_ok_and(|v| v == "1")
}

struct Fleet {
    registry: Arc<DeploymentRegistry>,
    names: [&'static str; 2],
    deployments: [Arc<Deployment>; 2],
    frames: [Vec<Vec<f64>>; 2],
}

fn fleet() -> Fleet {
    let names = ["sku-a", "sku-b"];
    let registry = Arc::new(DeploymentRegistry::new());
    let mut deployments = Vec::new();
    let mut frames = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        let maps: Vec<ThermalMap> = (0..40)
            .map(|t| {
                let a = (t as f64 / (4.0 + idx as f64)).sin();
                ThermalMap::from_fn(7, 6, |r, c| {
                    47.0 + a * (r + idx * c) as f64 + c as f64 * 0.1
                })
            })
            .collect();
        let ens = MapEnsemble::from_maps(&maps).unwrap();
        let deployment = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 2 + idx })
            .sensors(4 + idx)
            .design()
            .unwrap();
        registry.publish(name, deployment.clone());
        let tenant_frames: Vec<Vec<f64>> = (0..12)
            .map(|t| {
                let mut readings = deployment.sensors().sample(&ens.map(t));
                for (i, x) in readings.iter_mut().enumerate() {
                    *x += ((t * 13 + i * 7) as f64 * 0.37).sin() * 0.04;
                }
                readings
            })
            .collect();
        deployments.push(Arc::new(deployment));
        frames.push(tenant_frames);
    }
    Fleet {
        registry,
        names,
        deployments: [Arc::clone(&deployments[0]), Arc::clone(&deployments[1])],
        frames: [frames.remove(0), frames.remove(0)],
    }
}

/// One churn schedule: `clients` worker threads hammer the same door,
/// each making seeded choices — tenant, batch vs session traffic, how
/// much of the exchange to finish before abandoning the socket.
fn churn_schedule(seed: u64, clients: usize, rounds: usize) {
    let fleet = fleet();
    let policy = BatchPolicy {
        max_batch_frames: 48,
        max_batch_requests: 8,
        max_delay: Duration::from_micros(500),
        ..BatchPolicy::default()
    };
    let server = Arc::new(Server::with_policy(Arc::clone(&fleet.registry), 2, policy));
    let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    let addr = door.local_addr();
    let handle = door.handle();
    let door_thread = std::thread::spawn(move || door.run());

    let truth: [Arc<Vec<ThermalMap>>; 2] = [
        Arc::new(
            fleet.deployments[0]
                .reconstruct_batch(&fleet.frames[0])
                .unwrap(),
        ),
        Arc::new(
            fleet.deployments[1]
                .reconstruct_batch(&fleet.frames[1])
                .unwrap(),
        ),
    ];

    let mut workers = Vec::new();
    for worker in 0..clients as u64 {
        let names = fleet.names;
        let frames = [fleet.frames[0].clone(), fleet.frames[1].clone()];
        let truth = [Arc::clone(&truth[0]), Arc::clone(&truth[1])];
        let registry = Arc::clone(&fleet.registry);
        workers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(worker));
            for _ in 0..rounds {
                let tenant = rng.gen_range(0..2u64) as usize;
                match rng.gen_range(0..4u32) {
                    // Full, polite batch exchange — verified bitwise.
                    0 | 1 => {
                        let mut client = Client::connect(addr).expect("connect");
                        let (_, maps) = client
                            .submit_batch(names[tenant], frames[tenant].clone())
                            .expect("batch");
                        for (i, map) in maps.iter().enumerate() {
                            assert_eq!(
                                map.as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                truth[tenant][i]
                                    .as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                "tenant {tenant} frame {i} diverged over TCP"
                            );
                        }
                    }
                    // Session traffic verified against an inline
                    // reference; sometimes abandoned mid-stream.
                    2 => {
                        let mut client = Client::connect(addr).expect("connect");
                        let gain = 0.5 + 0.4 * (worker as f64 / clients.max(1) as f64);
                        let mut reference =
                            TrackerSession::open(&registry, names[tenant], gain).unwrap();
                        let info = client.open_session(names[tenant], gain).expect("open");
                        let steps = rng.gen_range(1..(frames[tenant].len() as u64 + 1)) as usize;
                        for readings in &frames[tenant][..steps] {
                            let want = reference.step(readings).unwrap();
                            let got = client.step(info.session, readings.clone()).expect("step");
                            assert_eq!(
                                got.as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                want.as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                "session step diverged over TCP"
                            );
                        }
                        if rng.gen_bool(0.5) {
                            // Vanish with the session open.
                            drop(client);
                        } else {
                            client.close_session(info.session).expect("close");
                        }
                    }
                    // Fire-and-vanish: submissions abandoned with the
                    // responses in flight.
                    _ => {
                        let mut raw = TcpStream::connect(addr).expect("connect");
                        let burst = rng.gen_range(1..4u64);
                        for i in 0..burst {
                            let request = Request::SubmitBatch {
                                deployment: names[tenant].to_string(),
                                frames: frames[tenant].clone(),
                            };
                            if raw.write_all(&request.encode(i + 1)).is_err() {
                                break;
                            }
                        }
                        drop(raw);
                    }
                }
            }
        }));
    }
    for worker in workers {
        worker.join().expect("worker thread panicked");
    }

    // Nothing leaks: once the abandoned sockets are reaped the
    // connection gauge returns to zero and one fresh exchange still
    // round-trips bitwise.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.metrics().wire.connections_open == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leaked connections: {}",
            server.metrics().wire.connections_open
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut client = Client::connect(addr).expect("post-churn connect");
    let (_, maps) = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .expect("post-churn batch");
    for (i, map) in maps.iter().enumerate() {
        assert_eq!(
            map.as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            truth[0][i]
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "post-churn frame {i} diverged"
        );
    }
    drop(client);

    handle.shutdown();
    door_thread.join().expect("door thread panicked");
}

#[test]
fn tcp_churn_under_seeded_schedules() {
    let (seeds, clients, rounds) = if stress() { (6, 6, 8) } else { (2, 3, 4) };
    for seed in 0..seeds {
        churn_schedule(seed, clients, rounds);
    }
}
