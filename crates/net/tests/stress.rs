//! Multi-client TCP churn against one door: concurrent clients
//! connecting, submitting, streaming and vanishing mid-flight, all
//! seeded for reproducibility. `EIGENMAPS_STRESS=1` widens the sweep —
//! that is the CI network lane.
//!
//! Invariants per schedule:
//! * every awaited response is bitwise-identical to the pinned
//!   artifact's sequential reconstruction;
//! * abandoned connections (dropped with responses in flight) leak
//!   nothing — the connection gauge returns to zero after the churn and
//!   a fresh client still gets correct answers;
//! * the door thread never panics.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eigenmaps_core::prelude::*;
use eigenmaps_net::prelude::*;
use eigenmaps_serve::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stress() -> bool {
    std::env::var("EIGENMAPS_STRESS").is_ok_and(|v| v == "1")
}

struct Fleet {
    registry: Arc<DeploymentRegistry>,
    names: [&'static str; 2],
    deployments: [Arc<Deployment>; 2],
    frames: [Vec<Vec<f64>>; 2],
}

fn fleet() -> Fleet {
    let names = ["sku-a", "sku-b"];
    let registry = Arc::new(DeploymentRegistry::new());
    let mut deployments = Vec::new();
    let mut frames = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        let maps: Vec<ThermalMap> = (0..40)
            .map(|t| {
                let a = (t as f64 / (4.0 + idx as f64)).sin();
                ThermalMap::from_fn(7, 6, |r, c| {
                    47.0 + a * (r + idx * c) as f64 + c as f64 * 0.1
                })
            })
            .collect();
        let ens = MapEnsemble::from_maps(&maps).unwrap();
        let deployment = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 2 + idx })
            .sensors(4 + idx)
            .design()
            .unwrap();
        registry.publish(name, deployment.clone());
        let tenant_frames: Vec<Vec<f64>> = (0..12)
            .map(|t| {
                let mut readings = deployment.sensors().sample(&ens.map(t));
                for (i, x) in readings.iter_mut().enumerate() {
                    *x += ((t * 13 + i * 7) as f64 * 0.37).sin() * 0.04;
                }
                readings
            })
            .collect();
        deployments.push(Arc::new(deployment));
        frames.push(tenant_frames);
    }
    Fleet {
        registry,
        names,
        deployments: [Arc::clone(&deployments[0]), Arc::clone(&deployments[1])],
        frames: [frames.remove(0), frames.remove(0)],
    }
}

/// One churn schedule: `clients` worker threads hammer the same door,
/// each making seeded choices — tenant, batch vs session traffic, how
/// much of the exchange to finish before abandoning the socket.
fn churn_schedule(seed: u64, clients: usize, rounds: usize) {
    let fleet = fleet();
    let policy = BatchPolicy {
        max_batch_frames: 48,
        max_batch_requests: 8,
        max_delay: Duration::from_micros(500),
        ..BatchPolicy::default()
    };
    let server = Arc::new(Server::with_policy(Arc::clone(&fleet.registry), 2, policy));
    let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    let addr = door.local_addr();
    let handle = door.handle();
    let door_thread = std::thread::spawn(move || door.run());

    let truth: [Arc<Vec<ThermalMap>>; 2] = [
        Arc::new(
            fleet.deployments[0]
                .reconstruct_batch(&fleet.frames[0])
                .unwrap(),
        ),
        Arc::new(
            fleet.deployments[1]
                .reconstruct_batch(&fleet.frames[1])
                .unwrap(),
        ),
    ];

    let mut workers = Vec::new();
    for worker in 0..clients as u64 {
        let names = fleet.names;
        let frames = [fleet.frames[0].clone(), fleet.frames[1].clone()];
        let truth = [Arc::clone(&truth[0]), Arc::clone(&truth[1])];
        let registry = Arc::clone(&fleet.registry);
        workers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(worker));
            for _ in 0..rounds {
                let tenant = rng.gen_range(0..2u64) as usize;
                match rng.gen_range(0..4u32) {
                    // Full, polite batch exchange — verified bitwise.
                    0 | 1 => {
                        let mut client = Client::connect(addr).expect("connect");
                        let maps = client
                            .submit_batch(names[tenant], frames[tenant].clone())
                            .expect("batch")
                            .maps;
                        for (i, map) in maps.iter().enumerate() {
                            assert_eq!(
                                map.as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                truth[tenant][i]
                                    .as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                "tenant {tenant} frame {i} diverged over TCP"
                            );
                        }
                    }
                    // Session traffic verified against an inline
                    // reference; sometimes abandoned mid-stream.
                    2 => {
                        let mut client = Client::connect(addr).expect("connect");
                        let gain = 0.5 + 0.4 * (worker as f64 / clients.max(1) as f64);
                        let mut reference =
                            TrackerSession::open(&registry, names[tenant], gain).unwrap();
                        let info = client.open_session(names[tenant], gain).expect("open");
                        let steps = rng.gen_range(1..(frames[tenant].len() as u64 + 1)) as usize;
                        for readings in &frames[tenant][..steps] {
                            let want = reference.step(readings).unwrap();
                            let got = client.step(info.session, readings.clone()).expect("step");
                            assert_eq!(
                                got.as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                want.as_slice()
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect::<Vec<_>>(),
                                "session step diverged over TCP"
                            );
                        }
                        if rng.gen_bool(0.5) {
                            // Vanish with the session open.
                            drop(client);
                        } else {
                            client.close_session(info.session).expect("close");
                        }
                    }
                    // Fire-and-vanish: submissions abandoned with the
                    // responses in flight.
                    _ => {
                        let mut raw = TcpStream::connect(addr).expect("connect");
                        let burst = rng.gen_range(1..4u64);
                        for i in 0..burst {
                            let request = Request::SubmitBatch {
                                deployment: names[tenant].to_string(),
                                frames: frames[tenant].clone(),
                            };
                            let frame = request.encode(i + 1).expect("encodes");
                            if raw.write_all(&frame).is_err() {
                                break;
                            }
                        }
                        drop(raw);
                    }
                }
            }
        }));
    }
    for worker in workers {
        worker.join().expect("worker thread panicked");
    }

    // Nothing leaks: once the abandoned sockets are reaped the
    // connection gauge returns to zero and one fresh exchange still
    // round-trips bitwise.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.metrics().wire.connections_open == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leaked connections: {}",
            server.metrics().wire.connections_open
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut client = Client::connect(addr).expect("post-churn connect");
    let maps = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .expect("post-churn batch")
        .maps;
    for (i, map) in maps.iter().enumerate() {
        assert_eq!(
            map.as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            truth[0][i]
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "post-churn frame {i} diverged"
        );
    }
    drop(client);

    handle.shutdown();
    door_thread.join().expect("door thread panicked");
}

#[test]
fn tcp_churn_under_seeded_schedules() {
    let (seeds, clients, rounds) = if stress() { (6, 6, 8) } else { (2, 3, 4) };
    for seed in 0..seeds {
        churn_schedule(seed, clients, rounds);
    }
}

// ---------------------------------------------------------------------------
// Hard-kill durability: a real server process SIGKILLed with live traffic
// and background checkpoints in flight, restarted on the same store
// directory, must hydrate and continue every stream bitwise.
// ---------------------------------------------------------------------------

/// Kills the child on drop so a failed assertion never leaks a server
/// process past the test run.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Re-invokes this test binary as a server process: `killable_server`
/// below boots on `dir`, prints its port, and serves until killed.
fn spawn_server(dir: &std::path::Path) -> (ChildGuard, std::net::SocketAddr) {
    use std::io::BufRead;
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["killable_server", "--exact", "--nocapture"])
        .env("EIGENMAPS_KILLABLE_DIR", dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn server process");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut guard = ChildGuard(child);
    let mut port = None;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.expect("read child stdout");
        // The harness prints "test killable_server ... " with no newline
        // before the test body runs, so the marker lands mid-line.
        if let Some(pos) = line.find("PORT=") {
            port = Some(line[pos + 5..].trim().parse::<u16>().expect("port number"));
            break;
        }
    }
    let port = port.unwrap_or_else(|| {
        let status = guard.0.wait();
        panic!("server process exited without announcing a port: {status:?}")
    });
    // The reader thread owning the pipe ends here; the child keeps
    // serving (EPIPE on its captured stdout is harmless).
    (guard, std::net::SocketAddr::from(([127, 0, 0, 1], port)))
}

/// The server side of the kill test, driven only via the env var: boots
/// a `Server`, hydrates the store directory (cold boot publishes the
/// fleet; a restart republishes from disk), parks recovered sessions in
/// the door's orphan pool, announces its port, and serves until killed.
#[test]
fn killable_server() {
    let Some(dir) = std::env::var_os("EIGENMAPS_KILLABLE_DIR") else {
        return;
    };
    let fleet = fleet();
    let registry = Arc::new(DeploymentRegistry::new());
    let server = Arc::new(Server::new(Arc::clone(&registry), 2));
    let hydration = server
        .hydrate(&dir, Duration::from_millis(25))
        .expect("hydrate store directory");
    if hydration.report.deployments == 0 {
        for (idx, name) in fleet.names.iter().enumerate() {
            registry.publish(name, (*fleet.deployments[idx]).clone());
        }
    }
    let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    door.adopt(hydration.sessions);
    println!("PORT={}", door.local_addr().port());
    std::io::stdout().flush().ok();
    door.run();
}

/// One kill cycle: open a session over TCP, step it with live bitwise
/// verification, wait for an on-disk checkpoint to reference it, keep
/// stepping so the SIGKILL races the 25 ms checkpoint cadence, kill,
/// restart on the same directory, attach by durable id, and continue the
/// stream — every post-restart step bitwise-identical to an unbroken
/// reference replayed to the checkpointed frame count.
fn kill_restart_cycle(cycle: u64, head: usize, mid: usize) {
    use eigenmaps_core::codec::StoreManifest;

    let fleet = fleet();
    let dir = std::env::temp_dir().join(format!("eigenmaps-kill-{}-{cycle}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (first, addr) = spawn_server(&dir);

    let gain = 0.7;
    let tenant = (cycle % 2) as usize;
    let name = fleet.names[tenant];
    let frames = &fleet.frames[tenant];
    assert!(head <= mid && mid < frames.len());

    let mut client = Client::connect(addr).expect("connect");
    let mut reference = TrackerSession::open(&fleet.registry, name, gain).expect("reference");
    let info = client.open_session(name, gain).expect("open");
    assert!(info.durable > 0, "hydrated server assigns durable ids");

    let verify_step =
        |client: &mut Client, reference: &mut TrackerSession, session: u64, readings: &Vec<f64>| {
            let want = reference.step(readings).unwrap();
            let got = client.step(session, readings.clone()).expect("step");
            assert_eq!(
                got.as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                want.as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "live step diverged over TCP"
            );
        };
    for readings in &frames[..head] {
        verify_step(&mut client, &mut reference, info.session, readings);
    }

    // Wait until some background checkpoint has committed a manifest
    // referencing this session, so the restart has something to hydrate.
    let manifest_path = dir.join("manifest.emstore");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let referenced = std::fs::read(&manifest_path)
            .ok()
            .and_then(|bytes| StoreManifest::from_bytes(&bytes).ok())
            .is_some_and(|m| m.sessions.iter().any(|e| e.id == info.durable));
        if referenced {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint referenced the session within 10s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // More live steps so the kill lands with checkpoints in flight.
    for readings in &frames[head..mid] {
        verify_step(&mut client, &mut reference, info.session, readings);
    }
    drop(client);
    drop(first); // SIGKILL — no shutdown handshake, no final checkpoint.

    let (second, addr) = spawn_server(&dir);
    let mut client = Client::connect(addr).expect("reconnect");

    // The catalog came back from disk, not from a republish.
    let catalog = client.catalog().expect("catalog");
    for name in fleet.names {
        assert!(
            catalog
                .iter()
                .any(|(n, versions)| n == name && versions == &[1]),
            "deployment {name} missing after hydration: {catalog:?}"
        );
    }

    // Attach by durable id: the stream continues from whatever frame the
    // last committed checkpoint captured — old-or-new, never torn.
    let resumed = client.attach(info.durable).expect("attach");
    assert_eq!(resumed.version, info.version);
    let at = resumed.frames as usize;
    assert!(at <= mid, "resumed past the frames ever served");
    let mut reference = TrackerSession::open(&fleet.registry, name, gain).expect("reference");
    for readings in &frames[..at] {
        reference.step(readings).expect("replay");
    }
    for readings in &frames[at..] {
        verify_step(&mut client, &mut reference, resumed.session, readings);
    }

    // A durable id claims at most once per restart.
    assert!(
        client.attach(info.durable).is_err(),
        "second attach of the same durable id must be refused"
    );

    drop(client);
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_kill_nine_then_bitwise_continuation() {
    let cycles: u64 = if stress() { 3 } else { 1 };
    for cycle in 0..cycles {
        let head = 3 + (cycle as usize % 3);
        let mid = 9;
        kill_restart_cycle(cycle, head, mid);
    }
}
