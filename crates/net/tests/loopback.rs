//! End-to-end loopback tests for the `EMWIRE1` TCP edge: bitwise parity
//! with the in-process path, durable sessions across a server restart,
//! hostile-bytes robustness, mid-flight disconnects, and the wire
//! metrics surface.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use eigenmaps_core::prelude::*;
use eigenmaps_net::prelude::*;
use eigenmaps_serve::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two tenants with distinct bases (a cross-tenant mixup would change
/// answers), plus per-tenant request frames and raw artifact bytes.
struct Fleet {
    registry: Arc<DeploymentRegistry>,
    names: [&'static str; 2],
    deployments: [Arc<Deployment>; 2],
    frames: [Vec<Vec<f64>>; 2],
    artifacts: [Vec<u8>; 2],
}

fn fleet() -> Fleet {
    let names = ["sku-a", "sku-b"];
    let registry = Arc::new(DeploymentRegistry::new());
    let mut deployments = Vec::new();
    let mut frames = Vec::new();
    let mut artifacts = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        let maps: Vec<ThermalMap> = (0..48)
            .map(|t| {
                let a = (t as f64 / (4.0 + idx as f64)).sin();
                let b = (t as f64 / 3.3).cos();
                ThermalMap::from_fn(8, 7, |r, c| 48.0 + a * (r + idx * c) as f64 - b * c as f64)
            })
            .collect();
        let ens = MapEnsemble::from_maps(&maps).unwrap();
        let deployment = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 2 + idx })
            .sensors(5 + idx)
            .design()
            .unwrap();
        registry.publish(name, deployment.clone());
        let tenant_frames: Vec<Vec<f64>> = (0..16)
            .map(|t| {
                let mut readings = deployment.sensors().sample(&ens.map(t));
                for (i, x) in readings.iter_mut().enumerate() {
                    *x += ((t * 17 + i * 5) as f64 * 0.41).sin() * 0.05;
                }
                readings
            })
            .collect();
        artifacts.push(deployment.to_bytes());
        deployments.push(Arc::new(deployment));
        frames.push(tenant_frames);
    }
    Fleet {
        registry,
        names,
        deployments: [Arc::clone(&deployments[0]), Arc::clone(&deployments[1])],
        frames: [frames.remove(0), frames.remove(0)],
        artifacts: [artifacts.remove(0), artifacts.remove(0)],
    }
}

/// Binds a door for `server` and runs its loop on a helper thread.
fn spawn_door(server: Arc<Server>) -> (SocketAddr, DoorHandle, JoinHandle<()>) {
    spawn_door_with(server, NetConfig::default())
}

fn spawn_door_with(
    server: Arc<Server>,
    config: NetConfig,
) -> (SocketAddr, DoorHandle, JoinHandle<()>) {
    let door = NetServer::bind_with("127.0.0.1:0", server, config).expect("bind loopback");
    let addr = door.local_addr();
    let handle = door.handle();
    let join = std::thread::spawn(move || door.run());
    (addr, handle, join)
}

fn assert_bitwise(got: &ThermalMap, want: &ThermalMap, context: &str) {
    assert_eq!(got.rows(), want.rows(), "{context}: rows");
    assert_eq!(got.cols(), want.cols(), "{context}: cols");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{context}: cell {i} differs ({g} vs {w})"
        );
    }
}

#[test]
fn batch_over_tcp_is_bitwise_identical_to_in_process() {
    let fleet = fleet();
    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 2));
    let (addr, handle, join) = spawn_door(Arc::clone(&server));

    let mut client = Client::connect(addr).expect("connect");
    for tenant in 0..2 {
        let truth = fleet.deployments[tenant]
            .reconstruct_batch(&fleet.frames[tenant])
            .unwrap();
        let in_process = {
            let mut ticket = None;
            let t = server
                .try_submit(ServeRequest::new(
                    fleet.names[tenant],
                    fleet.frames[tenant].clone(),
                ))
                .unwrap();
            ticket.replace(t);
            ticket.take().unwrap().wait().unwrap()
        };
        let reply = client
            .submit_batch(fleet.names[tenant], fleet.frames[tenant].clone())
            .expect("batch over TCP");
        assert_eq!(reply.version, 1);
        assert!(!reply.degraded, "no brownout: full fidelity");
        let over_wire = reply.maps;
        assert_eq!(over_wire.len(), truth.len());
        for (i, map) in over_wire.iter().enumerate() {
            assert_bitwise(map, &truth[i], "wire vs sequential truth");
            assert_bitwise(map, &in_process[i], "wire vs in-process server");
        }
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn publish_and_catalog_travel_the_wire() {
    let fleet = fleet();
    // Fresh empty registry: everything arrives over the socket.
    let registry = Arc::new(DeploymentRegistry::new());
    let server = Arc::new(Server::new(Arc::clone(&registry), 1));
    let (addr, handle, join) = spawn_door(server);

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.catalog().unwrap().is_empty());
    let v = client
        .publish(fleet.names[0], fleet.artifacts[0].clone())
        .expect("publish over TCP");
    assert_eq!(v, 1);
    let v2 = client
        .publish(fleet.names[0], fleet.artifacts[0].clone())
        .unwrap();
    assert_eq!(v2, 2);
    let catalog = client.catalog().unwrap();
    assert_eq!(catalog, vec![(fleet.names[0].to_string(), vec![1, 2])]);

    // Garbage artifact bytes are a typed, non-retryable refusal.
    let err = client.publish("junk", vec![0xAB; 40]).unwrap_err();
    match &err {
        NetError::Server { status, .. } => assert_eq!(*status, WireStatus::BadRequest),
        other => panic!("expected a server error, got {other:?}"),
    }
    assert!(!err.is_retryable());

    // And the batch served against the published artifact matches the
    // local reconstruction bit for bit.
    let truth = fleet.deployments[0]
        .reconstruct_batch(&fleet.frames[0])
        .unwrap();
    let maps = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .unwrap()
        .maps;
    for (i, map) in maps.iter().enumerate() {
        assert_bitwise(map, &truth[i], "post-publish batch");
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn session_survives_snapshot_server_restart_and_resume_over_the_wire() {
    let fleet = fleet();
    let gain = 0.8;
    // Inline reference tracker: the bitwise ground truth for every step.
    let mut reference = TrackerSession::open(&fleet.registry, fleet.names[0], gain).unwrap();

    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 2));
    let (addr, handle, join) = spawn_door(server);
    let mut client = Client::connect(addr).expect("connect");

    let info = client.open_session(fleet.names[0], gain).expect("open");
    assert_eq!(info.version, 1);
    assert_eq!(info.frames, 0);
    for readings in &fleet.frames[0][..8] {
        let want = reference.step(readings).unwrap();
        let got = client.step(info.session, readings.clone()).expect("step");
        assert_bitwise(&got, &want, "pre-restart step");
    }
    let snapshot = client.snapshot(info.session).expect("snapshot");
    client.close_session(info.session).expect("close");
    handle.shutdown();
    join.join().unwrap();

    // "Restart": a brand-new registry and server process, republished
    // from the same artifact bytes, behind a brand-new door.
    let registry = Arc::new(DeploymentRegistry::new());
    registry
        .publish_bytes(fleet.names[0], &fleet.artifacts[0])
        .unwrap();
    let server = Arc::new(Server::new(Arc::clone(&registry), 2));
    let (addr, handle, join) = spawn_door(server);
    let mut client = Client::connect(addr).expect("reconnect");

    let resumed = client.resume(snapshot).expect("resume over TCP");
    assert_eq!(resumed.frames, 8, "resumed session remembers its frames");
    for readings in &fleet.frames[0][8..] {
        let want = reference.step(readings).unwrap();
        let got = client
            .step(resumed.session, readings.clone())
            .expect("step");
        assert_bitwise(&got, &want, "post-restart step");
    }
    client.close_session(resumed.session).unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn corrupt_and_oversized_frames_reject_without_tearing_down_the_connection() {
    let fleet = fleet();
    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 1));
    let config = NetConfig {
        max_frame_bytes: 64 * 1024,
        ..NetConfig::default()
    };
    let (addr, handle, join) = spawn_door_with(Arc::clone(&server), config);

    // Raw socket: speak the protocol by hand so we can lie on purpose.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut frames = FrameBuffer::new(eigenmaps_net::MAX_FRAME_BYTES);
    let read_reply = |raw: &mut TcpStream, frames: &mut FrameBuffer| -> (u64, Response) {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(outcome) = frames.next_record() {
                let record = outcome.expect("reply frames are well-formed");
                return Response::decode(&record).expect("reply decodes");
            }
            let n = raw.read(&mut chunk).expect("read reply");
            assert_ne!(n, 0, "door must not close the connection");
            frames.extend(&chunk[..n]);
        }
    };

    // 1. A corrupt frame: valid length, flipped payload bit.
    let mut frame = Request::Catalog.encode(11).expect("encodes");
    frame[9] ^= 0x10;
    raw.write_all(&frame).unwrap();
    let (id, reply) = read_reply(&mut raw, &mut frames);
    assert_eq!(id, 0, "corrupt ids are untrusted");
    match reply {
        Response::Error { status, .. } => assert_eq!(status, WireStatus::BadFrame),
        other => panic!("expected an error reply, got {other:?}"),
    }

    // 2. An oversized frame: length prefix over the 64 KiB bound, body
    //    streamed in chunks.
    let len: u32 = 256 * 1024;
    raw.write_all(&len.to_le_bytes()).unwrap();
    for _ in 0..64 {
        raw.write_all(&[0x5A; 4096]).unwrap();
    }
    let (id, reply) = read_reply(&mut raw, &mut frames);
    assert_eq!(id, 0);
    match reply {
        Response::Error { status, message } => {
            assert_eq!(status, WireStatus::BadFrame);
            assert!(message.contains("oversized"), "got: {message}");
        }
        other => panic!("expected an error reply, got {other:?}"),
    }

    // 3. A malformed body with a valid envelope: the id survives.
    let bogus = Response::Closed.encode(23).expect("encodes"); // wrong-direction kind
    raw.write_all(&bogus).unwrap();
    let (id, reply) = read_reply(&mut raw, &mut frames);
    assert_eq!(id, 23, "checksummed ids are echoed");
    assert!(matches!(reply, Response::Error { .. }));

    // 4. The same connection still serves real traffic afterwards.
    raw.write_all(&Request::Catalog.encode(99).expect("encodes"))
        .unwrap();
    let (id, reply) = read_reply(&mut raw, &mut frames);
    assert_eq!(id, 99);
    match reply {
        Response::Catalog { entries } => assert_eq!(entries.len(), 2),
        other => panic!("expected the catalog, got {other:?}"),
    }

    // The wire gauges saw each rejection class.
    let snap = server.metrics();
    assert!(snap.wire.errors_corrupt >= 1);
    assert!(snap.wire.errors_oversized >= 1);
    assert!(snap.wire.errors_unknown_kind >= 1);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn disconnect_with_inflight_responses_never_wedges_the_batcher() {
    let fleet = fleet();
    // A long flush delay so the abandoning client can vanish while its
    // responses are still in flight.
    let policy = BatchPolicy {
        max_batch_frames: 64,
        max_batch_requests: 8,
        max_delay: Duration::from_millis(20),
        ..BatchPolicy::default()
    };
    let server = Arc::new(Server::with_policy(Arc::clone(&fleet.registry), 2, policy));
    let (addr, handle, join) = spawn_door(Arc::clone(&server));

    for round in 0..6 {
        let mut doomed = TcpStream::connect(addr).expect("connect");
        // Several submissions, replies never read; kill the socket while
        // the batcher still owes the responses.
        for i in 0..4u64 {
            let request = Request::SubmitBatch {
                deployment: fleet.names[round % 2].to_string(),
                frames: fleet.frames[round % 2].clone(),
            };
            doomed
                .write_all(&request.encode(i + 1).expect("encodes"))
                .unwrap();
        }
        doomed.flush().unwrap();
        drop(doomed);
    }

    // A well-behaved client still gets bitwise-correct answers — the
    // batcher survived every abandoned responder.
    let mut client = Client::connect(addr).expect("connect");
    for tenant in 0..2 {
        let truth = fleet.deployments[tenant]
            .reconstruct_batch(&fleet.frames[tenant])
            .unwrap();
        let maps = client
            .submit_batch(fleet.names[tenant], fleet.frames[tenant].clone())
            .expect("post-churn batch")
            .maps;
        for (i, map) in maps.iter().enumerate() {
            assert_bitwise(map, &truth[i], "post-churn");
        }
    }

    // Abandoned connections are reaped: only the live client remains
    // (poll briefly — teardown happens on the loop's next pass).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let open = server.metrics().wire.connections_open;
        if open == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "expected 1 open connection, still {open}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metrics_snapshot_travels_the_wire() {
    let fleet = fleet();
    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 1));
    let (addr, handle, join) = spawn_door(server);

    let mut client = Client::connect(addr).expect("connect");
    client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .unwrap();
    let metrics = client.metrics().expect("metrics over TCP");
    assert_eq!(metrics.requests, 1);
    assert_eq!(metrics.frames, fleet.frames[0].len() as u64);
    assert_eq!(metrics.wire.connections_open, 1);
    assert!(metrics.wire.max_connections_open >= 1);
    // The metrics request itself was frame 2 in; its reply is not yet
    // counted in what it reports, so only lower-bound the counters.
    assert!(metrics.wire.frames_in >= 2);
    assert!(metrics.wire.frames_out >= 1);
    assert!(metrics.wire.bytes_in > 0);
    assert!(metrics.wire.bytes_out > 0);
    assert_eq!(metrics.wire.errors_total(), 0);

    handle.shutdown();
    join.join().unwrap();
}

/// Tentpole acceptance: a trace fetched over TCP shows every lifecycle
/// stage of a batch request — admitted, enqueued, coalesced, shard
/// dispatch, kernel completion, response — with monotone timestamps,
/// plus the session-step lifecycle and the slow-request exemplars.
#[test]
fn flight_recorder_trace_travels_the_wire_with_full_lifecycle() {
    let fleet = fleet();
    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 2));
    let (addr, handle, join) = spawn_door(Arc::clone(&server));

    let mut client = Client::connect(addr).expect("connect");
    let maps = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .expect("batch")
        .maps;
    assert_eq!(maps.len(), fleet.frames[0].len());
    let info = client.open_session(fleet.names[1], 0.7).expect("open");
    client
        .step(info.session, fleet.frames[1][0].clone())
        .expect("step");

    let trace = client.trace().expect("trace over TCP");
    assert!(trace.written >= 1, "the ring saw events");
    assert_eq!(trace.dropped, 0, "a near-empty ring drops nothing");

    // Ring events arrive oldest-first; per trace id that is emission
    // order, i.e. lifecycle order.
    let mut per_trace: std::collections::HashMap<u64, Vec<&WireTraceEvent>> =
        std::collections::HashMap::new();
    for event in &trace.events {
        per_trace.entry(event.trace).or_default().push(event);
    }

    // The batch request (the only trace with a Coalesced stage, code 2):
    // every stage present, in order, timestamps monotone.
    let batch = per_trace
        .values()
        .find(|events| events.iter().any(|e| e.stage == 2))
        .expect("the batch trace is in the ring");
    assert_eq!(batch[0].tenant, fleet.names[0]);
    let stages: Vec<u8> = batch.iter().map(|e| e.stage).collect();
    assert_eq!(
        stages,
        vec![0, 1, 2, 3, 4, 5],
        "admitted → enqueued → coalesced → dispatched → kernel-done → responded"
    );
    let coalesced = batch.iter().find(|e| e.stage == 2).unwrap();
    assert_eq!(coalesced.arg, 1, "one request in the coalesced batch");
    assert!(
        batch.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
        "timestamps are monotone within the trace"
    );

    // The session step: same lifecycle minus coalescing.
    let step = per_trace
        .values()
        .find(|events| events[0].tenant == fleet.names[1])
        .expect("the step trace is in the ring");
    let stages: Vec<u8> = step.iter().map(|e| e.stage).collect();
    assert_eq!(stages, vec![0, 1, 3, 4, 5]);
    assert!(step.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));

    // Per-tenant exemplars: the completed batch request is the worst
    // (only) trace for its tenant, with the full six-stage timeline.
    let tenant = trace
        .tenants
        .iter()
        .find(|t| t.tenant == fleet.names[0])
        .expect("tenant entry for the batch tenant");
    let exemplar = tenant.exemplars.first().expect("slow-request exemplar");
    assert!(exemplar.total_ns > 0);
    assert_eq!(exemplar.stages.len(), 6);
    assert!(exemplar.stages.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));

    // The extended metrics reply carries the raw histograms and the
    // (still-zero) per-reason reap counters.
    let metrics = client.metrics().expect("metrics over TCP");
    assert!(metrics.latency_buckets.count >= 1);
    assert_eq!(
        metrics.latency_buckets.buckets.iter().sum::<u64>(),
        metrics.latency_buckets.count,
        "bucket counts add up"
    );
    assert!(metrics.session_latency_buckets.count >= 1);
    assert_eq!(metrics.wire.reaped_idle, 0);
    assert_eq!(metrics.wire.reaped_slow_client, 0);
    assert_eq!(metrics.wire.reaped_drain, 0);

    // Shutting down with this client still connected is a drain reap,
    // metered under its own reason.
    handle.shutdown();
    join.join().unwrap();
    assert_eq!(server.metrics().wire.reaped_drain, 1);
    assert_eq!(server.metrics().wire.reaped_idle, 0);
}

#[test]
fn unknown_names_and_sessions_map_to_typed_statuses() {
    let fleet = fleet();
    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 1));
    let (addr, handle, join) = spawn_door(server);
    let mut client = Client::connect(addr).expect("connect");

    let err = client.submit_batch("nope", vec![vec![0.0; 5]]).unwrap_err();
    match &err {
        NetError::Server { status, .. } => assert_eq!(*status, WireStatus::UnknownDeployment),
        other => panic!("unexpected error: {other:?}"),
    }
    assert!(!err.is_retryable());

    let err = client.step(42, vec![0.0; 5]).unwrap_err();
    match &err {
        NetError::Server { status, .. } => assert_eq!(*status, WireStatus::UnknownSession),
        other => panic!("unexpected error: {other:?}"),
    }
    let err = client.snapshot(42).unwrap_err();
    assert!(matches!(
        err,
        NetError::Server {
            status: WireStatus::UnknownSession,
            ..
        }
    ));

    // Wrong-shaped readings on a real session: a typed request error,
    // and the session stays usable.
    let info = client.open_session(fleet.names[0], 0.5).unwrap();
    let err = client.step(info.session, vec![1.0]).unwrap_err();
    assert!(matches!(err, NetError::Server { .. }));
    let got = client
        .step(info.session, fleet.frames[0][0].clone())
        .expect("session survives a bad step");
    assert_eq!(got.rows(), 8);

    handle.shutdown();
    join.join().unwrap();
}

/// Satellite: seeded malformed-bytes fuzzing against the live event
/// loop. Random garbage, random mutations of valid frames, random
/// split points — the door must answer real traffic afterwards and
/// never panic. `EIGENMAPS_STRESS=1` widens the sweep.
#[test]
fn malformed_byte_fuzzing_never_kills_the_event_loop() {
    let fleet = fleet();
    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 1));
    let config = NetConfig {
        max_frame_bytes: 256 * 1024,
        ..NetConfig::default()
    };
    let (addr, handle, join) = spawn_door_with(Arc::clone(&server), config);

    let seeds: u64 = if std::env::var("EIGENMAPS_STRESS").is_ok_and(|v| v == "1") {
        48
    } else {
        8
    };
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(0x57EED ^ seed);
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        for _ in 0..24 {
            let payload: Vec<u8> = match rng.gen_range(0..3u32) {
                // Pure garbage with a small bounded length prefix.
                0 => {
                    let len = rng.gen_range(0..512u64) as u32;
                    let mut bytes = len.to_le_bytes().to_vec();
                    bytes.extend((0..len).map(|_| rng.next_u64() as u8));
                    bytes
                }
                // A valid frame with random mutations.
                1 => {
                    let mut bytes = Request::SubmitBatch {
                        deployment: fleet.names[0].to_string(),
                        frames: fleet.frames[0][..2].to_vec(),
                    }
                    .encode(rng.next_u64())
                    .expect("encodes");
                    for _ in 0..rng.gen_range(1..6u32) {
                        let at = rng.gen_range(0..bytes.len() as u64) as usize;
                        bytes[at] ^= rng.next_u64() as u8;
                    }
                    bytes
                }
                // Raw noise, no framing discipline at all.
                _ => (0..rng.gen_range(1..256u64))
                    .map(|_| rng.next_u64() as u8)
                    .collect(),
            };
            // Random split points exercise partial-frame reassembly.
            let split = rng.gen_range(0..(payload.len() as u64 + 1)) as usize;
            if raw.write_all(&payload[..split]).is_err() {
                break;
            }
            if raw.write_all(&payload[split..]).is_err() {
                break;
            }
            // Drain whatever error replies came back so the door's write
            // buffer never becomes the bottleneck.
            let mut sink = [0u8; 8192];
            let _ = raw.read(&mut sink);
        }
        drop(raw);
    }

    // The loop is alive and correct: a fresh client round-trips a batch
    // bitwise.
    let truth = fleet.deployments[0]
        .reconstruct_batch(&fleet.frames[0])
        .unwrap();
    let mut client = Client::connect(addr).expect("connect after fuzzing");
    let maps = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .expect("door survived the fuzz")
        .maps;
    for (i, map) in maps.iter().enumerate() {
        assert_bitwise(map, &truth[i], "post-fuzz batch");
    }

    handle.shutdown();
    join.join().unwrap();
}

/// Tentpole acceptance at the network edge: a shed request surfaces as a
/// retryable `DeadlineShed` status, a brownout batch arrives flagged
/// degraded and bitwise-equal to the truncated-basis reconstruction, and
/// the QoS counters travel in the metrics reply.
#[test]
fn shed_and_degraded_serving_surface_over_the_wire() {
    let fleet = fleet();
    let server = Arc::new(Server::new(Arc::clone(&fleet.registry), 2));
    let (addr, handle, join) = spawn_door(Arc::clone(&server));
    let mut client = Client::connect(addr).expect("connect");

    // Phase 1 — shedding. A zero deadline with budgets that never flush:
    // the scheduler's next tick sheds the queued request before any
    // batch forms.
    server
        .set_tenant_policy(
            fleet.names[0],
            Some(BatchPolicy {
                max_batch_frames: 4096,
                max_batch_requests: 1024,
                max_delay: Duration::from_secs(60),
                deadline: Some(Duration::ZERO),
                overrun: OverrunAction::Shed,
                ..BatchPolicy::default()
            }),
        )
        .unwrap();
    let err = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .unwrap_err();
    match &err {
        NetError::Server { status, message } => {
            assert_eq!(*status, WireStatus::DeadlineShed);
            assert!(message.contains("shed"), "got: {message}");
        }
        other => panic!("expected a shed server error, got {other:?}"),
    }
    assert!(err.is_retryable(), "shed requests invite a retry");

    // Phase 2 — brownout degraded serving. A Degrade tier plus a
    // watermark any pending frame crosses: the next batch is served from
    // the keep-1 truncated deployment and flagged.
    server
        .set_tenant_policy(
            fleet.names[0],
            Some(BatchPolicy {
                deadline: Some(Duration::from_secs(60)),
                overrun: OverrunAction::Degrade { keep_k: 1 },
                ..BatchPolicy::default()
            }),
        )
        .unwrap();
    server
        .set_brownout(Some(BrownoutPolicy {
            enter_above: 1,
            exit_below: 0,
        }))
        .unwrap();
    let reply = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .expect("brownout serves, not sheds");
    assert!(reply.degraded, "brownout batches are flagged");
    let truncated = fleet.deployments[0]
        .truncated(1)
        .expect("keep-1 truncation")
        .reconstruct_batch(&fleet.frames[0])
        .unwrap();
    for (i, map) in reply.maps.iter().enumerate() {
        assert_bitwise(map, &truncated[i], "wire vs truncated reconstruction");
    }

    // Phase 3 — the QoS ledger travels the wire.
    let metrics = client.metrics().expect("metrics over TCP");
    assert_eq!(metrics.shed, 1, "one request shed");
    assert_eq!(metrics.degraded, 1, "one request served degraded");
    assert_eq!(metrics.brownout, 1, "still in brownout at snapshot time");
    assert!(metrics.brownout_entries >= 1);
    assert_eq!(
        metrics.requests,
        metrics.errors + 1,
        "the shed ticket completed as a typed error; the degraded one served"
    );

    // Clearing the policy exits brownout: the next batch is exact again.
    server.set_brownout(None).unwrap();
    let reply = client
        .submit_batch(fleet.names[0], fleet.frames[0].clone())
        .expect("post-brownout batch");
    assert!(!reply.degraded, "brownout cleared: full fidelity");
    let truth = fleet.deployments[0]
        .reconstruct_batch(&fleet.frames[0])
        .unwrap();
    for (i, map) in reply.maps.iter().enumerate() {
        assert_bitwise(map, &truth[i], "post-brownout exact batch");
    }

    handle.shutdown();
    join.join().unwrap();
}
