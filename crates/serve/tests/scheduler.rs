//! Deterministic tests for the extracted micro-batching [`Scheduler`]:
//! every scheduling property is exercised with a mock clock (`Duration`
//! arithmetic) and zero threads, zero sleeps — the exact same state
//! machine the live `Server` batcher drives, minus the wall clock.
//!
//! Covered here: fairness rotation (no tenant starved across 10k
//! interleaved submits of skewed traffic), latency-budget expiry at the
//! exact deadline, batch-size recovery over the pre-PR FIFO coalescing
//! baseline on the same two-tenant interleaved trace, version pinning
//! across a mid-queue hot swap, and the QoS tiers: exact-instant
//! deadline shedding for `Shed` tenants next to brownout-degraded
//! serving for `Degrade` tenants, on the same clock.

use std::time::Duration;

use eigenmaps_serve::{
    BatchPolicy, BrownoutPolicy, Decision, FlushReason, OverrunAction, Scheduler, StreamId,
    TenantKey,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn us(micros: u64) -> Duration {
    Duration::from_micros(micros)
}

fn policy(frames: usize, requests: usize, delay: Duration) -> BatchPolicy {
    BatchPolicy {
        max_batch_frames: frames,
        max_batch_requests: requests,
        max_delay: delay,
        ..BatchPolicy::default()
    }
}

#[test]
fn latency_budget_expiry_flushes_sub_size_batch_exactly_at_deadline() {
    let mut sched: Scheduler<u32> = Scheduler::new(policy(256, 64, Duration::from_millis(1)));
    let key = TenantKey::new("lone", 1);
    sched.submit(us(40), key.clone(), 2, 7);
    assert_eq!(sched.next_deadline(), Some(us(1040)));

    // One nanosecond before the deadline: nothing flushes.
    assert!(sched.tick(us(1040) - Duration::from_nanos(1)).is_empty());
    assert_eq!(sched.pending_requests(), 1);

    // Exactly at the deadline: the sub-size batch flushes.
    let decisions = sched.tick(us(1040));
    assert_eq!(decisions.len(), 1);
    let flush = decisions[0].as_batch().unwrap();
    assert_eq!(flush.tenant, key);
    assert_eq!(flush.reason, FlushReason::DeadlineExpired);
    assert_eq!(flush.frames, 2);
    assert_eq!(flush.jobs, vec![7]);
    assert!(sched.is_idle());
    assert_eq!(sched.next_deadline(), None);
}

#[test]
fn fairness_no_tenant_starved_across_10k_interleaved_submits() {
    // Heavily skewed three-tenant traffic (60/30/10), one submit every
    // 10 µs, driven by the seeded shim RNG — fully deterministic.
    const SUBMITS: usize = 10_000;
    const STEP_US: u64 = 10;
    let delay = Duration::from_millis(1);
    let mut sched: Scheduler<(usize, u32)> = Scheduler::new(policy(1 << 20, 8, delay));
    let keys = [
        TenantKey::new("hog", 1),
        TenantKey::new("mid", 1),
        TenantKey::new("meek", 1),
    ];
    let mut rng = StdRng::seed_from_u64(0xFA1);
    let mut submitted = [0u32; 3];
    let mut enqueue_time = vec![Vec::new(); 3];
    let mut decisions = Vec::new();
    for i in 0..SUBMITS {
        let now = us(i as u64 * STEP_US);
        let tenant = match rng.gen_range(0usize..10) {
            0..=5 => 0,
            6..=8 => 1,
            _ => 2,
        };
        let seq = submitted[tenant];
        submitted[tenant] += 1;
        enqueue_time[tenant].push(now);
        sched.submit(now, keys[tenant].clone(), 1, (tenant, seq));
        for d in sched.tick(now) {
            decisions.push((now, d.into_batch().unwrap()));
        }
    }
    // Keep ticking the same 10 µs grid (no further traffic) until every
    // queue has hit its own deadline.
    let mut now = us(SUBMITS as u64 * STEP_US);
    while !sched.is_idle() {
        for d in sched.tick(now) {
            decisions.push((now, d.into_batch().unwrap()));
        }
        now += us(STEP_US);
    }

    // Every submit was flushed, per tenant, in FIFO order.
    let mut flushed = [0u32; 3];
    for (flush_time, d) in &decisions {
        let tenant = keys.iter().position(|k| k == &d.tenant).unwrap();
        for &(t, seq) in &d.jobs {
            assert_eq!(t, tenant, "decision mixed tenants");
            assert_eq!(seq, flushed[tenant], "tenant {tenant} flushed out of order");
            flushed[tenant] += 1;
            // No starvation: every request — including the 10%-traffic
            // tenant's — waited at most its own latency budget. The grid
            // ticks land exactly on every deadline, so the bound is tight.
            let waited = *flush_time - enqueue_time[tenant][seq as usize];
            assert!(
                waited <= delay,
                "tenant {tenant} seq {seq} waited {waited:?} > {delay:?}"
            );
        }
    }
    assert_eq!(flushed, submitted);
    assert_eq!(
        decisions.iter().map(|(_, d)| d.jobs.len()).sum::<usize>(),
        SUBMITS
    );
    // The skewed tenant really did dominate traffic (sanity of the setup).
    assert!(submitted[0] > 4 * submitted[2]);
}

#[test]
fn stale_enqueue_stamp_flushes_on_the_next_tick() {
    // The serving driver stamps jobs with the client's submit time, which
    // can lag the tick clock when the batcher was busy: a job whose
    // latency budget already expired in the channel flushes immediately.
    let mut sched: Scheduler<u32> = Scheduler::new(policy(256, 64, Duration::from_millis(1)));
    sched.submit(us(0), TenantKey::new("late", 1), 1, 0);
    let decisions = sched.tick(us(5_000)); // read 5 ms late
    assert_eq!(decisions.len(), 1);
    assert_eq!(
        decisions[0].as_batch().unwrap().reason,
        FlushReason::DeadlineExpired
    );
    assert!(sched.is_idle());
}

#[test]
fn rotation_round_robins_ready_tenants_within_one_tick() {
    // Alpha has two request-budget batches pending, beta and gamma one
    // each: the rotation must serve beta and gamma between alpha's two.
    let mut sched: Scheduler<u8> = Scheduler::new(policy(1 << 20, 4, Duration::from_millis(1)));
    let (a, b, g) = (
        TenantKey::new("alpha", 1),
        TenantKey::new("beta", 1),
        TenantKey::new("gamma", 1),
    );
    for i in 0..4 {
        sched.submit(Duration::ZERO, a.clone(), 1, i);
    }
    for i in 0..4 {
        sched.submit(Duration::ZERO, b.clone(), 1, i);
        sched.submit(Duration::ZERO, g.clone(), 1, i);
    }
    for i in 4..8 {
        sched.submit(Duration::ZERO, a.clone(), 1, i);
    }
    let order: Vec<String> = sched
        .tick(Duration::ZERO)
        .iter()
        .map(|d| d.as_batch().unwrap().tenant.name.clone())
        .collect();
    assert_eq!(order, vec!["alpha", "beta", "gamma", "alpha"]);
    assert!(sched.is_idle());
}

/// The pre-PR FIFO coalescing discipline, replayed as a pure function:
/// one global pending queue, flushed whenever the next request pins a
/// different artifact than the head, the head's latency budget expires
/// before an arrival, or a size budget fills. Returns the number of
/// batches the trace produced.
fn fifo_baseline_batches(trace: &[(TenantKey, Duration, usize)], policy: &BatchPolicy) -> usize {
    let mut batches = 0usize;
    let mut pending: Vec<(&TenantKey, Duration, usize)> = Vec::new();
    let mut pending_frames = 0usize;
    let mut flush = |pending: &mut Vec<(&TenantKey, Duration, usize)>, frames: &mut usize| {
        if !pending.is_empty() {
            batches += 1;
            pending.clear();
            *frames = 0;
        }
    };
    for (tenant, at, frames) in trace {
        if let Some(&(head, head_at, _)) = pending.first() {
            let expired = head_at
                .checked_add(policy.max_delay)
                .is_some_and(|deadline| deadline <= *at);
            if expired || head != tenant {
                flush(&mut pending, &mut pending_frames);
            }
        }
        pending.push((tenant, *at, *frames));
        pending_frames += frames;
        if pending_frames >= policy.max_batch_frames || pending.len() >= policy.max_batch_requests {
            flush(&mut pending, &mut pending_frames);
        }
    }
    flush(&mut pending, &mut pending_frames);
    batches
}

#[test]
fn batch_size_recovers_at_least_2x_over_fifo_on_interleaved_trace() {
    // Two tenants, strictly alternating single-frame requests every
    // 50 µs — the traffic shape that degraded the FIFO batcher to
    // one-request batches.
    const SUBMITS: usize = 2_000;
    const STEP_US: u64 = 50;
    let policy = policy(1 << 20, 16, Duration::from_millis(2));
    let keys = [TenantKey::new("even", 1), TenantKey::new("odd", 1)];
    let trace: Vec<(TenantKey, Duration, usize)> = (0..SUBMITS)
        .map(|i| (keys[i % 2].clone(), us(i as u64 * STEP_US), 1))
        .collect();

    let mut sched: Scheduler<usize> = Scheduler::new(policy);
    let mut batches = 0usize;
    let mut jobs_flushed = 0usize;
    for (i, (tenant, at, frames)) in trace.iter().enumerate() {
        sched.submit(*at, tenant.clone(), *frames, i);
        for d in sched.tick(*at) {
            batches += 1;
            jobs_flushed += d.as_batch().unwrap().jobs.len();
        }
    }
    let mut now = us(SUBMITS as u64 * STEP_US);
    while !sched.is_idle() {
        for d in sched.tick(now) {
            batches += 1;
            jobs_flushed += d.as_batch().unwrap().jobs.len();
        }
        now += us(STEP_US);
    }
    assert_eq!(jobs_flushed, SUBMITS);

    let fifo_batches = fifo_baseline_batches(&trace, &policy);
    let scheduled_mean = SUBMITS as f64 / batches as f64;
    let fifo_mean = SUBMITS as f64 / fifo_batches as f64;
    // Strict alternation forces the FIFO discipline to flush on every
    // arrival; per-tenant queues recover the full request budget.
    assert!(
        (fifo_mean - 1.0).abs() < 1e-12,
        "FIFO baseline unexpectedly coalesced: mean {fifo_mean}"
    );
    assert!(
        scheduled_mean >= 2.0 * fifo_mean,
        "per-tenant queues reached only {scheduled_mean:.2} requests/batch \
         vs FIFO {fifo_mean:.2} (>= 2x required)"
    );
}

#[test]
fn hot_swap_mid_queue_keeps_version_pinned_queues_separate() {
    // Requests pinned to v1 sit queued when the tenant hot-swaps to v2:
    // the two versions are distinct queues that flush separately, each in
    // its own FIFO order, v1 (older) first.
    let mut sched: Scheduler<(u32, u8)> =
        Scheduler::new(policy(1 << 20, 64, Duration::from_millis(1)));
    let v1 = TenantKey::new("chip", 1);
    let v2 = TenantKey::new("chip", 2);
    for i in 0..3 {
        sched.submit(us(i as u64 * 10), v1.clone(), 2, (1, i));
    }
    // Hot swap: later submits pin version 2.
    for i in 0..3 {
        sched.submit(us(30 + i as u64 * 10), v2.clone(), 2, (2, i));
    }
    assert_eq!(sched.pending_tenants(), 2);
    assert_eq!(sched.tenant_depth(&v1), 3);
    assert_eq!(sched.tenant_depth(&v2), 3);

    // v1's deadline (oldest at t=0) expires first.
    let first = sched.tick(us(1000));
    assert_eq!(first.len(), 1);
    let flush = first[0].as_batch().unwrap();
    assert_eq!(flush.tenant, v1);
    assert_eq!(flush.jobs, vec![(1, 0), (1, 1), (1, 2)]);
    assert_eq!(sched.tenant_depth(&v1), 0);
    assert_eq!(sched.tenant_depth(&v2), 3);

    // v2 flushes at its own deadline, never mixed with v1.
    let second = sched.tick(us(1030));
    assert_eq!(second.len(), 1);
    let flush = second[0].as_batch().unwrap();
    assert_eq!(flush.tenant, v2);
    assert_eq!(flush.jobs, vec![(2, 0), (2, 1), (2, 2)]);
    assert!(sched.is_idle());
}

#[test]
fn stream_backlog_never_delays_batch_deadlines() {
    // A session submits one step per 10 µs grid point — a continuous
    // stream backlog — while a lone batch request waits on its 1 ms
    // latency budget. The batch must still flush exactly at its deadline,
    // and every step must be granted in the same tick it was submitted.
    const STEP_US: u64 = 10;
    let delay = Duration::from_millis(1);
    let mut sched: Scheduler<(char, u32)> = Scheduler::new(policy(1 << 20, 1 << 10, delay));
    let tenant = TenantKey::new("batch", 1);
    let stream = StreamId(1);
    sched.submit(Duration::ZERO, tenant.clone(), 3, ('b', 0));

    let mut batch_flush_time = None;
    let mut steps_granted = 0u32;
    for i in 0..200u32 {
        let now = us(u64::from(i) * STEP_US);
        sched.submit_stream(stream, ('s', i));
        for d in sched.tick(now) {
            match d {
                Decision::Batch(b) => {
                    assert_eq!(b.tenant, tenant);
                    assert_eq!(b.reason, FlushReason::DeadlineExpired);
                    batch_flush_time = Some(now);
                }
                Decision::Step(s) => {
                    assert_eq!(s.job, ('s', steps_granted), "steps in order");
                    steps_granted += 1;
                }
                Decision::Shed(s) => panic!("no deadline policy set, yet shed {s:?}"),
            }
        }
        assert_eq!(
            sched.pending_steps(),
            0,
            "every tick drains the stream lane"
        );
    }
    // The batch flushed exactly on its own deadline (the 1 ms grid point),
    // not an interval later: the stream backlog cost it nothing.
    assert_eq!(batch_flush_time, Some(delay));
    assert_eq!(steps_granted, 200);
    assert!(sched.is_idle());
}

#[test]
fn batch_backlog_never_starves_stream_steps() {
    // A tenant with an always-ready backlog (request budget 1, deep
    // queue) and a stream submitting one step per tick: each tick must
    // grant the step — the rotation guarantees the stream its turn even
    // though the batch tenant could consume every slot.
    let mut sched: Scheduler<(char, u32)> =
        Scheduler::new(policy(1 << 20, 1, Duration::from_secs(1)));
    let tenant = TenantKey::new("hog", 1);
    for i in 0..64u32 {
        sched.submit(Duration::ZERO, tenant.clone(), 1, ('b', i));
    }
    let stream = StreamId(7);
    for i in 0..8u32 {
        let now = us(u64::from(i) * 10);
        sched.submit_stream(stream, ('s', i));
        let decisions = sched.tick(now);
        let step_positions: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter_map(|(pos, d)| d.as_step().map(|_| pos))
            .collect();
        assert_eq!(
            step_positions.len(),
            1,
            "tick {i}: the step was granted exactly once"
        );
        // The step is granted within one rotation of the ready batch
        // lane — second in the 2-lane rotation, never pushed behind the
        // hog's whole backlog.
        assert!(
            step_positions[0] <= 1,
            "tick {i}: step granted at position {} behind the backlog",
            step_positions[0]
        );
    }
}

#[test]
fn weighted_tenant_gets_proportional_grants_without_starvation() {
    // Two-tenant contention under a mock clock: "heavy" carries weight 3,
    // "light" weight 1 (the default). Both start deeply backlogged; while
    // both remain backlogged, the grant sequence must give heavy ~3x the
    // bandwidth — and light must still be granted on every rotation pass
    // (no starvation: never more than `weight` consecutive heavy grants).
    let base = policy(1 << 20, 1, Duration::from_millis(1));
    let mut sched: Scheduler<u32> = Scheduler::new(base);
    sched.set_tenant_policy("heavy", Some(BatchPolicy { weight: 3, ..base }));

    let heavy = TenantKey::new("heavy", 1);
    let light = TenantKey::new("light", 1);
    for i in 0..600u32 {
        sched.submit(Duration::ZERO, heavy.clone(), 1, i);
    }
    for i in 0..200u32 {
        sched.submit(Duration::ZERO, light.clone(), 1, i);
    }

    // One tick drains all ready work; the weight governs the interleaving.
    let grants: Vec<bool> = sched
        .tick(Duration::ZERO)
        .iter()
        .map(|d| d.as_batch().expect("batch traffic only").tenant == heavy)
        .collect();
    assert_eq!(grants.len(), 800);
    assert!(sched.is_idle());

    let mut heavy_total = 0usize;
    let mut light_total = 0usize;
    let mut heavy_run = 0usize;
    for &is_heavy in &grants {
        if is_heavy {
            heavy_total += 1;
            heavy_run += 1;
            assert!(
                heavy_run <= 3,
                "light starved: {heavy_run} consecutive heavy grants"
            );
        } else {
            light_total += 1;
            heavy_run = 0;
            // While both lanes are backlogged, every light grant closes a
            // rotation pass in which heavy took ~3 grants.
            let ratio = heavy_total as f64 / light_total as f64;
            assert!(
                (2.5..=3.5).contains(&ratio),
                "expected ~3x bandwidth at every pass boundary, got \
                 {heavy_total}:{light_total} (ratio {ratio:.2})"
            );
        }
    }
    assert_eq!((heavy_total, light_total), (600, 200));
}

#[test]
fn drain_flushes_all_tenants_without_a_clock() {
    let mut sched: Scheduler<u8> = Scheduler::new(policy(1 << 20, 64, Duration::MAX));
    sched.submit(Duration::ZERO, TenantKey::new("a", 1), 1, 0);
    sched.submit(Duration::ZERO, TenantKey::new("b", 4), 1, 1);
    let decisions = sched.drain();
    assert_eq!(decisions.len(), 2);
    assert!(decisions
        .iter()
        .all(|d| d.as_batch().unwrap().reason == FlushReason::Drain));
    assert!(sched.is_idle());
}

#[test]
fn qos_tiers_shed_and_degrade_on_one_mock_clock() {
    // Premium (Shed at a 100 µs deadline) and bulk (Degrade to keep_k=2
    // under the same deadline, request budget 4) share one scheduler
    // under a brownout band: enter at 8 pending frames, exit at 2.
    // Every instant below is a mock-clock `Duration`; zero sleeps.
    let base = policy(1 << 20, 1 << 10, Duration::from_millis(1));
    let mut sched: Scheduler<u32> = Scheduler::new(base);
    sched.set_tenant_policy(
        "premium",
        Some(BatchPolicy {
            deadline: Some(us(100)),
            overrun: OverrunAction::Shed,
            ..base
        }),
    );
    sched.set_tenant_policy(
        "bulk",
        Some(BatchPolicy {
            max_batch_requests: 4,
            deadline: Some(us(100)),
            overrun: OverrunAction::Degrade { keep_k: 2 },
            ..base
        }),
    );
    sched.set_brownout(Some(BrownoutPolicy {
        enter_above: 8,
        exit_below: 2,
    }));
    let premium = TenantKey::new("premium", 1);
    let bulk = TenantKey::new("bulk", 1);

    // Light load below the watermark: nothing sheds, nothing degrades.
    sched.submit(us(0), premium.clone(), 1, 0);
    sched.submit(us(0), bulk.clone(), 1, 100);
    assert!(sched.tick(us(0)).is_empty());
    assert!(!sched.in_brownout());
    // The shed instant is a wakeup deadline in its own right — tighter
    // than either tenant's 1 ms coalescing budget.
    assert_eq!(sched.next_deadline(), Some(us(100)));

    // One nanosecond shy of the premium deadline: both jobs untouched.
    assert!(sched.tick(us(100) - Duration::from_nanos(1)).is_empty());
    assert_eq!(sched.pending_requests(), 2);

    // Exactly at the deadline instant premium sheds. Bulk never sheds:
    // its job stays queued for its own flush budget.
    let decisions = sched.tick(us(100));
    assert_eq!(decisions.len(), 1);
    let shed = decisions[0].as_shed().unwrap();
    assert_eq!(shed.tenant, premium);
    assert_eq!(shed.deadline, us(100));
    assert_eq!((shed.frames, shed.jobs.as_slice()), (1, &[100 - 100][..]));
    assert_eq!(sched.tenant_depth(&bulk), 1);

    // Bulk's coalescing budget expires at 1 ms. Its deadline blew 900 µs
    // ago, so the flush carries the degrade marker even though the
    // scheduler never entered brownout: coarse on time, not exact late.
    let decisions = sched.tick(us(1_000));
    assert_eq!(decisions.len(), 1);
    let flush = decisions[0].as_batch().unwrap();
    assert_eq!(flush.tenant, bulk);
    assert_eq!(flush.reason, FlushReason::DeadlineExpired);
    assert_eq!(flush.degraded, Some(2));
    assert!(sched.is_idle());
    assert!(!sched.in_brownout());

    // Backlog surge: 8 bulk frames reach the enter watermark. The same
    // tick enters brownout and flushes two request-budget batches, both
    // degraded although no job's deadline has blown yet.
    for i in 0..8u32 {
        sched.submit(us(2_000), bulk.clone(), 1, 200 + i);
    }
    let decisions = sched.tick(us(2_000));
    assert!(sched.in_brownout());
    assert_eq!(decisions.len(), 2);
    for d in &decisions {
        let flush = d.as_batch().unwrap();
        assert_eq!(flush.reason, FlushReason::RequestBudget);
        assert_eq!(flush.degraded, Some(2), "brownout degrades bulk");
        assert_eq!(flush.jobs.len(), 4);
    }
    assert!(sched.is_idle());

    // Brownout is judged once per tick: the drain above leaves pending
    // at 0 (<= exit_below), so the *next* tick exits the mode.
    assert!(sched.tick(us(2_001)).is_empty());
    assert!(!sched.in_brownout());
}

#[test]
fn recorder_sees_the_exact_event_sequence_for_one_coalesced_batch() {
    use eigenmaps_serve::{FlightRecorder, Stage};

    // Mock clock throughout: every timestamp below is the `Duration`
    // handed to the scheduler, so the sequence is exactly reproducible.
    let recorder = FlightRecorder::new(64);
    let mut sched: Scheduler<u32> = Scheduler::new(policy(256, 2, Duration::from_millis(1)));
    sched.set_recorder(recorder.clone());
    let key = TenantKey::new("sku", 1);

    let first = recorder.allocate("sku");
    let second = recorder.allocate("sku");
    sched.submit_traced(us(10), key.clone(), 3, first, 1);
    sched.submit_traced(us(20), key.clone(), 2, second, 2);

    // Two requests fill the batch; the tick coalesces them into one.
    let decisions = sched.tick(us(30));
    assert_eq!(decisions.len(), 1);
    let flush = decisions[0].as_batch().unwrap();
    assert_eq!(flush.jobs, vec![1, 2]);

    assert_eq!(recorder.written(), 4);
    assert_eq!(recorder.dropped(), 0);
    let ring = recorder.snapshot();
    let got: Vec<(u64, Stage, Duration)> = ring
        .events
        .iter()
        .map(|e| (e.trace.0, e.stage, e.at))
        .collect();
    assert_eq!(
        got,
        vec![
            (first.id().0, Stage::Enqueued, us(10)),
            (second.id().0, Stage::Enqueued, us(20)),
            (first.id().0, Stage::Coalesced { requests: 2 }, us(30)),
            (second.id().0, Stage::Coalesced { requests: 2 }, us(30)),
        ],
        "enqueue order, then coalescing in pop order, all on the mock clock"
    );
    assert!(ring.events.iter().all(|e| e.tenant == "sku"));

    // An untraced submit alongside traced ones emits nothing at all —
    // not on enqueue, not when drain coalesces it.
    sched.submit(us(40), key.clone(), 1, 3);
    assert_eq!(sched.drain().len(), 1);
    assert_eq!(recorder.written(), 4);
    assert_eq!(recorder.dropped(), 0);
}
