//! Crash-point fault injection for the durability store.
//!
//! The headline harness kills the store's I/O at **every** mutating
//! syscall boundary (before the op, and mid-write with a torn prefix),
//! restarts on the surviving bytes, and asserts the old-or-new
//! invariant: hydration always recovers a complete previous checkpoint
//! or a complete new one — never a torn hybrid, never a boot failure —
//! and the recovered stream continues bitwise-identically to one that
//! was never interrupted.
//!
//! Every test is deterministic and sleeps zero times: checkpoints are
//! driven explicitly through [`DurabilityHub::checkpoint_now`] and the
//! crash schedule is an exact syscall index, not a timer race.

use std::sync::Arc;
use std::time::Duration;

use eigenmaps_core::codec::STORE_VERSION;
use eigenmaps_core::prelude::*;
use eigenmaps_serve::{
    CrashStyle, DeploymentRegistry, MemIo, ServeError, Server, SnapshotStore, StoreIo,
};

/// Long enough that the batcher never fires a background checkpoint on
/// its own — the tests below own every checkpoint explicitly.
const CADENCE: Duration = Duration::from_secs(3600);
const GAIN: f64 = 0.8;
/// Frames served before the first / second checkpoint of a scenario.
const FIRST: usize = 8;
const SECOND: usize = 12;

/// Designs one deployment over a synthetic two-mode ensemble and
/// pre-samples enough reading frames for every scenario.
fn fixture() -> (Vec<u8>, Vec<Vec<f64>>) {
    let maps: Vec<ThermalMap> = (0..60)
        .map(|t| {
            let a = (t as f64 / 5.0).sin();
            let b = (t as f64 / 3.0).cos();
            ThermalMap::from_fn(8, 8, |r, c| 50.0 + a * r as f64 - b * c as f64)
        })
        .collect();
    let ens = MapEnsemble::from_maps(&maps).expect("ensemble");
    let deployment = Pipeline::new(&ens)
        .basis(BasisSpec::EigenExact { k: 2 })
        .sensors(4)
        .design()
        .expect("design");
    let readings: Vec<Vec<f64>> = (0..=SECOND)
        .map(|t| deployment.sensors().sample(&ens.map(t)))
        .collect();
    (deployment.to_bytes(), readings)
}

fn boot(io: &Arc<MemIo>, artifact: &[u8]) -> Server {
    let registry = Arc::new(DeploymentRegistry::new());
    registry
        .publish_bytes("chip-a", artifact)
        .expect("publish artifact");
    let server = Server::new(registry, 2);
    let store = SnapshotStore::with_io(Arc::<MemIo>::clone(io), 3);
    let hydration = server
        .hydrate_with(store, CADENCE)
        .expect("hydrating an empty (or intact) store succeeds");
    assert_eq!(hydration.report.skipped, 0, "fresh boot skipped nothing");
    server
}

/// One fleet lifetime: boot on `io`, stream a session, checkpoint at
/// [`FIRST`] and [`SECOND`] frames. Checkpoint (and final-drop
/// checkpoint) errors are swallowed — a scheduled crash turns them into
/// plain I/O failures, which is exactly the scenario under test.
fn run_fleet(io: &Arc<MemIo>, artifact: &[u8], readings: &[Vec<f64>]) {
    let server = boot(io, artifact);
    let hub = server.durability().expect("hub installed by hydrate");
    let mut session = server.open_session("chip-a", GAIN).expect("open session");
    for reading in &readings[..FIRST] {
        session.step(reading).expect("steps never touch store io");
    }
    let _ = hub.checkpoint_now();
    for reading in &readings[FIRST..SECOND] {
        session.step(reading).expect("steps never touch store io");
    }
    let _ = hub.checkpoint_now();
    // Server first: its final-drop checkpoint must still see the live
    // session (dropping the session first would deregister it, and the
    // shutdown checkpoint would commit a roster without it).
    drop(server);
    drop(session);
}

fn bits(map: &ThermalMap) -> Vec<u64> {
    map.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// The headline old-or-new sweep: crash at every mutating syscall index
/// the dry run observes, in both styles, then restart and hydrate.
#[test]
fn crash_at_every_syscall_boundary_recovers_old_or_new() {
    let (artifact, readings) = fixture();

    // Dry run fixes the syscall coordinate space.
    let dry = MemIo::new();
    run_fleet(&dry, &artifact, &readings);
    let total = dry.mutating_ops();
    assert!(
        total >= 10,
        "the two checkpoints should cross at least 10 syscall boundaries, saw {total}"
    );

    for op in 0..total {
        for style in [CrashStyle::Before, CrashStyle::Torn] {
            let io = MemIo::new();
            io.schedule_crash(op, style);
            run_fleet(&io, &artifact, &readings);
            assert!(io.crashed(), "op {op} {style:?}: schedule never fired");
            io.revive();

            // Cold start on the surviving bytes.
            let registry = Arc::new(DeploymentRegistry::new());
            let server = Server::new(Arc::clone(&registry), 2);
            let store = SnapshotStore::with_io(Arc::<MemIo>::clone(&io), 3);
            let mut hydration = server
                .hydrate_with(store, CADENCE)
                .expect("hydration never fails on a crash-consistent store");
            assert_eq!(
                hydration.report.skipped, 0,
                "op {op} {style:?}: a crash left a torn entry behind"
            );

            match hydration.sessions.len() {
                // Crashed before the first manifest commit: the store is
                // (still) empty and the catalog came back empty too.
                0 => assert_eq!(
                    hydration.report.deployments, 0,
                    "op {op} {style:?}: catalog without its session roster"
                ),
                1 => {
                    let (durable, mut resumed) = hydration.sessions.pop().expect("one session");
                    assert_eq!(durable, 1, "op {op} {style:?}: durable id drifted");
                    assert_eq!(hydration.report.deployments, 1);
                    let frames = resumed.frames() as usize;
                    assert!(
                        frames == FIRST || frames == SECOND,
                        "op {op} {style:?}: recovered a checkpoint that was never \
                         committed (frames = {frames})"
                    );
                    // Bitwise continuation: the recovered stream must step
                    // exactly like an uninterrupted one replayed to the
                    // same frame.
                    let mut reference =
                        server.open_session("chip-a", GAIN).expect("reference open");
                    for reading in &readings[..frames] {
                        reference.step(reading).expect("reference step");
                    }
                    let want = reference.step(&readings[frames]).expect("reference next");
                    let got = resumed.step(&readings[frames]).expect("resumed next");
                    assert_eq!(
                        bits(&got),
                        bits(&want),
                        "op {op} {style:?}: resumed stream diverged from the \
                         uninterrupted reference"
                    );
                }
                n => panic!("op {op} {style:?}: {n} sessions from a single-session store"),
            }
        }
    }
}

/// Crashing mid-rotation must never lose the *referenced* generation:
/// after many checkpoint rounds (enough to prune) a crash at any
/// boundary of one more round still hydrates to a committed frame count.
#[test]
fn crash_during_rotation_keeps_the_referenced_generation() {
    let (artifact, readings) = fixture();

    // Dry run: many rounds so pruning is active, then measure the ops
    // one extra round costs.
    let dry = MemIo::new();
    let before;
    {
        let server = boot(&dry, &artifact);
        let hub = server.durability().expect("hub");
        let mut session = server.open_session("chip-a", GAIN).expect("open");
        for reading in readings.iter().take(6) {
            session.step(reading).expect("step");
            hub.checkpoint_now().expect("checkpoint");
        }
        before = dry.mutating_ops();
        session.step(&readings[6]).expect("step");
        hub.checkpoint_now().expect("checkpoint");
        drop(server);
        drop(session);
    }
    let total = dry.mutating_ops();
    assert!(total > before, "the extra round must touch the store");

    for op in before..total {
        for style in [CrashStyle::Before, CrashStyle::Torn] {
            let io = MemIo::new();
            io.schedule_crash(op, style);
            {
                let server = boot(&io, &artifact);
                let hub = server.durability().expect("hub");
                let mut session = server.open_session("chip-a", GAIN).expect("open");
                for reading in readings.iter().take(6) {
                    session.step(reading).expect("step");
                    hub.checkpoint_now().expect("pre-crash checkpoints succeed");
                }
                session.step(&readings[6]).expect("step");
                let _ = hub.checkpoint_now();
                drop(server);
                drop(session);
            }
            io.revive();

            let registry = Arc::new(DeploymentRegistry::new());
            let server = Server::new(registry, 2);
            let store = SnapshotStore::with_io(Arc::<MemIo>::clone(&io), 3);
            let mut hydration = server
                .hydrate_with(store, CADENCE)
                .expect("hydration survives a mid-rotation crash");
            assert_eq!(hydration.report.skipped, 0, "op {op} {style:?}");
            let (_, resumed) = hydration.sessions.pop().expect("session survived");
            let frames = resumed.frames();
            assert!(
                frames == 6 || frames == 7,
                "op {op} {style:?}: frames = {frames}, expected the old (6) or new (7) checkpoint"
            );
        }
    }
}

/// A store written by a newer build is refused with a typed error, not
/// silently overwritten (regression for the silent-overwrite hazard).
#[test]
fn hydration_refuses_a_store_written_by_a_newer_build() {
    let io = MemIo::new();
    let mut bytes = b"EMSTORE1".to_vec();
    bytes.extend_from_slice(&(STORE_VERSION + 1).to_le_bytes());
    bytes.extend_from_slice(b"opaque future payload");
    io.write_all("manifest.emstore", &bytes).expect("write");
    io.sync("manifest.emstore").expect("sync");

    let registry = Arc::new(DeploymentRegistry::new());
    let server = Server::new(registry, 1);
    let store = SnapshotStore::with_io(Arc::<MemIo>::clone(&io), 3);
    match server.hydrate_with(store, CADENCE) {
        Err(ServeError::StoreVersionAhead { found, supported }) => {
            assert_eq!(found, STORE_VERSION + 1);
            assert_eq!(supported, STORE_VERSION);
        }
        other => panic!("expected StoreVersionAhead, got {other:?}"),
    }
    // Refusal means refusal: nothing was checkpointed over the store.
    assert!(
        server.durability().is_none(),
        "no hub may be installed after a refused hydration"
    );
}

/// Hydrating twice is a configuration bug and is refused — two stores
/// checkpointing one fleet would race each other's rosters.
#[test]
fn a_second_hydration_is_refused() {
    let (artifact, _) = fixture();
    let io = MemIo::new();
    let server = boot(&io, &artifact);
    let second = SnapshotStore::with_io(MemIo::new(), 3);
    match server.hydrate_with(second, CADENCE) {
        Err(ServeError::Terminated { .. }) => {}
        other => panic!("expected Terminated, got {other:?}"),
    }
}

/// End-to-end on the real filesystem: graceful shutdown's final
/// checkpoint (the `Drop` path) persists frames streamed after the last
/// explicit checkpoint, and `Server::hydrate` on the directory resumes
/// them bitwise.
#[test]
fn disk_store_roundtrips_across_a_graceful_restart() {
    let (artifact, readings) = fixture();
    let dir = std::env::temp_dir().join(format!(
        "eigenmaps-store-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    {
        let registry = Arc::new(DeploymentRegistry::new());
        registry
            .publish_bytes("chip-a", &artifact)
            .expect("publish");
        let server = Server::new(registry, 2);
        server.hydrate(&dir, CADENCE).expect("first hydrate");
        let mut session = server.open_session("chip-a", GAIN).expect("open");
        for reading in &readings[..5] {
            session.step(reading).expect("step");
        }
        // No explicit checkpoint: the server drop below must write one,
        // while the session is still live (a dropped session is a
        // closed session and leaves the roster).
        drop(server);
        drop(session);
    }

    let registry = Arc::new(DeploymentRegistry::new());
    let server = Server::new(Arc::clone(&registry), 2);
    let mut hydration = server.hydrate(&dir, CADENCE).expect("second hydrate");
    assert_eq!(hydration.report.deployments, 1);
    assert_eq!(hydration.report.skipped, 0);
    let (_, mut resumed) = hydration.sessions.pop().expect("session persisted on drop");
    assert_eq!(resumed.frames(), 5);

    let mut reference = server.open_session("chip-a", GAIN).expect("reference");
    for reading in &readings[..5] {
        reference.step(reading).expect("reference step");
    }
    let want = reference.step(&readings[5]).expect("reference next");
    let got = resumed.step(&readings[5]).expect("resumed next");
    assert_eq!(bits(&got), bits(&want), "disk roundtrip diverged");

    drop(resumed);
    drop(reference);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
