//! Kernel-dispatch integration tests on the serving-fleet workload: the
//! UltraSPARC T1 dataset of `examples/serving_fleet.rs`, served through
//! the sharded runtime under every forced synthesis backend.
//!
//! Two contracts are asserted:
//!
//! * **per-backend bitwise identity** — for any one forced backend,
//!   sharded execution equals the sequential batch (and the per-frame
//!   path) bit for bit, at every shard count and batch size, including
//!   batches smaller than the kernel's lane/block widths;
//! * **cross-backend tolerance** — the SIMD backends agree with the
//!   scalar oracle within `1e-10` relative on every cell of every frame.

use std::sync::Arc;

use eigenmaps_core::prelude::*;
use eigenmaps_floorplan::prelude::*;
use eigenmaps_serve::ShardedExecutor;

const ROWS: usize = 14;
const COLS: usize = 15;

/// The serving_fleet design: an UltraSPARC T1 ensemble, `Eigen { k = m }`
/// deployment, plus `frames` noisy reading vectors.
fn fleet_workload(frames: usize) -> (Deployment, Vec<Vec<f64>>) {
    let dataset = DatasetBuilder::ultrasparc_t1()
        .grid(ROWS, COLS)
        .snapshots(120)
        .settle_steps(20)
        .seed(21)
        .build()
        .expect("dataset generation");
    let ensemble = dataset.ensemble();
    let deployment = Pipeline::new(ensemble)
        .basis(BasisSpec::Eigen { k: 8 })
        .sensors(8)
        .noise(NoiseSpec::sigma(0.2))
        .design()
        .expect("design");
    let mut noise = NoiseModel::new(0xF1EE7);
    let frames: Vec<Vec<f64>> = (0..frames)
        .map(|t| {
            let map = ensemble.map(t % ensemble.len());
            noise.apply_sigma(&deployment.sensors().sample(&map), 0.2)
        })
        .collect();
    (deployment, frames)
}

fn max_rel_diff(a: &[ThermalMap], b: &[ThermalMap]) -> f64 {
    let mut worst = 0.0f64;
    for (ma, mb) in a.iter().zip(b.iter()) {
        for (&x, &y) in ma.as_slice().iter().zip(mb.as_slice().iter()) {
            worst = worst.max((x - y).abs() / x.abs().max(y.abs()).max(1.0));
        }
    }
    worst
}

#[test]
fn all_backends_agree_on_the_serving_fleet_workload() {
    let (deployment, frames) = fleet_workload(257);
    let frames = Arc::new(frames);

    let mut per_backend: Vec<(KernelKind, Vec<ThermalMap>)> = Vec::new();
    for kind in KernelKind::available() {
        let forced = Arc::new(deployment.clone().with_kernel(kind).unwrap());
        assert_eq!(forced.kernel_kind(), kind);
        let sequential = forced.reconstruct_batch(&frames).unwrap();

        // Per-backend bitwise identity: sharding never changes an answer.
        for shards in [1usize, 3, 4] {
            let executor = ShardedExecutor::new(shards);
            let sharded = executor.execute(&forced, &frames).unwrap();
            assert_eq!(sharded.len(), sequential.len());
            for (i, (a, b)) in sequential.iter().zip(sharded.iter()).enumerate() {
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "backend {kind}: sharded output diverged at frame {i} ({shards} shards)"
                );
            }
        }
        per_backend.push((kind, sequential));
    }

    // Cross-backend tolerance against the scalar oracle.
    let (_, scalar) = per_backend
        .iter()
        .find(|(k, _)| *k == KernelKind::Scalar)
        .expect("scalar oracle always available")
        .clone();
    for (kind, maps) in &per_backend {
        let worst = max_rel_diff(&scalar, maps);
        assert!(
            worst <= 1e-10,
            "backend {kind} diverged from scalar by {worst:e} relative"
        );
        if *kind == KernelKind::Lanes {
            // The portable lanes path is not merely close — it is the
            // same arithmetic, hence bitwise identical.
            for (a, b) in scalar.iter().zip(maps.iter()) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }

    // The two FMA backends apply the identical fused recurrence, so on a
    // host that runs both their served outputs must agree bit for bit.
    let avx2 = per_backend.iter().find(|(k, _)| *k == KernelKind::Avx2);
    let avx512 = per_backend.iter().find(|(k, _)| *k == KernelKind::Avx512);
    if let (Some((_, a)), Some((_, b))) = (avx2, avx512) {
        for (ma, mb) in a.iter().zip(b.iter()) {
            assert_eq!(
                ma.as_slice(),
                mb.as_slice(),
                "avx512 must equal avx2 bitwise"
            );
        }
    }
}

#[test]
fn batches_smaller_than_the_block_width_survive_sharding() {
    // Regression guard: shard_spans over tiny batches produces spans
    // smaller than the kernel's lane width (4) and block width (32); the
    // kernel's remainder path plus span stitching must still reproduce
    // the sequential batch bitwise, for every backend.
    let (deployment, frames) = fleet_workload(7);
    for kind in KernelKind::available() {
        let forced = Arc::new(deployment.clone().with_kernel(kind).unwrap());
        let executor = ShardedExecutor::new(8); // more shards than most batches have frames
        for take in [1usize, 2, 3, 5, 7] {
            let batch: Vec<Vec<f64>> = frames[..take].to_vec();
            let sequential = forced.reconstruct_batch(&batch).unwrap();
            let sharded = executor.execute_owned(&forced, batch).unwrap();
            assert_eq!(sharded.len(), take);
            for (f, (a, b)) in sequential.iter().zip(sharded.iter()).enumerate() {
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "backend {kind}, {take}-frame batch, frame {f}"
                );
            }
            // And the per-frame path agrees bitwise too.
            for (f, readings) in frames[..take].iter().enumerate() {
                let single = forced.reconstruct(readings).unwrap();
                assert_eq!(single.as_slice(), sharded[f].as_slice(), "frame {f}");
            }
        }
    }
}

#[test]
fn detected_backend_is_what_the_fleet_executes() {
    // The diagnostic surface: a freshly designed deployment reports the
    // host-detected backend; publishing bytes re-detects (the artifact
    // stores no backend); forcing before publishing is what workers run.
    let (deployment, frames) = fleet_workload(16);
    assert_eq!(deployment.kernel_kind(), KernelKind::detect());

    let reloaded = Deployment::from_bytes(&deployment.to_bytes()).unwrap();
    assert_eq!(reloaded.kernel_kind(), KernelKind::detect());

    let forced = Arc::new(deployment.with_kernel(KernelKind::Scalar).unwrap());
    let executor = ShardedExecutor::new(2);
    let via_pool = executor.execute_owned(&forced, frames.clone()).unwrap();
    let direct = forced.reconstruct_batch(&frames).unwrap();
    for (a, b) in direct.iter().zip(via_pool.iter()) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
