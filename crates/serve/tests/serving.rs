//! Integration tests for the serving runtime, centered on the
//! bitwise-identity contract: no matter how a batch is sharded, batched or
//! micro-batched, the output must equal the single-threaded
//! `Deployment::reconstruct_batch` (itself bitwise-identical to per-frame
//! reconstruction) bit for bit.

use std::sync::Arc;
use std::time::Duration;

use eigenmaps_core::prelude::*;
use eigenmaps_serve::prelude::*;

/// A deployment over a synthetic three-mode family plus `frames` noisy
/// reading vectors (deterministic, irrational-period modes so frames are
/// all distinct).
fn fixture(frames: usize) -> (Arc<Deployment>, Arc<Vec<Vec<f64>>>) {
    let maps: Vec<ThermalMap> = (0..80)
        .map(|t| {
            let a = (t as f64 / 5.0).sin();
            let b = (t as f64 / 3.0).cos();
            let c2 = (t as f64 / 7.3).sin();
            ThermalMap::from_fn(9, 7, |r, c| {
                55.0 + a * r as f64 - b * c as f64 + 0.3 * c2 * ((r * c) as f64).sqrt()
            })
        })
        .collect();
    let ens = MapEnsemble::from_maps(&maps).unwrap();
    let deployment = Pipeline::new(&ens)
        .basis(BasisSpec::EigenExact { k: 3 })
        .sensors(6)
        .design()
        .unwrap();
    let frames: Vec<Vec<f64>> = (0..frames)
        .map(|t| {
            let mut readings = deployment.sensors().sample(&ens.map(t % ens.len()));
            // Deterministic per-frame perturbation so no two frames match.
            for (i, x) in readings.iter_mut().enumerate() {
                *x += ((t * 31 + i * 7) as f64 * 0.618).sin() * 0.05;
            }
            readings
        })
        .collect();
    (Arc::new(deployment), Arc::new(frames))
}

#[test]
fn sharded_execution_is_bitwise_identical_across_odd_batch_sizes() {
    for shard_count in [1usize, 2, 3, 4, 8] {
        let executor = ShardedExecutor::new(shard_count);
        // The ISSUE-mandated awkward sizes: 1, shard_count−1,
        // shard_count+1, and a 1000+ batch, plus boundary-stressing
        // neighbors.
        let sizes = [
            1,
            shard_count.saturating_sub(1),
            shard_count + 1,
            2 * shard_count + 1,
            37,
            1031,
        ];
        for &size in &sizes {
            let (deployment, frames) = fixture(size);
            let sequential = deployment.reconstruct_batch(&frames).unwrap();
            let sharded = executor.execute(&deployment, &frames).unwrap();
            assert_eq!(
                sharded.len(),
                sequential.len(),
                "shards={shard_count} size={size}"
            );
            for (i, (a, b)) in sequential.iter().zip(sharded.iter()).enumerate() {
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "bitwise divergence at frame {i} (shards={shard_count}, size={size})"
                );
            }
        }
    }
}

#[test]
fn sharded_execution_matches_per_frame_reconstruction() {
    let executor = ShardedExecutor::new(4);
    let (deployment, frames) = fixture(129);
    let sharded = executor.execute(&deployment, &frames).unwrap();
    for (frame, map) in frames.iter().zip(sharded.iter()) {
        let single = deployment.reconstruct(frame).unwrap();
        assert_eq!(single.as_slice(), map.as_slice());
    }
}

#[test]
fn full_stack_registry_server_roundtrip() {
    let (deployment, frames) = fixture(200);
    let registry = Arc::new(DeploymentRegistry::new());
    registry
        .publish_bytes("t1", &deployment.to_bytes())
        .unwrap();
    let server = Server::new(Arc::clone(&registry), 3);

    // Split the traffic into uneven requests; answers must equal the
    // sequential batch over the concatenation.
    let sequential = deployment.reconstruct_batch(&frames).unwrap();
    let mut tickets = Vec::new();
    let mut offsets = Vec::new();
    let mut start = 0usize;
    for chunk in [1usize, 9, 3, 57, 30, 100] {
        let end = (start + chunk).min(frames.len());
        tickets.push(
            server
                .submit(ServeRequest::new("t1", frames[start..end].to_vec()))
                .unwrap(),
        );
        offsets.push(start..end);
        start = end;
    }
    for (ticket, span) in tickets.into_iter().zip(offsets) {
        let maps = ticket.wait().unwrap();
        for (map, truth) in maps.iter().zip(&sequential[span]) {
            assert_eq!(map.as_slice(), truth.as_slice());
        }
    }

    let snapshot = server.metrics();
    assert_eq!(snapshot.requests, 6);
    assert_eq!(snapshot.frames, 200);
    assert!(snapshot.batches >= 1);
    assert_eq!(snapshot.errors, 0);
    assert_eq!(snapshot.shard_frames.iter().sum::<u64>(), 200);
}

/// Fault injection: a tenant hot-swapped mid-queue keeps serving already
/// submitted tickets from the artifact they pinned, bitwise — the swap
/// creates a *new* per-tenant queue rather than contaminating the old one.
#[test]
fn hot_swap_mid_queue_serves_pinned_artifact_bitwise() {
    let (v1_deployment, frames) = fixture(24);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("chip", (*v1_deployment).clone());
    // A long latency budget keeps the v1 request queued across the swap.
    let policy = BatchPolicy {
        max_batch_frames: 1 << 20,
        max_batch_requests: 1 << 10,
        max_delay: Duration::from_millis(60),
        ..BatchPolicy::default()
    };
    let server = Server::with_policy(Arc::clone(&registry), 2, policy);
    let pinned = server
        .submit(ServeRequest::new("chip", frames.to_vec()))
        .unwrap();
    assert_eq!(pinned.version(), 1);

    // Hot swap to a retrained artifact with the SAME sensor count but a
    // different basis (k=4 vs k=3), so the same readings decode to
    // different maps — any queue contamination would be visible bitwise.
    let maps: Vec<ThermalMap> = (0..80)
        .map(|t| {
            let a = (t as f64 / 4.1).sin();
            let b = (t as f64 / 2.7).cos();
            ThermalMap::from_fn(9, 7, |r, c| 50.0 + a * (r * r) as f64 - b * c as f64)
        })
        .collect();
    let ens = MapEnsemble::from_maps(&maps).unwrap();
    let v2_deployment = Pipeline::new(&ens)
        .basis(BasisSpec::EigenExact { k: 4 })
        .allocator(AllocatorSpec::Fixed(v1_deployment.sensors().clone()))
        .design()
        .unwrap();
    assert_eq!(v2_deployment.m(), v1_deployment.m());
    registry.publish("chip", v2_deployment.clone());
    registry.retire("chip", 1).unwrap();

    // New traffic resolves v2; the queued ticket still serves v1.
    let fresh = server
        .submit(ServeRequest::new("chip", frames.to_vec()))
        .unwrap();
    assert_eq!(fresh.version(), 2);

    let v1_truth = v1_deployment.reconstruct_batch(&frames).unwrap();
    let v2_truth = v2_deployment.reconstruct_batch(&frames).unwrap();
    for (map, truth) in pinned.wait().unwrap().iter().zip(&v1_truth) {
        assert_eq!(map.as_slice(), truth.as_slice());
    }
    for (map, truth) in fresh.wait().unwrap().iter().zip(&v2_truth) {
        assert_eq!(map.as_slice(), truth.as_slice());
    }
    // The two artifacts genuinely disagree (the check above was not vacuous).
    assert!(v1_truth
        .iter()
        .zip(&v2_truth)
        .any(|(a, b)| a.as_slice() != b.as_slice()));
}

/// Fault injection: dropping a ticket without ever polling it must not
/// leak its tenant's pending slot or wedge the batcher — later traffic
/// keeps flowing and the queue-depth gauge drains to zero.
#[test]
fn dropped_ticket_neither_leaks_slots_nor_wedges_the_batcher() {
    let (deployment, frames) = fixture(12);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let policy = BatchPolicy {
        max_batch_frames: 1 << 20,
        max_batch_requests: 4,
        max_delay: Duration::from_millis(2),
        max_pending_per_tenant: 8,
    };
    let server = Server::with_policy(Arc::clone(&registry), 2, policy);

    // Abandon a batch worth of tickets outright.
    for chunk in frames.chunks(3) {
        let ticket = server
            .submit(ServeRequest::new("t1", chunk.to_vec()))
            .unwrap();
        drop(ticket); // never polled, never waited
    }
    // The batcher still serves subsequent traffic promptly and correctly.
    let truth = deployment.reconstruct_batch(&frames).unwrap();
    for round in 0..4 {
        let maps = server.serve("t1", frames.to_vec()).unwrap();
        for (map, expected) in maps.iter().zip(&truth) {
            assert_eq!(map.as_slice(), expected.as_slice(), "round {round}");
        }
    }
    // Every request — abandoned or served — was flushed: no pending slot
    // leaked, so the nonblocking door is not spuriously saturated.
    let snap = server.metrics();
    assert_eq!(snap.errors, 0);
    let tenant = &snap.tenants["t1"];
    assert_eq!(tenant.queue_depth, 0, "abandoned tickets leaked slots");
    assert_eq!(tenant.batch_requests, 4 + 4);
    assert_eq!(tenant.batch_frames, 12 + 4 * 12);
    let ticket = server
        .try_submit(ServeRequest::new("t1", frames.to_vec()))
        .unwrap();
    assert_eq!(ticket.wait().unwrap().len(), 12);
}

#[test]
fn registry_hot_swap_under_concurrent_serving() {
    let (deployment, frames) = fixture(64);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let server = Arc::new(Server::new(Arc::clone(&registry), 2));

    let serving = {
        let (server, frames) = (Arc::clone(&server), Arc::clone(&frames));
        std::thread::spawn(move || {
            for _ in 0..20 {
                // Versions are pinned at submit: every response has the
                // frame count of the request even while swaps happen.
                let maps = server.serve("t1", frames.to_vec()).unwrap();
                assert_eq!(maps.len(), 64);
            }
        })
    };
    for _ in 0..10 {
        let v = registry.publish("t1", (*deployment).clone());
        if v > 2 {
            registry.retire("t1", v - 2).unwrap();
        }
    }
    serving.join().unwrap();
}
