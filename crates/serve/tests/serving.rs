//! Integration tests for the serving runtime, centered on the
//! bitwise-identity contract: no matter how a batch is sharded, batched or
//! micro-batched, the output must equal the single-threaded
//! `Deployment::reconstruct_batch` (itself bitwise-identical to per-frame
//! reconstruction) bit for bit.

use std::sync::Arc;
use std::time::Duration;

use eigenmaps_core::prelude::*;
use eigenmaps_serve::prelude::*;

/// A deployment over a synthetic three-mode family plus `frames` noisy
/// reading vectors (deterministic, irrational-period modes so frames are
/// all distinct).
fn fixture(frames: usize) -> (Arc<Deployment>, Arc<Vec<Vec<f64>>>) {
    let maps: Vec<ThermalMap> = (0..80)
        .map(|t| {
            let a = (t as f64 / 5.0).sin();
            let b = (t as f64 / 3.0).cos();
            let c2 = (t as f64 / 7.3).sin();
            ThermalMap::from_fn(9, 7, |r, c| {
                55.0 + a * r as f64 - b * c as f64 + 0.3 * c2 * ((r * c) as f64).sqrt()
            })
        })
        .collect();
    let ens = MapEnsemble::from_maps(&maps).unwrap();
    let deployment = Pipeline::new(&ens)
        .basis(BasisSpec::EigenExact { k: 3 })
        .sensors(6)
        .design()
        .unwrap();
    let frames: Vec<Vec<f64>> = (0..frames)
        .map(|t| {
            let mut readings = deployment.sensors().sample(&ens.map(t % ens.len()));
            // Deterministic per-frame perturbation so no two frames match.
            for (i, x) in readings.iter_mut().enumerate() {
                *x += ((t * 31 + i * 7) as f64 * 0.618).sin() * 0.05;
            }
            readings
        })
        .collect();
    (Arc::new(deployment), Arc::new(frames))
}

#[test]
fn sharded_execution_is_bitwise_identical_across_odd_batch_sizes() {
    for shard_count in [1usize, 2, 3, 4, 8] {
        let executor = ShardedExecutor::new(shard_count);
        // The ISSUE-mandated awkward sizes: 1, shard_count−1,
        // shard_count+1, and a 1000+ batch, plus boundary-stressing
        // neighbors.
        let sizes = [
            1,
            shard_count.saturating_sub(1),
            shard_count + 1,
            2 * shard_count + 1,
            37,
            1031,
        ];
        for &size in &sizes {
            let (deployment, frames) = fixture(size);
            let sequential = deployment.reconstruct_batch(&frames).unwrap();
            let sharded = executor.execute(&deployment, &frames).unwrap();
            assert_eq!(
                sharded.len(),
                sequential.len(),
                "shards={shard_count} size={size}"
            );
            for (i, (a, b)) in sequential.iter().zip(sharded.iter()).enumerate() {
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "bitwise divergence at frame {i} (shards={shard_count}, size={size})"
                );
            }
        }
    }
}

#[test]
fn sharded_execution_matches_per_frame_reconstruction() {
    let executor = ShardedExecutor::new(4);
    let (deployment, frames) = fixture(129);
    let sharded = executor.execute(&deployment, &frames).unwrap();
    for (frame, map) in frames.iter().zip(sharded.iter()) {
        let single = deployment.reconstruct(frame).unwrap();
        assert_eq!(single.as_slice(), map.as_slice());
    }
}

#[test]
fn full_stack_registry_server_roundtrip() {
    let (deployment, frames) = fixture(200);
    let registry = Arc::new(DeploymentRegistry::new());
    registry
        .publish_bytes("t1", &deployment.to_bytes())
        .unwrap();
    let server = Server::new(Arc::clone(&registry), 3);

    // Split the traffic into uneven requests; answers must equal the
    // sequential batch over the concatenation.
    let sequential = deployment.reconstruct_batch(&frames).unwrap();
    let mut tickets = Vec::new();
    let mut offsets = Vec::new();
    let mut start = 0usize;
    for chunk in [1usize, 9, 3, 57, 30, 100] {
        let end = (start + chunk).min(frames.len());
        tickets.push(
            server
                .submit(ServeRequest::new("t1", frames[start..end].to_vec()))
                .unwrap(),
        );
        offsets.push(start..end);
        start = end;
    }
    for (ticket, span) in tickets.into_iter().zip(offsets) {
        let maps = ticket.wait().unwrap();
        for (map, truth) in maps.iter().zip(&sequential[span]) {
            assert_eq!(map.as_slice(), truth.as_slice());
        }
    }

    let snapshot = server.metrics();
    assert_eq!(snapshot.requests, 6);
    assert_eq!(snapshot.frames, 200);
    assert!(snapshot.batches >= 1);
    assert_eq!(snapshot.errors, 0);
    assert_eq!(snapshot.shard_frames.iter().sum::<u64>(), 200);
}

/// Fault injection: a tenant hot-swapped mid-queue keeps serving already
/// submitted tickets from the artifact they pinned, bitwise — the swap
/// creates a *new* per-tenant queue rather than contaminating the old one.
#[test]
fn hot_swap_mid_queue_serves_pinned_artifact_bitwise() {
    let (v1_deployment, frames) = fixture(24);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("chip", (*v1_deployment).clone());
    // A long latency budget keeps the v1 request queued across the swap.
    let policy = BatchPolicy {
        max_batch_frames: 1 << 20,
        max_batch_requests: 1 << 10,
        max_delay: Duration::from_millis(60),
        ..BatchPolicy::default()
    };
    let server = Server::with_policy(Arc::clone(&registry), 2, policy);
    let pinned = server
        .submit(ServeRequest::new("chip", frames.to_vec()))
        .unwrap();
    assert_eq!(pinned.version(), 1);

    // Hot swap to a retrained artifact with the SAME sensor count but a
    // different basis (k=4 vs k=3), so the same readings decode to
    // different maps — any queue contamination would be visible bitwise.
    let maps: Vec<ThermalMap> = (0..80)
        .map(|t| {
            let a = (t as f64 / 4.1).sin();
            let b = (t as f64 / 2.7).cos();
            ThermalMap::from_fn(9, 7, |r, c| 50.0 + a * (r * r) as f64 - b * c as f64)
        })
        .collect();
    let ens = MapEnsemble::from_maps(&maps).unwrap();
    let v2_deployment = Pipeline::new(&ens)
        .basis(BasisSpec::EigenExact { k: 4 })
        .allocator(AllocatorSpec::Fixed(v1_deployment.sensors().clone()))
        .design()
        .unwrap();
    assert_eq!(v2_deployment.m(), v1_deployment.m());
    registry.publish("chip", v2_deployment.clone());
    registry.retire("chip", 1).unwrap();

    // New traffic resolves v2; the queued ticket still serves v1.
    let fresh = server
        .submit(ServeRequest::new("chip", frames.to_vec()))
        .unwrap();
    assert_eq!(fresh.version(), 2);

    let v1_truth = v1_deployment.reconstruct_batch(&frames).unwrap();
    let v2_truth = v2_deployment.reconstruct_batch(&frames).unwrap();
    for (map, truth) in pinned.wait().unwrap().iter().zip(&v1_truth) {
        assert_eq!(map.as_slice(), truth.as_slice());
    }
    for (map, truth) in fresh.wait().unwrap().iter().zip(&v2_truth) {
        assert_eq!(map.as_slice(), truth.as_slice());
    }
    // The two artifacts genuinely disagree (the check above was not vacuous).
    assert!(v1_truth
        .iter()
        .zip(&v2_truth)
        .any(|(a, b)| a.as_slice() != b.as_slice()));
}

/// Fault injection: dropping a ticket without ever polling it must not
/// leak its tenant's pending slot or wedge the batcher — later traffic
/// keeps flowing and the queue-depth gauge drains to zero.
#[test]
fn dropped_ticket_neither_leaks_slots_nor_wedges_the_batcher() {
    let (deployment, frames) = fixture(12);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let policy = BatchPolicy {
        max_batch_frames: 1 << 20,
        max_batch_requests: 4,
        max_delay: Duration::from_millis(2),
        max_pending_per_tenant: 8,
        ..BatchPolicy::default()
    };
    let server = Server::with_policy(Arc::clone(&registry), 2, policy);

    // Abandon a batch worth of tickets outright.
    for chunk in frames.chunks(3) {
        let ticket = server
            .submit(ServeRequest::new("t1", chunk.to_vec()))
            .unwrap();
        drop(ticket); // never polled, never waited
    }
    // The batcher still serves subsequent traffic promptly and correctly.
    let truth = deployment.reconstruct_batch(&frames).unwrap();
    for round in 0..4 {
        let maps = server.serve("t1", frames.to_vec()).unwrap();
        for (map, expected) in maps.iter().zip(&truth) {
            assert_eq!(map.as_slice(), expected.as_slice(), "round {round}");
        }
    }
    // Every request — abandoned or served — was flushed: no pending slot
    // leaked, so the nonblocking door is not spuriously saturated.
    let snap = server.metrics();
    assert_eq!(snap.errors, 0);
    let tenant = &snap.tenants["t1"];
    assert_eq!(tenant.queue_depth, 0, "abandoned tickets leaked slots");
    assert_eq!(tenant.batch_requests, 4 + 4);
    assert_eq!(tenant.batch_frames, 12 + 4 * 12);
    let ticket = server
        .try_submit(ServeRequest::new("t1", frames.to_vec()))
        .unwrap();
    assert_eq!(ticket.wait().unwrap().len(), 12);
}

/// The tentpole contract: a session stepped through the scheduler (server
/// path — admission control, stream lane, fairness rotation, worker-pool
/// execution) produces maps bitwise-identical to the old synchronous
/// in-thread `TrackerSession::step` path, frame for frame — even with
/// concurrent batch traffic interleaving through the same scheduler.
#[test]
fn scheduled_session_is_bitwise_identical_to_synchronous_path() {
    let (deployment, frames) = fixture(48);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let server = Server::new(Arc::clone(&registry), 3);

    // Reference 1: the standalone (inline, unscheduled) session.
    let mut inline = TrackerSession::open(&registry, "t1", 0.35).unwrap();
    // Reference 2: the raw core tracker.
    let mut raw = deployment.tracker(0.35).unwrap();
    // Subject: the scheduled session.
    let mut scheduled = server.open_session("t1", 0.35).unwrap();
    assert!(scheduled.stream_id().is_some());

    for (t, readings) in frames.iter().enumerate() {
        // Interleave foreign batch traffic through the same scheduler.
        let foreign = server
            .submit(ServeRequest::new("t1", vec![readings.clone()]))
            .unwrap();
        let a = scheduled.step(readings).unwrap();
        let b = inline.step(readings).unwrap();
        let c = raw.step(readings).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "scheduled vs inline, t={t}");
        assert_eq!(b.as_slice(), c.as_slice(), "inline vs raw tracker, t={t}");
        foreign.wait().unwrap();
    }
    assert_eq!(scheduled.frames(), 48);
    assert_eq!(scheduled.pending_steps(), 0);

    let snap = server.metrics();
    assert_eq!(snap.session_steps, 48);
    assert_eq!(snap.sessions_open, 1);
    assert_eq!(snap.tenants["t1"].session_steps, 48);
    assert!(snap.session_latency_p99 > Duration::ZERO);
    drop(scheduled);
    assert_eq!(server.metrics().sessions_open, 0);
}

/// Steps submitted without waiting (the event-loop shape) execute in
/// submission order on the session's stream lane — the final state equals
/// the synchronous path's, and every ticket resolves to its own frame's
/// map.
#[test]
fn pipelined_submit_step_keeps_order_and_state() {
    let (deployment, frames) = fixture(16);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let server = Server::new(Arc::clone(&registry), 2);
    let session = server.open_session("t1", 0.5).unwrap();
    let mut reference = deployment.tracker(0.5).unwrap();

    let tickets: Vec<_> = frames
        .iter()
        .map(|r| session.submit_step(r).unwrap())
        .collect();
    for (t, (ticket, readings)) in tickets.into_iter().zip(frames.iter()).enumerate() {
        let scheduled = ticket.wait().unwrap();
        let expected = reference.step(readings).unwrap();
        assert_eq!(scheduled.as_slice(), expected.as_slice(), "frame {t}");
    }
    assert_eq!(session.frames(), 16);
    assert_eq!(session.pending_steps(), 0);
}

/// Step execution must not serialize the whole serving plane: a step is
/// dispatched fire-and-forget to a worker, so while one session's step is
/// still executing, the batcher keeps flushing batches and granting other
/// sessions' steps on the remaining workers. The test parks the worker
/// completing session A's step (inside the ticket's readiness callback)
/// and proves batch traffic and session B both complete before A is
/// released — a regression back to blocking the batcher on step
/// completion deadlocks here instead of passing.
#[test]
fn step_execution_does_not_serialize_across_sessions() {
    use std::sync::mpsc;

    let (deployment, frames) = fixture(4);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let server = Server::new(Arc::clone(&registry), 2);
    let sa = server.open_session("t1", 0.5).unwrap();
    let sb = server.open_session("t1", 0.5).unwrap();

    let order = Arc::new(std::sync::Mutex::new(Vec::new()));
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let (ack_tx, ack_rx) = mpsc::channel::<()>();
    let a_ticket = sa.submit_step(&frames[0]).unwrap();
    // Register from a helper thread: in the (vanishingly rare) case the
    // step already completed, the callback runs inline on the helper and
    // parks it, never the test thread.
    let registrar = {
        let order = Arc::clone(&order);
        std::thread::spawn(move || {
            a_ticket.on_ready(move || {
                release_rx.recv().expect("release the parked worker");
                order.lock().unwrap().push('a');
                ack_tx.send(()).expect("acknowledge the release");
            });
            a_ticket
        })
    };

    // With A's completion parked on its worker, the serving plane stays
    // live: batch traffic flushes and session B's steps execute.
    let maps = server.serve("t1", vec![frames[1].clone()]).unwrap();
    assert_eq!(maps.len(), 1);
    sb.submit_step(&frames[2]).unwrap().wait().unwrap();
    order.lock().unwrap().push('b');

    release_tx.send(()).unwrap();
    ack_rx.recv().unwrap(); // the released callback has pushed 'a'
    let a_ticket = registrar.join().unwrap();
    a_ticket.wait().unwrap();
    assert_eq!(*order.lock().unwrap(), vec!['b', 'a']);
    assert_eq!(sa.frames() + sb.frames(), 2);
}

/// Session admission control: a session saturates at the tenant's
/// `max_pending_per_tenant` in-flight steps and recovers once they drain.
/// Abandoned step tickets release their admission slots.
#[test]
fn session_steps_saturate_and_recover() {
    let (deployment, frames) = fixture(8);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let server = Server::new(Arc::clone(&registry), 1);
    let session = server.open_session("t1", 0.5).unwrap();
    // A tight per-tenant bound via the override path, installed AFTER the
    // session opened: policy changes must reach live streams, not only
    // sessions opened later.
    server
        .set_tenant_policy(
            "t1",
            Some(BatchPolicy {
                max_pending_per_tenant: 2,
                ..BatchPolicy::default()
            }),
        )
        .unwrap();

    // Submitting faster than the pool drains must eventually refuse;
    // every accepted ticket still resolves. (The pool may drain between
    // submits, so saturation is observed by submitting while holding
    // unresolved tickets until a refusal arrives.)
    let mut accepted = Vec::new();
    let mut saturated = false;
    for _ in 0..1000 {
        match session.submit_step(&frames[0]) {
            Ok(ticket) => accepted.push(ticket),
            Err(ServeError::Saturated { pending, .. }) => {
                assert_eq!(pending, 2);
                saturated = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saturated, "bound of 2 never refused a submit");
    for ticket in accepted {
        ticket.wait().unwrap();
    }
    // Slots drained: the door admits again. Abandoned tickets also
    // release their slots once executed.
    let ticket = session.submit_step(&frames[1]).unwrap();
    drop(ticket);
    while session.pending_steps() > 0 {
        std::thread::yield_now();
    }
    assert!(session.submit_step(&frames[2]).is_ok());
}

/// Warm restart through the server: snapshot a scheduled session, drop it
/// ("monitor restart"), resume via `Server::resume_session`, and the
/// resumed stream continues bitwise-identically to an uninterrupted
/// scheduled session — pinned to the same version across a hot swap.
#[test]
fn server_snapshot_resume_roundtrip_is_bitwise_across_hot_swap() {
    let (v1_deployment, frames) = fixture(30);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("chip", (*v1_deployment).clone());
    let server = Server::new(Arc::clone(&registry), 2);

    let mut uninterrupted = server.open_session("chip", 0.4).unwrap();
    let mut live = server.open_session("chip", 0.4).unwrap();
    for readings in &frames[..12] {
        uninterrupted.step(readings).unwrap();
        live.step(readings).unwrap();
    }
    let bytes = live.snapshot();
    drop(live); // monitor restart

    // Hot-swap to a retrained artifact between snapshot and resume: the
    // snapshot must reattach to v1, not the new latest.
    let maps: Vec<ThermalMap> = (0..80)
        .map(|t| {
            let a = (t as f64 / 4.1).sin();
            ThermalMap::from_fn(9, 7, |r, c| 50.0 + a * (r * r) as f64 - c as f64)
        })
        .collect();
    let ens = MapEnsemble::from_maps(&maps).unwrap();
    let v2 = Pipeline::new(&ens)
        .basis(BasisSpec::EigenExact { k: 4 })
        .allocator(AllocatorSpec::Fixed(v1_deployment.sensors().clone()))
        .design()
        .unwrap();
    registry.publish("chip", v2);

    let mut resumed = server.resume_session(&bytes).unwrap();
    assert_eq!(resumed.version(), 1, "reattached to the pinned artifact");
    assert_eq!(resumed.frames(), 12);
    for (t, readings) in frames[12..].iter().enumerate() {
        let a = uninterrupted.step(readings).unwrap();
        let b = resumed.step(readings).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "post-resume step {t}");
    }
    // A fresh session (no snapshot) on the same name attaches to v2.
    let fresh = server.open_session("chip", 0.4).unwrap();
    assert_eq!(fresh.version(), 2);
}

/// Per-tenant policy overrides tier the nonblocking door: tightening one
/// tenant's admission bound saturates it earlier while the other tenant
/// keeps the global bound; clearing the override restores it.
#[test]
fn tenant_policy_override_tiers_admission_control() {
    let (deployment, frames) = fixture(8);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("gold", (*deployment).clone());
    registry.publish("bulk", (*deployment).clone());
    // Nothing ever flushes: pending queues fill deterministically.
    let policy = BatchPolicy {
        max_batch_frames: 1 << 20,
        max_batch_requests: 1 << 10,
        max_delay: Duration::from_secs(60),
        max_pending_per_tenant: 4,
        ..BatchPolicy::default()
    };
    let server = Server::with_policy(Arc::clone(&registry), 1, policy);
    server
        .set_tenant_policy(
            "bulk",
            Some(BatchPolicy {
                max_pending_per_tenant: 1,
                ..policy
            }),
        )
        .unwrap();
    assert_eq!(server.tenant_policy("bulk").max_pending_per_tenant, 1);
    assert_eq!(server.tenant_policy("gold").max_pending_per_tenant, 4);

    let mut tickets = Vec::new();
    tickets.push(
        server
            .try_submit(ServeRequest::new("bulk", vec![frames[0].clone()]))
            .unwrap(),
    );
    assert!(matches!(
        server.try_submit(ServeRequest::new("bulk", vec![frames[1].clone()])),
        Err(ServeError::Saturated { pending: 1, .. })
    ));
    // The gold tenant still has the global headroom.
    for frame in frames.iter().take(4) {
        tickets.push(
            server
                .try_submit(ServeRequest::new("gold", vec![frame.clone()]))
                .unwrap(),
        );
    }
    assert!(matches!(
        server.try_submit(ServeRequest::new("gold", vec![frames[4].clone()])),
        Err(ServeError::Saturated { pending: 4, .. })
    ));
    // Clearing the override restores the global bound for new admits.
    server.set_tenant_policy("bulk", None).unwrap();
    for frame in frames.iter().take(3) {
        tickets.push(
            server
                .try_submit(ServeRequest::new("bulk", vec![frame.clone()]))
                .unwrap(),
        );
    }
    drop(server); // drain
    for ticket in tickets {
        assert_eq!(ticket.wait().unwrap().len(), 1);
    }
}

#[test]
fn registry_hot_swap_under_concurrent_serving() {
    let (deployment, frames) = fixture(64);
    let registry = Arc::new(DeploymentRegistry::new());
    registry.publish("t1", (*deployment).clone());
    let server = Arc::new(Server::new(Arc::clone(&registry), 2));

    let serving = {
        let (server, frames) = (Arc::clone(&server), Arc::clone(&frames));
        std::thread::spawn(move || {
            for _ in 0..20 {
                // Versions are pinned at submit: every response has the
                // frame count of the request even while swaps happen.
                let maps = server.serve("t1", frames.to_vec()).unwrap();
                assert_eq!(maps.len(), 64);
            }
        })
    };
    for _ in 0..10 {
        let v = registry.publish("t1", (*deployment).clone());
        if v > 2 {
            registry.retire("t1", v - 2).unwrap();
        }
    }
    serving.join().unwrap();
}
