//! Loom-style stress lane for the threaded scheduler driver: the same
//! serving workload replayed under many *seeded shim-RNG schedules*, each
//! seed deterministically deciding every thread's tenant choices, chunk
//! sizes, submit paths (blocking vs nonblocking), abandonment points and
//! yield interleavings. Hot swaps run concurrently throughout.
//!
//! CI runs this file single-threaded (`cargo test -p eigenmaps-serve --
//! --test-threads=1`) with `EIGENMAPS_STRESS=1`, which widens the seed
//! sweep; the default sweep keeps the tier-1 run fast.
//!
//! What each schedule asserts:
//! * every awaited response is bitwise-identical to the pinned artifact's
//!   sequential `reconstruct_batch` over the same frames;
//! * abandoned tickets never wedge the batcher or leak queue slots;
//! * the session-churn lane (scheduled sessions opened, stepped,
//!   snapshotted/resumed and dropped concurrently with the batch traffic)
//!   stays bitwise-lockstep with an inline reference tracker throughout;
//! * the metrics ledger balances: zero errors, every admitted request
//!   flushed, every submitted step executed, per-tenant queue-depth
//!   gauges drained to zero and the session gauge back to zero.
//!
//! A second lane replays a QoS overload (premium `Shed` tier next to a
//! brownout-degraded bulk tier) and checks the same discipline: every
//! ticket completes — exact, degraded-bitwise, or typed shed — and the
//! ledger accounts each outcome exactly.

use std::sync::Arc;
use std::time::Duration;

use eigenmaps_core::prelude::*;
use eigenmaps_serve::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small two-tenant fleet fixture: each tenant has its own basis so a
/// cross-tenant mixup would change answers, plus per-tenant truth maps.
struct Fleet {
    registry: Arc<DeploymentRegistry>,
    names: [&'static str; 2],
    deployments: [Arc<Deployment>; 2],
    frames: [Vec<Vec<f64>>; 2],
}

fn fleet() -> Fleet {
    let names = ["sku-a", "sku-b"];
    let registry = Arc::new(DeploymentRegistry::new());
    let mut deployments = Vec::new();
    let mut frames = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        let maps: Vec<ThermalMap> = (0..60)
            .map(|t| {
                let a = (t as f64 / (4.0 + idx as f64)).sin();
                let b = (t as f64 / 3.3).cos();
                ThermalMap::from_fn(8, 7, |r, c| 48.0 + a * (r + idx * c) as f64 - b * c as f64)
            })
            .collect();
        let ens = MapEnsemble::from_maps(&maps).unwrap();
        let deployment = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 2 + idx })
            .sensors(5 + idx)
            .design()
            .unwrap();
        registry.publish(name, deployment.clone());
        let tenant_frames: Vec<Vec<f64>> = (0..24)
            .map(|t| {
                let mut readings = deployment.sensors().sample(&ens.map(t));
                for (i, x) in readings.iter_mut().enumerate() {
                    *x += ((t * 17 + i * 5) as f64 * 0.41).sin() * 0.05;
                }
                readings
            })
            .collect();
        deployments.push(Arc::new(deployment));
        frames.push(tenant_frames);
    }
    Fleet {
        registry,
        names,
        deployments: [Arc::clone(&deployments[0]), Arc::clone(&deployments[1])],
        frames: [frames.remove(0), frames.remove(0)],
    }
}

/// One full schedule: 4 client threads + 1 hot-swapper racing the batcher,
/// every nondeterministic choice drawn from `seed`.
fn stress_schedule(seed: u64) {
    let fleet = fleet();
    let policy = BatchPolicy {
        max_batch_frames: 24,
        max_batch_requests: 6,
        max_delay: Duration::from_micros(300),
        max_pending_per_tenant: 64,
        ..BatchPolicy::default()
    };
    let server = Arc::new(Server::with_policy(Arc::clone(&fleet.registry), 2, policy));
    let truth: [Arc<Vec<ThermalMap>>; 2] = [
        Arc::new(
            fleet.deployments[0]
                .reconstruct_batch(&fleet.frames[0])
                .unwrap(),
        ),
        Arc::new(
            fleet.deployments[1]
                .reconstruct_batch(&fleet.frames[1])
                .unwrap(),
        ),
    ];

    let mut clients = Vec::new();
    for worker in 0..4u64 {
        let server = Arc::clone(&server);
        let names = fleet.names;
        let frames = [fleet.frames[0].clone(), fleet.frames[1].clone()];
        let truth = [Arc::clone(&truth[0]), Arc::clone(&truth[1])];
        clients.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(worker));
            let mut kept: Vec<(usize, usize, usize, Ticket)> = Vec::new();
            let mut submitted = 0usize;
            for _ in 0..40 {
                let tenant = rng.gen_range(0usize..2);
                let start = rng.gen_range(0usize..frames[tenant].len() - 1);
                let len = rng.gen_range(1usize..=3).min(frames[tenant].len() - start);
                let request =
                    ServeRequest::new(names[tenant], frames[tenant][start..start + len].to_vec());
                // Schedule point: blocking vs admission-controlled door.
                let outcome = if rng.gen_bool(0.5) {
                    match server.try_submit(request) {
                        Err(ServeError::Saturated { .. }) => continue, // backpressure: drop
                        other => other,
                    }
                } else {
                    server.submit(request)
                };
                let ticket = outcome.expect("submit");
                submitted += 1;
                // Schedule point: ~15% of tickets are abandoned unpolled.
                if rng.gen_bool(0.15) {
                    drop(ticket);
                } else {
                    kept.push((tenant, start, len, ticket));
                }
                if rng.gen_bool(0.3) {
                    std::thread::yield_now();
                }
            }
            for (tenant, start, len, ticket) in kept {
                // Schedule point: half wait, half poll.
                let maps = if ticket.version() == 1 && start % 2 == 0 {
                    ticket.wait().expect("serve")
                } else {
                    let mut ticket = ticket;
                    loop {
                        if let Some(result) = ticket.try_wait() {
                            break result.expect("serve");
                        }
                        std::thread::yield_now();
                    }
                };
                assert_eq!(maps.len(), len);
                // v1-pinned responses must equal the v1 sequential batch
                // bitwise (hot swaps republish clones of the same
                // artifact, so every version serves the same answers).
                for (map, expected) in maps.iter().zip(&truth[tenant][start..start + len]) {
                    assert_eq!(map.as_slice(), expected.as_slice());
                }
            }
            submitted
        }));
    }

    // Session-churn lane: a scheduled streaming session against sku-b
    // (whose v1 is never retired) is opened, stepped, snapshotted/resumed
    // ("monitor restart") and dropped/reopened under the same seeded
    // schedule, racing the batch clients and the hot-swapper through the
    // one shared scheduler. A lockstep inline reference tracker proves
    // every synchronously awaited map bitwise.
    let churner = {
        let server = Arc::clone(&server);
        let deployment = Arc::clone(&fleet.deployments[1]);
        let frames = fleet.frames[1].clone();
        let name = fleet.names[1];
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
            let mut session = server.open_session(name, 0.5).expect("open session");
            let mut reference = deployment.tracker(0.5).unwrap();
            let mut t = 0usize;
            let mut steps_submitted = 0usize;
            for _ in 0..50 {
                match rng.gen_range(0u8..10) {
                    0..=5 => {
                        // Blocking scheduled step, proven bitwise against
                        // the inline reference.
                        let readings = &frames[t % frames.len()];
                        let map = session.step(readings).expect("session step");
                        let expected = reference.step(readings).unwrap();
                        assert_eq!(
                            map.as_slice(),
                            expected.as_slice(),
                            "seed {seed}: scheduled session diverged at churn step {t}"
                        );
                        t += 1;
                        steps_submitted += 1;
                    }
                    6 | 7 => {
                        // Fire-and-forget pipelined step: the ticket is
                        // abandoned, the state still advances in order.
                        let readings = &frames[t % frames.len()];
                        match session.submit_step(readings) {
                            Ok(ticket) => {
                                drop(ticket);
                                reference.step(readings).unwrap();
                                t += 1;
                                steps_submitted += 1;
                            }
                            Err(ServeError::Saturated { .. }) => {} // shed
                            Err(e) => panic!("seed {seed}: submit_step: {e}"),
                        }
                    }
                    8 => {
                        // Snapshot → restart → resume, mid-traffic. Steps
                        // in flight are awaited first so the snapshot is a
                        // well-defined point in the stream.
                        while session.pending_steps() > 0 {
                            std::thread::yield_now();
                        }
                        let bytes = session.snapshot();
                        drop(session);
                        session = server.resume_session(&bytes).expect("resume session");
                        assert_eq!(session.frames() as usize, t, "seed {seed}");
                    }
                    _ => {
                        // Drop and open a fresh stream (new lane id, fresh
                        // temporal state on both sides, step index rewound).
                        drop(session);
                        session = server.open_session(name, 0.5).expect("reopen session");
                        reference = deployment.tracker(0.5).unwrap();
                        t = 0;
                    }
                }
                if rng.gen_bool(0.3) {
                    std::thread::yield_now();
                }
            }
            drop(session);
            steps_submitted
        })
    };

    // Concurrent hot-swapper: republish and retire under live traffic.
    let swapper = {
        let registry = Arc::clone(&fleet.registry);
        let deployment = Arc::clone(&fleet.deployments[0]);
        let name = fleet.names[0];
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5AFE);
            for _ in 0..6 {
                let v = registry.publish(name, (*deployment).clone());
                if v > 2 && rng.gen_bool(0.7) {
                    registry.retire(name, v - 2).unwrap();
                }
                for _ in 0..rng.gen_range(1usize..4) {
                    std::thread::yield_now();
                }
            }
        })
    };

    let total_submitted: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let total_steps = churner.join().unwrap();
    swapper.join().unwrap();

    // Abandoned tickets' batches flush on their own deadlines and
    // abandoned steps execute on the lane's next grants; wait for the
    // ledger to balance without sleeping in the assertion itself.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let snap = loop {
        let snap = server.metrics();
        let flushed: u64 = snap.tenants.values().map(|t| t.batch_requests).sum();
        let drained = snap.tenants.values().all(|t| t.queue_depth == 0);
        if (flushed == total_submitted as u64
            && drained
            && snap.session_steps == total_steps as u64)
            || std::time::Instant::now() > deadline
        {
            break snap;
        }
        std::thread::yield_now();
    };
    assert_eq!(snap.errors, 0, "seed {seed}");
    assert_eq!(snap.requests, total_submitted as u64, "seed {seed}");
    let flushed: u64 = snap.tenants.values().map(|t| t.batch_requests).sum();
    assert_eq!(
        flushed, total_submitted as u64,
        "seed {seed}: requests leaked"
    );
    for (name, tenant) in &snap.tenants {
        assert_eq!(tenant.queue_depth, 0, "seed {seed}: {name} leaked slots");
    }
    // Every submitted step — awaited or abandoned — executed, and every
    // churned session closed its gauge slot.
    assert_eq!(
        snap.session_steps, total_steps as u64,
        "seed {seed}: steps leaked"
    );
    assert_eq!(snap.sessions_open, 0, "seed {seed}: session gauge leaked");
    assert!(snap.max_sessions_open >= 1, "seed {seed}");

    // The same churn ran fully traced: the ring parsed torn-free
    // (snapshot skips in-flight slots, never tears them), accounting
    // stayed exact, and every kept slow-request exemplar is a monotone
    // stage timeline spanning admission to its terminal stage.
    let recorder = server.recorder();
    assert!(recorder.written() > 0, "seed {seed}: traffic was traced");
    let ring = recorder.snapshot();
    assert!(ring.events.len() <= recorder.capacity(), "seed {seed}");
    assert_eq!(ring.written, recorder.written(), "seed {seed}");
    for (tenant, kept) in recorder.exemplars() {
        for exemplar in &kept {
            assert!(
                exemplar.stages.windows(2).all(|w| w[0].1 <= w[1].1),
                "seed {seed}: {tenant} exemplar {} timeline not monotone",
                exemplar.trace
            );
            let first = exemplar.stages.first().expect("nonempty timeline").1;
            let last = exemplar.stages.last().expect("nonempty timeline").1;
            assert_eq!(
                exemplar.total,
                last - first,
                "seed {seed}: {tenant} exemplar total disagrees with its timeline"
            );
        }
    }
}

#[test]
fn seeded_schedules_keep_the_server_sound() {
    // EIGENMAPS_STRESS=1 (the CI stress lane) widens the sweep.
    let seeds: u64 = if std::env::var_os("EIGENMAPS_STRESS").is_some() {
        24
    } else {
        4
    };
    for seed in 0..seeds {
        stress_schedule(seed);
    }
}

/// One QoS overload schedule: 4 client threads hammer a premium `Shed`
/// tenant (sku-a) and a bulk `Degrade` tenant (sku-b) sharing one
/// batcher under a 1-frame brownout watermark. Every ticket must
/// complete — exact maps, degraded-bitwise maps, or a typed retryable
/// `DeadlineShed` — and the metrics ledger must account each outcome
/// exactly: `submitted == served + shed`, no other errors, queues
/// drained.
fn qos_overload_schedule(seed: u64) {
    let fleet = fleet();
    let policy = BatchPolicy {
        max_batch_frames: 24,
        max_batch_requests: 6,
        max_delay: Duration::from_micros(300),
        max_pending_per_tenant: 1 << 12,
        ..BatchPolicy::default()
    };
    let server = Arc::new(Server::with_policy(Arc::clone(&fleet.registry), 2, policy));
    // Even seeds shed premium at a zero deadline — every premium request
    // refused, deterministically. Odd seeds use 150 µs, splitting
    // premium outcomes by real queue wait. Bulk degrades to its
    // strongest mode; with a 1-frame enter watermark any tick with work
    // pending is a brownout tick, so every bulk batch serves degraded.
    let premium_deadline = if seed.is_multiple_of(2) {
        Duration::ZERO
    } else {
        Duration::from_micros(150)
    };
    server
        .set_tenant_policy(
            fleet.names[0],
            Some(BatchPolicy {
                deadline: Some(premium_deadline),
                overrun: OverrunAction::Shed,
                ..policy
            }),
        )
        .unwrap();
    server
        .set_tenant_policy(
            fleet.names[1],
            Some(BatchPolicy {
                deadline: Some(Duration::from_secs(60)),
                overrun: OverrunAction::Degrade { keep_k: 1 },
                ..policy
            }),
        )
        .unwrap();
    server
        .set_brownout(Some(BrownoutPolicy {
            enter_above: 1,
            exit_below: 0,
        }))
        .unwrap();

    let truth: [Arc<Vec<ThermalMap>>; 2] = [
        Arc::new(
            fleet.deployments[0]
                .reconstruct_batch(&fleet.frames[0])
                .unwrap(),
        ),
        Arc::new(
            fleet.deployments[1]
                .reconstruct_batch(&fleet.frames[1])
                .unwrap(),
        ),
    ];
    let coarse: Arc<Vec<ThermalMap>> = Arc::new(
        fleet.deployments[1]
            .truncated(1)
            .unwrap()
            .reconstruct_batch(&fleet.frames[1])
            .unwrap(),
    );

    let mut clients = Vec::new();
    for worker in 0..4u64 {
        let server = Arc::clone(&server);
        let names = fleet.names;
        let frames = [fleet.frames[0].clone(), fleet.frames[1].clone()];
        let truth = [Arc::clone(&truth[0]), Arc::clone(&truth[1])];
        let coarse = Arc::clone(&coarse);
        clients.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(worker));
            let mut kept: Vec<(usize, usize, usize, Ticket)> = Vec::new();
            for _ in 0..30 {
                let tenant = rng.gen_range(0usize..2);
                let start = rng.gen_range(0usize..frames[tenant].len() - 1);
                let len = rng.gen_range(1usize..=3).min(frames[tenant].len() - start);
                let ticket = server
                    .submit(ServeRequest::new(
                        names[tenant],
                        frames[tenant][start..start + len].to_vec(),
                    ))
                    .expect("submit");
                kept.push((tenant, start, len, ticket));
                if rng.gen_bool(0.3) {
                    std::thread::yield_now();
                }
            }
            // Every ticket completes: exact, degraded-bitwise, or typed
            // retryable shed. Nothing is abandoned, so the counts below
            // are the full ledger.
            let (mut ok, mut shed) = (0usize, 0usize);
            let mut submitted_per = [0usize; 2];
            for (tenant, start, len, mut ticket) in kept {
                submitted_per[tenant] += 1;
                let result = loop {
                    match ticket.try_wait() {
                        Some(result) => break result,
                        None => std::thread::yield_now(),
                    }
                };
                match result {
                    Ok(maps) => {
                        assert_eq!(maps.len(), len, "seed {seed}");
                        ok += 1;
                        let expected: &[ThermalMap] = if tenant == 1 {
                            // Brownout never lifts while traffic flows:
                            // bulk is always the coarse tier, bitwise.
                            assert!(ticket.is_degraded(), "seed {seed}: bulk served exact");
                            &coarse[start..start + len]
                        } else {
                            assert!(!ticket.is_degraded(), "seed {seed}: premium degraded");
                            &truth[tenant][start..start + len]
                        };
                        for (map, want) in maps.iter().zip(expected) {
                            assert_eq!(map.as_slice(), want.as_slice(), "seed {seed}");
                        }
                    }
                    Err(e) => {
                        assert!(e.is_retryable(), "seed {seed}: {e}");
                        let ServeError::DeadlineShed {
                            name,
                            deadline,
                            waited,
                        } = e
                        else {
                            panic!("seed {seed}: unexpected error {e}");
                        };
                        assert_eq!(tenant, 0, "seed {seed}: bulk tier must never shed");
                        assert_eq!(name, names[0], "seed {seed}");
                        assert_eq!(deadline, premium_deadline, "seed {seed}");
                        assert!(waited >= deadline, "seed {seed}: shed before the deadline");
                        shed += 1;
                    }
                }
            }
            (submitted_per[0], submitted_per[1], ok, shed)
        }));
    }

    let mut premium_submitted = 0usize;
    let mut bulk_submitted = 0usize;
    let mut ok_total = 0usize;
    let mut shed_total = 0usize;
    for client in clients {
        let (p, b, ok, shed) = client.join().unwrap();
        premium_submitted += p;
        bulk_submitted += b;
        ok_total += ok;
        shed_total += shed;
    }
    let submitted = premium_submitted + bulk_submitted;
    assert_eq!(
        ok_total + shed_total,
        submitted,
        "seed {seed}: lost tickets"
    );
    if seed.is_multiple_of(2) {
        // Zero deadline: every premium request shed, deterministically.
        assert_eq!(shed_total, premium_submitted, "seed {seed}");
    }

    // The ledger balances exactly: shed is the only error source, every
    // degraded request is bulk's, and the queues drained.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let snap = loop {
        let snap = server.metrics();
        let flushed: u64 = snap.tenants.values().map(|t| t.batch_requests).sum();
        let drained = snap.tenants.values().all(|t| t.queue_depth == 0);
        if (flushed + snap.errors == submitted as u64 && drained)
            || std::time::Instant::now() > deadline
        {
            break snap;
        }
        std::thread::yield_now();
    };
    assert_eq!(snap.requests, submitted as u64, "seed {seed}");
    assert_eq!(snap.errors, shed_total as u64, "seed {seed}");
    assert_eq!(snap.shed, shed_total as u64, "seed {seed}");
    let flushed: u64 = snap.tenants.values().map(|t| t.batch_requests).sum();
    assert_eq!(flushed, ok_total as u64, "seed {seed}");
    assert_eq!(
        snap.requests,
        flushed + snap.errors,
        "seed {seed}: accounting identity broke"
    );
    let premium = &snap.tenants[fleet.names[0]];
    assert_eq!(premium.shed_requests, shed_total as u64, "seed {seed}");
    assert_eq!(premium.degraded_requests, 0, "seed {seed}");
    let bulk = &snap.tenants[fleet.names[1]];
    assert_eq!(bulk.shed_requests, 0, "seed {seed}");
    assert_eq!(
        bulk.degraded_requests, bulk_submitted as u64,
        "seed {seed}: every bulk request serves degraded under brownout"
    );
    assert_eq!(snap.degraded, bulk_submitted as u64, "seed {seed}");
    if bulk_submitted > 0 {
        assert!(bulk.degraded_batches >= 1, "seed {seed}");
        assert!(snap.brownout_entries >= 1, "seed {seed}");
    }
    for (name, tenant) in &snap.tenants {
        assert_eq!(tenant.queue_depth, 0, "seed {seed}: {name} leaked slots");
    }
}

#[test]
fn qos_overload_schedules_account_every_ticket() {
    // EIGENMAPS_STRESS=1 (the CI stress lane) widens the sweep.
    let seeds: u64 = if std::env::var_os("EIGENMAPS_STRESS").is_some() {
        16
    } else {
        4
    };
    for seed in 0..seeds {
        qos_overload_schedule(seed);
    }
}

/// Satellite: the flight-recorder ring under raw multi-writer fire.
/// Every event encodes its writer and sequence in *three* fields
/// (trace id, coalesce arg, timestamp); a torn slot — fields from two
/// different writes — cannot stay self-consistent. Quiescent
/// accounting is exact: every claimed ticket beyond the ring's
/// capacity is a drop, whether overwritten or abandoned to a lapping
/// writer.
#[test]
fn concurrent_ring_writers_never_tear_events_and_drops_account_exactly() {
    let stress = std::env::var_os("EIGENMAPS_STRESS").is_some();
    let writers: usize = if stress { 8 } else { 4 };
    let per_writer: usize = if stress { 20_000 } else { 2_000 };
    for capacity in [64usize, 8] {
        let recorder = FlightRecorder::new(capacity);
        let names: Vec<String> = (0..writers).map(|k| format!("w{k}")).collect();
        let refs: Vec<_> = names.iter().map(|n| recorder.allocate(n)).collect();
        let ids: Vec<u64> = refs.iter().map(|r| r.id().0).collect();

        std::thread::scope(|scope| {
            for (k, &trace) in refs.iter().enumerate() {
                let recorder = recorder.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let p = (k * per_writer + i) as u32;
                        recorder.event(
                            trace,
                            Stage::Coalesced { requests: p },
                            Duration::from_nanos(u64::from(p) + 1),
                        );
                    }
                });
            }
        });

        let total = (writers * per_writer) as u64;
        assert_eq!(
            recorder.dropped(),
            total - capacity as u64,
            "cap {capacity}: exactly everything beyond the ring is dropped"
        );
        let ring = recorder.snapshot();
        assert_eq!(ring.written, recorder.written());
        assert!(ring.written <= total);
        assert!(ring.events.len() <= capacity);
        let mut seen = std::collections::HashSet::new();
        for event in &ring.events {
            let Stage::Coalesced { requests: p } = event.stage else {
                panic!("cap {capacity}: torn stage byte: {:?}", event.stage);
            };
            let k = p as usize / per_writer;
            assert_eq!(event.trace.0, ids[k], "cap {capacity}: torn trace id");
            assert_eq!(event.tenant, names[k], "cap {capacity}: torn tenant");
            assert_eq!(
                event.at,
                Duration::from_nanos(u64::from(p) + 1),
                "cap {capacity}: torn timestamp"
            );
            assert!(seen.insert(p), "cap {capacity}: duplicate event {p}");
        }
    }
}
