//! Crash-safe on-disk durability: periodic whole-fleet checkpoints and
//! cold-start hydration.
//!
//! The store persists two things beneath the serving runtime: the
//! deployment catalog (content-addressed `EMDEPLOY` artifact files) and
//! the session roster (per-session `EMSESS1` snapshot files, rotated by
//! generation). Both are committed atomically by an `EMSTORE1` manifest
//! (see [`eigenmaps_core::codec`]) written with the classic crash-safe
//! discipline:
//!
//! ```text
//! write data files → fsync each → write manifest.tmp → fsync
//!     → rename(manifest.tmp, manifest.emstore)   ← the commit point
//!     → fsync(dir)
//! ```
//!
//! A crash at *any* boundary leaves the previous manifest (and every
//! file it references) intact, so hydration always recovers either the
//! old checkpoint or the new one — never a torn hybrid. That invariant
//! is enforced by a fault-injection harness over the [`StoreIo`] seam:
//! [`MemIo`] can kill the process model at every syscall boundary
//! ([`CrashStyle::Before`]) or deposit a torn prefix mid-write
//! ([`CrashStyle::Torn`]) on a deterministic schedule.
//!
//! Background cadence is clock-injected: the batcher thread asks
//! [`DurabilityHub::due`] with its own mock-clock `now` and runs the
//! checkpoint through the sharded executor's fire-and-forget job lane,
//! so serving latency never waits on `fsync` and tests run with zero
//! sleeps.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use eigenmaps_core::codec::{
    fnv1a64, StoreCatalogEntry, StoreManifest, StoreSessionEntry, STORE_VERSION,
};
use eigenmaps_core::{SessionSnapshot, TrackingReconstructor};

use crate::error::{Result, ServeError};
use crate::metrics::ServeMetrics;
use crate::registry::DeploymentRegistry;
use crate::session::TrackerSession;

/// Committed manifest file name inside a store directory.
const MANIFEST_FILE: &str = "manifest.emstore";
/// Scratch name the manifest is staged under before the commit rename.
const MANIFEST_TMP: &str = "manifest.tmp";
/// Default snapshot generations retained per session (current plus two
/// fallbacks for external corruption of the newest file).
pub const DEFAULT_KEEP: u64 = 3;

/// The syscall seam the store writes through. Production uses
/// [`DiskIo`]; crash-point tests swap in [`MemIo`] and kill the write at
/// every boundary. Paths are flat file names relative to one store
/// directory — the store never nests.
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// I/O failure; `NotFound` when the file does not exist.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Creates-or-truncates `name` and writes `bytes`. Durability is NOT
    /// implied — call [`StoreIo::sync`] before depending on the
    /// contents surviving a crash.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn write_all(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Flushes `name`'s contents to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Atomically renames `from` to `to` — the commit point of the
    /// manifest protocol.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Deletes a file (rotation / pruning).
    ///
    /// # Errors
    ///
    /// I/O failure; `NotFound` when the file does not exist.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// Flushes the directory entry table (`fsync` on the directory) so a
    /// committed rename survives a crash.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn sync_dir(&self) -> io::Result<()>;
    /// Lists every file name in the store directory.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn list(&self) -> io::Result<Vec<String>>;
    /// Whether `name` exists.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn exists(&self, name: &str) -> io::Result<bool>;
}

/// Real-filesystem [`StoreIo`] rooted at one directory.
#[derive(Debug)]
pub struct DiskIo {
    root: PathBuf,
}

impl DiskIo {
    /// Opens (creating if needed) a store directory.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory.
    pub fn open(root: impl AsRef<Path>) -> io::Result<DiskIo> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DiskIo { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl StoreIo for DiskIo {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path(name))
    }

    fn write_all(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut file = fs::File::create(self.path(name))?;
        file.write_all(bytes)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        fs::File::open(self.path(name))?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        fs::rename(self.path(from), self.path(to))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        fs::remove_file(self.path(name))
    }

    fn sync_dir(&self) -> io::Result<()> {
        #[cfg(unix)]
        {
            fs::File::open(&self.root)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            Ok(())
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(names)
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        Ok(self.path(name).exists())
    }
}

/// How a scheduled [`MemIo`] crash lands relative to its syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// The process dies before the syscall takes any effect.
    Before,
    /// A write dies mid-syscall, leaving a deterministic strict-or-full
    /// prefix of the attempted bytes on stable storage (torn write). On
    /// non-write syscalls this degrades to [`CrashStyle::Before`].
    Torn,
}

#[derive(Debug, Default)]
struct MemState {
    /// The live filesystem view: what reads observe while the process is
    /// up (page cache semantics — writes land here immediately).
    volatile: HashMap<String, Vec<u8>>,
    /// What survives a crash: only `sync`ed contents plus journaled
    /// metadata (renames, removes) make it here.
    durable: HashMap<String, Vec<u8>>,
    /// Count of mutating syscalls so far (write/sync/rename/remove/
    /// sync_dir); the crash schedule indexes into this sequence.
    ops: u64,
    schedule: Option<(u64, CrashStyle)>,
    crashed: bool,
}

impl MemState {
    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::other("simulated crash: io offline until revive"));
        }
        Ok(())
    }

    /// Counts one mutating syscall; returns `Some(style)` when the crash
    /// schedule fires on this op (after applying the crash to state).
    fn mutating_op(&mut self) -> Option<CrashStyle> {
        let op = self.ops;
        self.ops += 1;
        match self.schedule {
            Some((at, style)) if at == op => {
                self.schedule = None;
                Some(style)
            }
            _ => None,
        }
    }

    /// Kills the process model: everything not durable is lost, and all
    /// I/O fails until [`MemIo::revive`].
    fn crash(&mut self) {
        self.volatile = self.durable.clone();
        self.crashed = true;
    }
}

/// In-memory [`StoreIo`] with a crash model for fault-injection tests.
///
/// Two maps model the machine: `volatile` is the live filesystem view
/// (what reads see), `durable` is what survives a crash. `write_all`
/// lands in volatile only; `sync` copies a file volatile → durable;
/// `rename`/`remove` journal their metadata to durable immediately (as
/// journaling filesystems do) — which means renaming a never-synced file
/// commits a zero-length file, the classic hazard the write → fsync →
/// rename discipline exists to avoid.
///
/// [`MemIo::schedule_crash`] arms a deterministic kill at the Nth
/// mutating syscall. After a crash every operation fails until
/// [`MemIo::revive`], which models the process restart: the volatile
/// view is rebuilt from durable contents only.
#[derive(Debug, Default)]
pub struct MemIo {
    state: Mutex<MemState>,
}

impl MemIo {
    /// A fresh, empty in-memory store.
    pub fn new() -> Arc<MemIo> {
        Arc::new(MemIo::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().expect("MemIo state lock poisoned")
    }

    /// Arms a crash at mutating-syscall index `op` (0-based over the
    /// whole life of this io, counting write/sync/rename/remove/
    /// sync_dir; reads are free). Replaces any earlier schedule.
    pub fn schedule_crash(&self, op: u64, style: CrashStyle) {
        self.lock().schedule = Some((op, style));
    }

    /// Whether the simulated machine is currently down.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Restarts the simulated machine: I/O works again, and only
    /// durable contents are visible — volatile state died with the
    /// crash.
    pub fn revive(&self) {
        self.lock().crashed = false;
    }

    /// Mutating syscalls issued so far — the coordinate space
    /// [`MemIo::schedule_crash`] indexes into.
    pub fn mutating_ops(&self) -> u64 {
        self.lock().ops
    }

    /// The durable bytes of `name`, bypassing the crash gate — lets
    /// tests inspect (or corrupt) stable storage directly.
    pub fn durable_contents(&self, name: &str) -> Option<Vec<u8>> {
        self.lock().durable.get(name).cloned()
    }
}

fn crash_err() -> io::Error {
    io::Error::other("simulated crash")
}

impl StoreIo for MemIo {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let state = self.lock();
        state.check_alive()?;
        state
            .volatile
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}")))
    }

    fn write_all(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        state.check_alive()?;
        let op = state.ops;
        if let Some(style) = state.mutating_op() {
            if style == CrashStyle::Torn {
                // Deterministic torn prefix: a multiplicative hash of the
                // op index picks how many of the attempted bytes made it
                // to stable storage before the power cut.
                let keep = (op.wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize) % (bytes.len() + 1);
                state
                    .durable
                    .insert(name.to_string(), bytes[..keep].to_vec());
            }
            state.crash();
            return Err(crash_err());
        }
        state.volatile.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let mut state = self.lock();
        state.check_alive()?;
        if state.mutating_op().is_some() {
            state.crash();
            return Err(crash_err());
        }
        match state.volatile.get(name).cloned() {
            Some(bytes) => {
                state.durable.insert(name.to_string(), bytes);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {name}"),
            )),
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut state = self.lock();
        state.check_alive()?;
        if state.mutating_op().is_some() {
            state.crash();
            return Err(crash_err());
        }
        let Some(bytes) = state.volatile.remove(from) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {from}"),
            ));
        };
        state.volatile.insert(to.to_string(), bytes);
        // Rename metadata journals immediately; the *data* only survives
        // if it was synced first. Renaming a never-synced file durably
        // commits an empty file — the hazard fsync-before-rename avoids.
        let durable = state.durable.remove(from).unwrap_or_default();
        state.durable.insert(to.to_string(), durable);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut state = self.lock();
        state.check_alive()?;
        if state.mutating_op().is_some() {
            state.crash();
            return Err(crash_err());
        }
        if state.volatile.remove(name).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {name}"),
            ));
        }
        state.durable.remove(name);
        Ok(())
    }

    fn sync_dir(&self) -> io::Result<()> {
        let mut state = self.lock();
        state.check_alive()?;
        if state.mutating_op().is_some() {
            state.crash();
            return Err(crash_err());
        }
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let state = self.lock();
        state.check_alive()?;
        Ok(state.volatile.keys().cloned().collect())
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        let state = self.lock();
        state.check_alive()?;
        Ok(state.volatile.contains_key(name))
    }
}

/// One deployment artifact headed for (or loaded from) the store:
/// `(name, version)` plus its `EMDEPLOY` bytes.
#[derive(Debug, Clone)]
pub struct CatalogArtifact {
    /// Registry name the artifact is published under.
    pub name: String,
    /// Registry version of this artifact.
    pub version: u32,
    /// The serialized `EMDEPLOY` record.
    pub bytes: Arc<Vec<u8>>,
}

/// One session headed for the store: its durable id and the state
/// captured at checkpoint time.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// Durable session id, stable across restarts.
    pub id: u64,
    /// The captured session state.
    pub snapshot: SessionSnapshot,
}

/// What one [`SnapshotStore::checkpoint`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Whether a new manifest was committed (`false` when nothing
    /// changed since the previous checkpoint, or when another checkpoint
    /// was already in flight).
    pub committed: bool,
    /// Sessions referenced by the (possibly unchanged) manifest.
    pub sessions: u64,
}

/// Everything a [`SnapshotStore::load`] recovered from disk.
#[derive(Debug, Clone, Default)]
pub struct StoreContents {
    /// Deployment artifacts whose bytes matched their manifest digest.
    pub catalog: Vec<CatalogArtifact>,
    /// `(durable id, EMSESS1 bytes)` for every recoverable session.
    pub sessions: Vec<(u64, Vec<u8>)>,
    /// Entries (manifest, catalog, or session) that were torn or corrupt
    /// and skipped rather than failing the boot.
    pub skipped: u64,
    /// The manifest as read (default-empty when missing or corrupt).
    pub manifest: StoreManifest,
}

#[derive(Debug, Default)]
struct StoreState {
    /// The last manifest known committed (primes unchanged-session reuse
    /// and pruning).
    previous: StoreManifest,
    /// Highest snapshot generation ever used per session id — monotonic
    /// so a retried checkpoint never overwrites a file an older manifest
    /// still references.
    generations: HashMap<u64, u64>,
    loaded: bool,
}

/// The crash-safe checkpoint store: data files, rotation, and the
/// atomically-committed `EMSTORE1` manifest. See the
/// [module docs](self) for the write protocol.
#[derive(Debug)]
pub struct SnapshotStore {
    io: Arc<dyn StoreIo>,
    keep: u64,
    state: Mutex<StoreState>,
}

fn session_file(id: u64, generation: u64) -> String {
    format!("s{id:016x}-g{generation:08}.emsess")
}

fn deployment_file(digest: u64) -> String {
    format!("d-{digest:016x}.emdeploy")
}

/// Parses `s{id:016x}-g{gen:08}.emsess` back into `(id, generation)`.
fn parse_session_file(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix('s')?.strip_suffix(".emsess")?;
    let (id_hex, generation) = rest.split_once("-g")?;
    if id_hex.len() != 16 || generation.len() != 8 {
        return None;
    }
    Some((
        u64::from_str_radix(id_hex, 16).ok()?,
        generation.parse().ok()?,
    ))
}

impl SnapshotStore {
    /// Opens a store over a real directory (created if needed), keeping
    /// `keep` snapshot generations per session.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory.
    pub fn open(dir: impl AsRef<Path>, keep: u64) -> io::Result<SnapshotStore> {
        Ok(SnapshotStore::with_io(Arc::new(DiskIo::open(dir)?), keep))
    }

    /// Wraps an explicit [`StoreIo`] — the fault-injection door.
    pub fn with_io(io: Arc<dyn StoreIo>, keep: u64) -> SnapshotStore {
        SnapshotStore {
            io,
            keep: keep.max(1),
            state: Mutex::new(StoreState::default()),
        }
    }

    /// The io seam (tests use it to crash/revive a [`MemIo`]).
    pub fn io(&self) -> &Arc<dyn StoreIo> {
        &self.io
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state
            .lock()
            .expect("snapshot store state lock poisoned")
    }

    /// Scans on-disk session files so generation numbering resumes past
    /// anything already present — including unreferenced leftovers of a
    /// crashed checkpoint.
    fn scan_generations(&self) -> io::Result<HashMap<u64, u64>> {
        let mut generations: HashMap<u64, u64> = HashMap::new();
        for name in self.io.list()? {
            if let Some((id, generation)) = parse_session_file(&name) {
                let slot = generations.entry(id).or_insert(0);
                *slot = (*slot).max(generation);
            }
        }
        Ok(generations)
    }

    /// Primes in-memory state from an existing store directory before
    /// the first checkpoint through this handle.
    fn prime(&self, state: &mut StoreState) -> io::Result<()> {
        state.previous = match self.io.read(MANIFEST_FILE) {
            Ok(bytes) => {
                if let Some(found) = StoreManifest::peek_version(&bytes) {
                    if found > STORE_VERSION {
                        return Err(io::Error::other(format!(
                            "store manifest version {found} is newer than supported \
                             {STORE_VERSION}; refusing to overwrite"
                        )));
                    }
                }
                StoreManifest::from_bytes(&bytes).unwrap_or_default()
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => StoreManifest::default(),
            Err(e) => return Err(e),
        };
        state.generations = self.scan_generations()?;
        for entry in &state.previous.sessions {
            let slot = state.generations.entry(entry.id).or_insert(0);
            *slot = (*slot).max(entry.generation);
        }
        state.loaded = true;
        Ok(())
    }

    /// Writes one checkpoint: data files first (each fsynced), then the
    /// manifest via write-tmp → fsync → rename → fsync(dir). Unchanged
    /// sessions and already-committed artifacts reuse their files; a
    /// byte-identical manifest short-circuits without touching disk.
    ///
    /// # Errors
    ///
    /// I/O failure at any boundary. The previous checkpoint stays fully
    /// recoverable — generation numbering is bumped before each write so
    /// a retry never overwrites a referenced file.
    pub fn checkpoint(
        &self,
        catalog: &[CatalogArtifact],
        sessions: &[SessionCheckpoint],
    ) -> io::Result<CheckpointReport> {
        let mut state = self.lock_state();
        if !state.loaded {
            self.prime(&mut state)?;
        }
        let previous = state.previous.clone();
        let mut manifest = StoreManifest::default();
        for artifact in catalog {
            let digest = fnv1a64(&artifact.bytes);
            let file = deployment_file(digest);
            // Only trust files the committed manifest references (or
            // ones written earlier in this pass): a bare exists() could
            // be a torn leftover of a crashed write under the same name.
            let committed = previous.catalog.iter().any(|e| e.file == file)
                || manifest.catalog.iter().any(|e| e.file == file);
            if !committed {
                self.io.write_all(&file, &artifact.bytes)?;
                self.io.sync(&file)?;
            }
            manifest.catalog.push(StoreCatalogEntry {
                name: artifact.name.clone(),
                version: artifact.version,
                file,
                artifact_digest: digest,
            });
        }
        for checkpoint in sessions {
            let frames = checkpoint.snapshot.frames;
            let artifact_digest = checkpoint.snapshot.artifact_digest;
            if let Some(prev) = previous.sessions.iter().find(|e| e.id == checkpoint.id) {
                if prev.frames == frames && prev.artifact_digest == artifact_digest {
                    manifest.sessions.push(prev.clone());
                    continue;
                }
            }
            let generation = state.generations.get(&checkpoint.id).copied().unwrap_or(0) + 1;
            // Bump before writing: if the write crashes, the next
            // attempt picks a fresh name instead of overwriting bytes a
            // committed manifest may still reference.
            state.generations.insert(checkpoint.id, generation);
            let file = session_file(checkpoint.id, generation);
            self.io.write_all(&file, &checkpoint.snapshot.to_bytes())?;
            self.io.sync(&file)?;
            manifest.sessions.push(StoreSessionEntry {
                id: checkpoint.id,
                file,
                generation,
                frames,
                artifact_digest,
            });
        }
        if manifest == previous {
            return Ok(CheckpointReport {
                committed: false,
                sessions: manifest.sessions.len() as u64,
            });
        }
        self.io.write_all(MANIFEST_TMP, &manifest.to_bytes())?;
        self.io.sync(MANIFEST_TMP)?;
        self.io.rename(MANIFEST_TMP, MANIFEST_FILE)?;
        self.io.sync_dir()?;
        let sessions_committed = manifest.sessions.len() as u64;
        state.previous = manifest;
        self.prune(&state);
        Ok(CheckpointReport {
            committed: true,
            sessions: sessions_committed,
        })
    }

    /// Best-effort rotation after a commit: drop session generations
    /// older than the keep window, snapshots of sessions the manifest no
    /// longer references, and orphaned artifact files. Unknown names are
    /// left alone.
    fn prune(&self, state: &StoreState) {
        let Ok(names) = self.io.list() else { return };
        let manifest = &state.previous;
        for name in names {
            if name == MANIFEST_FILE {
                continue;
            }
            if name == MANIFEST_TMP {
                let _ = self.io.remove(&name);
                continue;
            }
            if let Some((id, generation)) = parse_session_file(&name) {
                let keep = manifest.sessions.iter().any(|e| {
                    e.id == id
                        && generation <= e.generation
                        && generation + self.keep > e.generation
                });
                if !keep {
                    let _ = self.io.remove(&name);
                }
            } else if name.starts_with("d-")
                && name.ends_with(".emdeploy")
                && !manifest.catalog.iter().any(|e| e.file == name)
            {
                let _ = self.io.remove(&name);
            }
        }
    }

    /// Reads the committed checkpoint back: the manifest, every artifact
    /// whose bytes still match their digest, and every session snapshot
    /// that validates — falling back to an older retained generation
    /// when the newest file is corrupt. Torn or corrupt entries are
    /// skipped and counted, never fatal; only a manifest written by a
    /// *newer* format version refuses the load.
    ///
    /// # Errors
    ///
    /// [`ServeError::StoreVersionAhead`] when the manifest's format
    /// version is newer than this build understands — hydrating (and
    /// later checkpointing over) such a store would silently destroy
    /// state a newer binary still wants.
    pub fn load(&self) -> Result<StoreContents> {
        let mut state = self.lock_state();
        let mut skipped: u64 = 0;
        let manifest = match self.io.read(MANIFEST_FILE) {
            Ok(bytes) => {
                if let Some(found) = StoreManifest::peek_version(&bytes) {
                    if found > STORE_VERSION {
                        return Err(ServeError::StoreVersionAhead {
                            found,
                            supported: STORE_VERSION,
                        });
                    }
                }
                match StoreManifest::from_bytes(&bytes) {
                    Ok(manifest) => manifest,
                    Err(_) => {
                        skipped += 1;
                        StoreManifest::default()
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => StoreManifest::default(),
            Err(_) => {
                skipped += 1;
                StoreManifest::default()
            }
        };
        let mut catalog = Vec::with_capacity(manifest.catalog.len());
        for entry in &manifest.catalog {
            match self.io.read(&entry.file) {
                Ok(bytes) if fnv1a64(&bytes) == entry.artifact_digest => {
                    catalog.push(CatalogArtifact {
                        name: entry.name.clone(),
                        version: entry.version,
                        bytes: Arc::new(bytes),
                    });
                }
                _ => skipped += 1,
            }
        }
        let on_disk = self.io.list().unwrap_or_default();
        let mut sessions = Vec::with_capacity(manifest.sessions.len());
        for entry in &manifest.sessions {
            if let Some(bytes) = self.recover_session(entry, &on_disk) {
                sessions.push((entry.id, bytes));
            } else {
                skipped += 1;
            }
        }
        state.previous = manifest.clone();
        state.generations = self.scan_generations().unwrap_or_default();
        for entry in &manifest.sessions {
            let slot = state.generations.entry(entry.id).or_insert(0);
            *slot = (*slot).max(entry.generation);
        }
        state.loaded = true;
        Ok(StoreContents {
            catalog,
            sessions,
            skipped,
            manifest,
        })
    }

    /// The referenced snapshot if it validates, else the newest older
    /// retained generation that does (stale-but-consistent beats lost).
    fn recover_session(&self, entry: &StoreSessionEntry, on_disk: &[String]) -> Option<Vec<u8>> {
        if let Ok(bytes) = self.io.read(&entry.file) {
            if SessionSnapshot::from_bytes(&bytes).is_ok() {
                return Some(bytes);
            }
        }
        let mut fallbacks: Vec<u64> = on_disk
            .iter()
            .filter_map(|name| parse_session_file(name))
            .filter(|&(id, generation)| id == entry.id && generation < entry.generation)
            .map(|(_, generation)| generation)
            .collect();
        fallbacks.sort_unstable_by(|a, b| b.cmp(a));
        for generation in fallbacks {
            let file = session_file(entry.id, generation);
            if let Ok(bytes) = self.io.read(&file) {
                if SessionSnapshot::from_bytes(&bytes).is_ok() {
                    return Some(bytes);
                }
            }
        }
        None
    }
}

/// One durable session as the hub tracks it: a weak handle to the live
/// tracker plus the immutable identity fields a checkpoint needs.
#[derive(Debug)]
struct RosterEntry {
    tracker: Weak<Mutex<TrackingReconstructor>>,
    name: String,
    version: u32,
    gain: f64,
    k: usize,
    m: usize,
    artifact_digest: u64,
}

/// What one hydration pass recovered (mirrored into the metrics
/// counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HydrationReport {
    /// Deployments republished from the persisted catalog.
    pub deployments: u64,
    /// Sessions rehydrated and re-enrolled for checkpointing.
    pub sessions: u64,
    /// Corrupt/torn/mismatched entries skipped (and metered) instead of
    /// failing the boot.
    pub skipped: u64,
}

/// The result of [`Server::hydrate`](crate::Server::hydrate): the
/// recovery accounting plus the rehydrated sessions, keyed by their
/// durable ids so a front door can re-home them (e.g. `NetServer`
/// adoption for the wire `Attach` request).
#[derive(Debug)]
pub struct Hydration {
    /// Recovery accounting.
    pub report: HydrationReport,
    /// `(durable id, session)` for every recovered session.
    pub sessions: Vec<(u64, TrackerSession)>,
}

/// The per-`(name, version)` cache of serialized `EMDEPLOY` bytes.
type ArtifactCache = Mutex<HashMap<(String, u32), Arc<Vec<u8>>>>;

/// The background checkpointing service: a weak roster of every durable
/// session, a clock-injected cadence, and [`DurabilityHub::checkpoint_now`]
/// — the job the batcher throws onto the executor's fire-and-forget
/// spawn lane whenever the cadence elapses.
///
/// All timing flows through caller-passed [`Duration`]s (time since the
/// server's epoch), so tests drive `due`/`arm` with a mock clock and
/// zero sleeps.
#[derive(Debug)]
pub struct DurabilityHub {
    store: SnapshotStore,
    registry: Arc<DeploymentRegistry>,
    metrics: Arc<ServeMetrics>,
    cadence: Duration,
    /// When the next background checkpoint is due; `None` means "never
    /// armed yet" — due immediately.
    next_due: Mutex<Option<Duration>>,
    next_id: AtomicU64,
    /// Single-flight gate: overlapping checkpoint jobs collapse to one.
    running: AtomicBool,
    roster: Mutex<HashMap<u64, RosterEntry>>,
    /// Serialized `EMDEPLOY` bytes per live `(name, version)` so steady-
    /// state checkpoints never re-serialize unchanged artifacts.
    artifacts: ArtifactCache,
}

impl DurabilityHub {
    /// A hub over `store`, checkpointing `registry`'s catalog and every
    /// enrolled session each `cadence`.
    pub(crate) fn new(
        store: SnapshotStore,
        registry: Arc<DeploymentRegistry>,
        metrics: Arc<ServeMetrics>,
        cadence: Duration,
    ) -> DurabilityHub {
        DurabilityHub {
            store,
            registry,
            metrics,
            cadence,
            next_due: Mutex::new(None),
            next_id: AtomicU64::new(1),
            running: AtomicBool::new(false),
            roster: Mutex::new(HashMap::new()),
            artifacts: Mutex::new(HashMap::new()),
        }
    }

    /// The checkpoint cadence this hub was installed with.
    pub fn cadence(&self) -> Duration {
        self.cadence
    }

    /// The store's io seam (tests crash/revive a [`MemIo`] through it).
    pub fn io(&self) -> &Arc<dyn StoreIo> {
        self.store.io()
    }

    /// Enrolls a freshly opened session under a new durable id.
    pub(crate) fn register(&self, session: &TrackerSession) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.enroll(id, session);
        id
    }

    /// Re-enrolls a hydrated session under its preserved durable id.
    pub(crate) fn adopt(&self, id: u64, session: &TrackerSession) {
        let mut current = self.next_id.load(Ordering::Relaxed);
        while current <= id {
            match self.next_id.compare_exchange(
                current,
                id + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        self.enroll(id, session);
    }

    fn enroll(&self, id: u64, session: &TrackerSession) {
        let entry = RosterEntry {
            tracker: Arc::downgrade(session.tracker()),
            name: session.name().to_string(),
            version: session.version(),
            gain: session.gain(),
            k: session.deployment().k(),
            m: session.deployment().m(),
            artifact_digest: session.artifact_digest(),
        };
        self.roster
            .lock()
            .expect("durability roster lock poisoned")
            .insert(id, entry);
    }

    /// Enrolled sessions whose tracker is still alive.
    pub fn roster_len(&self) -> usize {
        let mut roster = self.roster.lock().expect("durability roster lock poisoned");
        roster.retain(|_, entry| entry.tracker.strong_count() > 0);
        roster.len()
    }

    /// Whether a background checkpoint is due at `now` (time since the
    /// server's epoch). A hub that has never been armed is due
    /// immediately.
    pub fn due(&self, now: Duration) -> bool {
        self.next_due
            .lock()
            .expect("durability deadline lock poisoned")
            .is_none_or(|deadline| now >= deadline)
    }

    /// Schedules the next checkpoint one cadence after `now`.
    pub fn arm(&self, now: Duration) {
        *self
            .next_due
            .lock()
            .expect("durability deadline lock poisoned") = Some(now + self.cadence);
    }

    /// The absolute deadline of the next checkpoint (zero when never
    /// armed — due immediately). The batcher folds this into its
    /// `recv_timeout` so cadence wake-ups need no extra thread.
    pub fn deadline(&self) -> Duration {
        self.next_due
            .lock()
            .expect("durability deadline lock poisoned")
            .unwrap_or(Duration::ZERO)
    }

    /// Runs one checkpoint synchronously: captures every live enrolled
    /// session's state under its tracker lock (one lock per session, no
    /// global pause), serializes any catalog artifacts not already
    /// cached, and commits through the store. Overlapping calls collapse
    /// — a second caller returns immediately with `committed: false`.
    ///
    /// # Errors
    ///
    /// I/O failure from the store; the previous checkpoint stays fully
    /// recoverable.
    pub fn checkpoint_now(&self) -> io::Result<CheckpointReport> {
        if self.running.swap(true, Ordering::AcqRel) {
            return Ok(CheckpointReport::default());
        }
        struct RunningGuard<'a>(&'a AtomicBool);
        impl Drop for RunningGuard<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _guard = RunningGuard(&self.running);

        let live = self.registry.artifacts();
        let mut catalog = Vec::with_capacity(live.len());
        {
            let mut cache = self
                .artifacts
                .lock()
                .expect("durability artifact cache lock poisoned");
            cache.retain(|(name, version), _| {
                live.iter().any(|(n, v, _)| n == name && v == version)
            });
            for (name, version, deployment) in &live {
                let bytes = Arc::clone(
                    cache
                        .entry((name.clone(), *version))
                        .or_insert_with(|| Arc::new(deployment.to_bytes())),
                );
                catalog.push(CatalogArtifact {
                    name: name.clone(),
                    version: *version,
                    bytes,
                });
            }
        }

        let mut sessions = Vec::new();
        {
            let mut roster = self.roster.lock().expect("durability roster lock poisoned");
            roster.retain(|_, entry| entry.tracker.strong_count() > 0);
            for (&id, entry) in roster.iter() {
                let Some(tracker) = entry.tracker.upgrade() else {
                    continue;
                };
                // A poisoned tracker is skipped this round, not fatal.
                let Ok(guard) = tracker.lock() else { continue };
                let (state, frames) = (guard.export_state(), guard.frames());
                drop(guard);
                sessions.push(SessionCheckpoint {
                    id,
                    snapshot: SessionSnapshot {
                        deployment: entry.name.clone(),
                        version: entry.version,
                        gain: entry.gain,
                        frames,
                        k: entry.k,
                        m: entry.m,
                        artifact_digest: entry.artifact_digest,
                        state,
                    },
                });
            }
        }
        sessions.sort_by_key(|checkpoint| checkpoint.id);

        let report = self.store.checkpoint(&catalog, &sessions)?;
        if report.committed {
            self.metrics.record_checkpoint(report.sessions);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_mode_deployment;

    fn manifest_names(io: &MemIo) -> Vec<String> {
        let mut names = io.list().expect("list");
        names.sort();
        names
    }

    fn sample_snapshot(frames: u64) -> SessionSnapshot {
        SessionSnapshot {
            deployment: "chip-a".into(),
            version: 1,
            gain: 0.35,
            frames,
            k: 3,
            m: 6,
            artifact_digest: 0xD16E57,
            state: Some(vec![1.0, 2.0, 3.0]),
        }
    }

    fn artifact(name: &str, version: u32) -> CatalogArtifact {
        let (deployment, _) = two_mode_deployment(6, 6, 3, 6);
        CatalogArtifact {
            name: name.into(),
            version,
            bytes: Arc::new(deployment.to_bytes()),
        }
    }

    #[test]
    fn checkpoint_then_load_roundtrips() {
        let io = MemIo::new();
        let store = SnapshotStore::with_io(io.clone(), 2);
        let snapshot = sample_snapshot(7);
        let report = store
            .checkpoint(
                &[artifact("chip-a", 1)],
                &[SessionCheckpoint {
                    id: 42,
                    snapshot: snapshot.clone(),
                }],
            )
            .expect("checkpoint");
        assert!(report.committed);
        assert_eq!(report.sessions, 1);

        let contents = store.load().expect("load");
        assert_eq!(contents.skipped, 0);
        assert_eq!(contents.catalog.len(), 1);
        assert_eq!(contents.catalog[0].name, "chip-a");
        assert_eq!(contents.sessions.len(), 1);
        assert_eq!(contents.sessions[0].0, 42);
        let recovered = SessionSnapshot::from_bytes(&contents.sessions[0].1).expect("parse");
        assert_eq!(recovered, snapshot);
    }

    #[test]
    fn unchanged_checkpoint_short_circuits() {
        let io = MemIo::new();
        let store = SnapshotStore::with_io(io.clone(), 2);
        let sessions = [SessionCheckpoint {
            id: 1,
            snapshot: sample_snapshot(3),
        }];
        assert!(store.checkpoint(&[], &sessions).expect("first").committed);
        let ops = io.mutating_ops();
        let second = store.checkpoint(&[], &sessions).expect("second");
        assert!(!second.committed);
        assert_eq!(io.mutating_ops(), ops, "no-change checkpoint touched disk");
    }

    #[test]
    fn rotation_prunes_old_generations() {
        let io = MemIo::new();
        let store = SnapshotStore::with_io(io.clone(), 2);
        for frames in [1u64, 2, 3] {
            store
                .checkpoint(
                    &[],
                    &[SessionCheckpoint {
                        id: 9,
                        snapshot: sample_snapshot(frames),
                    }],
                )
                .expect("checkpoint");
        }
        let names = manifest_names(&io);
        assert!(
            !names.contains(&session_file(9, 1)),
            "gen 1 not pruned: {names:?}"
        );
        assert!(names.contains(&session_file(9, 2)));
        assert!(names.contains(&session_file(9, 3)));
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_older() {
        let io = MemIo::new();
        let store = SnapshotStore::with_io(io.clone(), 3);
        for frames in [10u64, 20] {
            store
                .checkpoint(
                    &[],
                    &[SessionCheckpoint {
                        id: 5,
                        snapshot: sample_snapshot(frames),
                    }],
                )
                .expect("checkpoint");
        }
        // Corrupt the newest generation on "disk" (external bit rot).
        io.write_all(&session_file(5, 2), b"garbage")
            .expect("write");
        io.sync(&session_file(5, 2)).expect("sync");

        let contents = store.load().expect("load");
        assert_eq!(contents.skipped, 0);
        assert_eq!(contents.sessions.len(), 1);
        let recovered = SessionSnapshot::from_bytes(&contents.sessions[0].1).expect("parse");
        assert_eq!(recovered.frames, 10, "should fall back to generation 1");
    }

    #[test]
    fn missing_store_loads_empty() {
        let store = SnapshotStore::with_io(MemIo::new(), 2);
        let contents = store.load().expect("load");
        assert_eq!(contents.skipped, 0);
        assert!(contents.catalog.is_empty());
        assert!(contents.sessions.is_empty());
    }

    #[test]
    fn newer_manifest_version_refuses_load() {
        let io = MemIo::new();
        let mut bytes = b"EMSTORE1".to_vec();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        io.write_all(MANIFEST_FILE, &bytes).expect("write");
        io.sync(MANIFEST_FILE).expect("sync");
        let store = SnapshotStore::with_io(io, 2);
        match store.load() {
            Err(ServeError::StoreVersionAhead { found, supported }) => {
                assert_eq!(found, 2);
                assert_eq!(supported, STORE_VERSION);
            }
            other => panic!("expected StoreVersionAhead, got {other:?}"),
        }
    }

    #[test]
    fn torn_manifest_is_skipped_and_metered() {
        let io = MemIo::new();
        let store = SnapshotStore::with_io(io.clone(), 2);
        store
            .checkpoint(
                &[],
                &[SessionCheckpoint {
                    id: 2,
                    snapshot: sample_snapshot(4),
                }],
            )
            .expect("checkpoint");
        let good = io.read(MANIFEST_FILE).expect("read");
        io.write_all(MANIFEST_FILE, &good[..good.len() - 3])
            .expect("write");
        io.sync(MANIFEST_FILE).expect("sync");

        let fresh = SnapshotStore::with_io(io, 2);
        let contents = fresh.load().expect("load");
        assert_eq!(contents.skipped, 1);
        assert!(contents.sessions.is_empty());
    }

    #[test]
    fn rename_of_unsynced_file_commits_empty_bytes() {
        // The hazard the write → fsync → rename discipline exists to
        // dodge: rename metadata journals, unsynced data does not.
        let io = MemIo::new();
        io.write_all("a.tmp", b"payload").expect("write");
        io.rename("a.tmp", "a.dat").expect("rename");
        io.lock().crash();
        io.revive();
        assert_eq!(io.read("a.dat").expect("read"), Vec::<u8>::new());
    }

    #[test]
    fn mem_io_crash_loses_unsynced_writes() {
        let io = MemIo::new();
        io.write_all("synced", b"stay").expect("write");
        io.sync("synced").expect("sync");
        io.write_all("volatile", b"lost").expect("write");
        io.schedule_crash(io.mutating_ops(), CrashStyle::Before);
        assert!(io.sync_dir().is_err(), "scheduled crash should fire");
        assert!(io.crashed());
        assert!(io.read("synced").is_err(), "io stays down until revive");
        io.revive();
        assert_eq!(io.read("synced").expect("read"), b"stay");
        assert!(
            io.read("volatile").is_err(),
            "unsynced write survived crash"
        );
    }

    #[test]
    fn hub_cadence_is_clock_injected() {
        let store = SnapshotStore::with_io(MemIo::new(), 2);
        let hub = DurabilityHub::new(
            store,
            Arc::new(DeploymentRegistry::default()),
            Arc::new(ServeMetrics::new(1)),
            Duration::from_millis(250),
        );
        assert!(hub.due(Duration::ZERO), "unarmed hub is due immediately");
        assert_eq!(hub.deadline(), Duration::ZERO);
        hub.arm(Duration::from_millis(100));
        assert_eq!(hub.deadline(), Duration::from_millis(350));
        assert!(!hub.due(Duration::from_millis(349)));
        assert!(hub.due(Duration::from_millis(350)));
    }

    #[test]
    fn hub_checkpoints_live_sessions_and_drops_dead_ones() {
        let registry = Arc::new(DeploymentRegistry::default());
        let (deployment, _) = two_mode_deployment(6, 6, 3, 6);
        registry.publish("chip-a", deployment);
        let metrics = Arc::new(ServeMetrics::new(1));
        let io = MemIo::new();
        let hub = DurabilityHub::new(
            SnapshotStore::with_io(io.clone(), 2),
            Arc::clone(&registry),
            Arc::clone(&metrics),
            Duration::from_secs(3600),
        );

        let mut keep = TrackerSession::open(&registry, "chip-a", 0.3).expect("open");
        keep.step(&[30.0; 6]).expect("step");
        let keep_id = hub.register(&keep);
        {
            let drop_me = TrackerSession::open(&registry, "chip-a", 0.3).expect("open");
            let _ = hub.register(&drop_me);
            assert_eq!(hub.roster_len(), 2);
        }
        assert_eq!(hub.roster_len(), 1, "dead session pruned from roster");

        let report = hub.checkpoint_now().expect("checkpoint");
        assert!(report.committed);
        assert_eq!(report.sessions, 1);
        assert_eq!(metrics.snapshot().wire.checkpoints, 1);

        let contents = SnapshotStore::with_io(io, 2).load().expect("load");
        assert_eq!(contents.sessions.len(), 1);
        assert_eq!(contents.sessions[0].0, keep_id);
        let snapshot = SessionSnapshot::from_bytes(&contents.sessions[0].1).expect("parse");
        assert_eq!(snapshot.frames, 1);
        assert_eq!(contents.catalog.len(), 1);
    }

    #[test]
    fn overlapping_checkpoints_collapse() {
        let hub = DurabilityHub::new(
            SnapshotStore::with_io(MemIo::new(), 2),
            Arc::new(DeploymentRegistry::default()),
            Arc::new(ServeMetrics::new(1)),
            Duration::from_secs(1),
        );
        hub.running.store(true, Ordering::Release);
        let report = hub.checkpoint_now().expect("checkpoint");
        assert!(!report.committed);
        hub.running.store(false, Ordering::Release);
    }

    #[test]
    fn adopt_keeps_fresh_ids_past_preserved_ones() {
        let registry = Arc::new(DeploymentRegistry::default());
        let (deployment, _) = two_mode_deployment(6, 6, 3, 6);
        registry.publish("chip-a", deployment);
        let hub = DurabilityHub::new(
            SnapshotStore::with_io(MemIo::new(), 2),
            Arc::clone(&registry),
            Arc::new(ServeMetrics::new(1)),
            Duration::from_secs(1),
        );
        let session = TrackerSession::open(&registry, "chip-a", 0.3).expect("open");
        hub.adopt(17, &session);
        let fresh = TrackerSession::open(&registry, "chip-a", 0.3).expect("open");
        assert_eq!(hub.register(&fresh), 18);
    }
}
