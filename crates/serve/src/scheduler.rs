//! The pure micro-batching scheduler: per-tenant pending queues, per-session
//! stream lanes, a fairness rotation and size/latency budgets as a
//! clock-injected state machine.
//!
//! [`Scheduler`] makes every coalesce/flush decision for the [`Server`]
//! front end, but holds no threads, no channels and no real clock: time is
//! a plain [`Duration`] since an epoch the caller picks, injected into
//! [`Scheduler::submit`] and [`Scheduler::tick`]. The thread that drives
//! it (the batcher inside [`Server`]) merely feeds arrivals in and
//! executes the returned [`Decision`]s — which means every scheduling
//! property (fairness under interleaved tenants, fairness between streams
//! and batches, latency-budget expiry, version pinning across hot swap) is
//! testable deterministically with a mock clock and zero sleeps. See
//! `crates/serve/tests/scheduler.rs`.
//!
//! # Why per-tenant queues
//!
//! Coalescing is only valid within one pinned artifact, so a FIFO batcher
//! must flush whenever consecutive requests pin different deployments —
//! interleaved multi-tenant traffic degrades to one-request batches. The
//! scheduler instead keeps **one pending queue per [`TenantKey`]** (a
//! deployment name at a pinned version): a tenant's requests coalesce
//! across the gaps other tenants' traffic punches into the arrival order,
//! and each queue enforces its own size and latency budgets.
//!
//! # Stream lanes
//!
//! A streaming session ([`TrackerSession`]) is *stateful*: its steps must
//! execute one at a time, in order, against its private temporal-filter
//! state, so steps can never coalesce the way batch requests do. Rather
//! than a side channel that bypasses scheduling (the pre-PR design), each
//! session gets a **stream lane** — keyed by [`StreamId`] — in the *same*
//! fairness rotation as the batch queues. A queued step is always ready
//! (a monitor control loop is latency-critical; there is nothing to
//! coalesce it with), so [`Scheduler::tick`] interleaves one step per
//! lane per rotation pass with the batch flushes: a backlogged stream
//! cannot starve batch tenants, and heavy batch traffic cannot starve a
//! stream. After a tick returns, every stream lane is drained.
//!
//! # Fairness rotation
//!
//! Ready lanes are granted round-robin: [`Scheduler::tick`] scans the
//! rotation in order, and **every granted lane moves to the rotation's
//! back**, so a lane with a deep backlog cannot starve the others — its
//! second grant is decided only after every other ready lane got one —
//! and a lane that is never ready costs one inspection per tick.
//! Latency is bounded tenant-locally: each queue's oldest request expires
//! the queue's own [`BatchPolicy::max_delay`] deadline regardless of what
//! other tenants do. Per-tenant [`BatchPolicy::weight`] scales the grant:
//! a weight-`w` tenant takes up to `w` budget-capped batches each time the
//! rotation reaches it, so contended throughput is proportional to weight
//! while every other ready lane still gets its turn every pass.
//!
//! # Per-tenant policy overrides
//!
//! The global [`BatchPolicy`] can be overridden per deployment name with
//! [`Scheduler::set_tenant_policy`] (latency-tiered SKUs: a premium
//! tenant gets a tight `max_delay`, a bulk tenant big batches). Readiness,
//! batch sizing and deadline computation all consult the override, falling
//! back to the global policy; overrides are keyed by name, so they follow
//! the tenant across hot-swap version bumps.
//!
//! # Deadline QoS and brownout
//!
//! Two overload mechanisms ride on the same policy, both judged at the
//! start of every tick, before the fairness scan:
//!
//! - **Load shedding.** A tenant with [`BatchPolicy::deadline`]`: Some`
//!   and [`OverrunAction::Shed`] has every queued job whose budget is
//!   already blown popped into a [`Decision::Shed`] — at the exact
//!   deadline instant (`enqueued + deadline <= now`), never earlier. A
//!   blown job is never served; the driver completes it with a typed
//!   retryable error.
//! - **Brownout.** [`Scheduler::set_brownout`] installs pending-frame
//!   watermarks with hysteresis: reaching [`BrownoutPolicy::enter_above`]
//!   total pending frames enters brownout, falling back to
//!   [`BrownoutPolicy::exit_below`] exits it, and the band between the
//!   two holds the current state so the mode cannot flap. While in
//!   brownout (and whenever one of its jobs overran its deadline), an
//!   [`OverrunAction::Degrade`]` { keep_k }` tenant's flushes carry
//!   [`FlushDecision::degraded`]` = Some(keep_k)`: the driver serves
//!   them against a `keep_k`-mode truncated deployment — a coarse map on
//!   time instead of an exact one late, per the EigenMaps low-rank
//!   tradeoff.
//!
//! # Example (mock clock)
//!
//! ```
//! use std::time::Duration;
//! use eigenmaps_serve::{BatchPolicy, FlushReason, Scheduler, StreamId, TenantKey};
//!
//! let policy = BatchPolicy {
//!     max_batch_frames: 256,
//!     max_batch_requests: 3,
//!     max_delay: Duration::from_millis(1),
//!     ..BatchPolicy::default()
//! };
//! let mut sched: Scheduler<&'static str> = Scheduler::new(policy);
//! let (a, b) = (TenantKey::new("alpha", 1), TenantKey::new("beta", 1));
//!
//! // Interleaved sub-budget traffic: nothing flushes yet.
//! sched.submit(Duration::ZERO, a.clone(), 4, "a0");
//! sched.submit(Duration::ZERO, b.clone(), 4, "b0");
//! sched.submit(Duration::from_micros(10), a.clone(), 4, "a1");
//! assert!(sched.tick(Duration::from_micros(10)).is_empty());
//!
//! // A third request fills alpha's request budget: alpha flushes as one
//! // three-request batch; beta keeps waiting on its own deadline. A
//! // queued stream step is always ready and is granted in the same tick.
//! sched.submit(Duration::from_micros(20), a.clone(), 4, "a2");
//! sched.submit_stream(StreamId(9), "step0");
//! let decisions = sched.tick(Duration::from_micros(20));
//! assert_eq!(decisions.len(), 2);
//! let batch = decisions[0].as_batch().unwrap();
//! assert_eq!(batch.tenant, a);
//! assert_eq!(batch.reason, FlushReason::RequestBudget);
//! assert_eq!(batch.jobs, vec!["a0", "a1", "a2"]);
//! let step = decisions[1].as_step().unwrap();
//! assert_eq!((step.stream, step.job), (StreamId(9), "step0"));
//!
//! // Beta's latency budget expires exactly at its deadline.
//! assert_eq!(sched.next_deadline(), Some(Duration::from_millis(1)));
//! assert!(sched.tick(Duration::from_micros(999)).is_empty());
//! let expired = sched.tick(Duration::from_millis(1));
//! let batch = expired[0].as_batch().unwrap();
//! assert_eq!(batch.reason, FlushReason::DeadlineExpired);
//! assert_eq!(batch.jobs, vec!["b0"]);
//! assert!(sched.is_idle());
//! ```
//!
//! [`Server`]: crate::Server
//! [`TrackerSession`]: crate::TrackerSession

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

use crate::trace::{FlightRecorder, RejectReason, Stage, TraceRef};

/// When the micro-batcher flushes a coalesced batch, enforced **per
/// tenant** (per pinned `(name, version)` queue).
///
/// Each tenant's pending queue flushes as soon as it alone holds
/// [`max_batch_frames`](BatchPolicy::max_batch_frames) frames or
/// [`max_batch_requests`](BatchPolicy::max_batch_requests) requests, or
/// when its own oldest request has waited
/// [`max_delay`](BatchPolicy::max_delay) — other tenants' traffic never
/// advances or postpones these budgets. A batch may exceed
/// `max_batch_frames` by at most one request's frames (requests are
/// atomic, never split across batches).
///
/// ```
/// use std::time::Duration;
/// use eigenmaps_serve::{BatchPolicy, Scheduler, TenantKey};
///
/// // Per-tenant budgets: two tenants fill independently.
/// let policy = BatchPolicy {
///     max_batch_frames: 8,
///     ..BatchPolicy::default()
/// };
/// let mut sched: Scheduler<u32> = Scheduler::new(policy);
/// sched.submit(Duration::ZERO, TenantKey::new("a", 1), 5, 0);
/// sched.submit(Duration::ZERO, TenantKey::new("b", 1), 5, 1);
/// // Ten frames are pending overall, but neither tenant reached its own
/// // 8-frame budget, so nothing flushes.
/// assert!(sched.tick(Duration::ZERO).is_empty());
/// sched.submit(Duration::ZERO, TenantKey::new("a", 1), 3, 2);
/// assert_eq!(sched.tick(Duration::ZERO).len(), 1); // only tenant a
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush a tenant once its pending queue holds at least this many
    /// frames.
    pub max_batch_frames: usize,
    /// Flush a tenant once this many of its requests are pending.
    pub max_batch_requests: usize,
    /// Flush a tenant once its oldest pending request has waited this
    /// long — the latency budget a small lone request pays at worst. An
    /// unrepresentable deadline (`enqueue + max_delay` overflows
    /// `Duration`, e.g. [`Duration::MAX`]) disables the latency budget:
    /// that tenant flushes by size only.
    pub max_delay: Duration,
    /// Admission-control bound used by [`Server::try_submit`]: the
    /// nonblocking front door reports saturation instead of queueing once
    /// a tenant already has this many requests pending. The blocking
    /// [`Server::submit`] path ignores it (back-compat, unbounded).
    ///
    /// [`Server::try_submit`]: crate::Server::try_submit
    /// [`Server::submit`]: crate::Server::submit
    pub max_pending_per_tenant: usize,
    /// Fairness weight: how many batch grants this tenant may take per
    /// rotation pass of [`Scheduler::tick`]. A weight-3 tenant flushes up
    /// to three budget-capped batches each time the rotation reaches it,
    /// where a weight-1 tenant flushes one — proportional throughput under
    /// contention with no starvation (every other ready lane is still
    /// granted once per pass). `0` is treated as `1`; the weight has no
    /// effect while the tenant is alone or under budget (nothing ready to
    /// flush is never flushed early). Set per tenant via
    /// [`Server::set_tenant_policy`].
    ///
    /// [`Server::set_tenant_policy`]: crate::Server::set_tenant_policy
    pub weight: u32,
    /// End-to-end latency budget for this tenant's requests, measured
    /// from their enqueue stamp. `None` (the default) disables deadline
    /// judging. A request still queued once the budget elapses is
    /// *overrun* and handled per [`BatchPolicy::overrun`]: shed at the
    /// next [`Scheduler::tick`], or served degraded. The budget should be
    /// at least [`max_delay`](BatchPolicy::max_delay) — below it, a
    /// `Shed` tenant's requests expire before the coalescing deadline
    /// ever flushes them.
    pub deadline: Option<Duration>,
    /// What to do with this tenant's overrun work (and, for
    /// [`OverrunAction::Degrade`], with its batches while the scheduler
    /// is in brownout). See [`OverrunAction`].
    pub overrun: OverrunAction,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_frames: 256,
            max_batch_requests: 64,
            max_delay: Duration::from_millis(2),
            max_pending_per_tenant: 1024,
            weight: 1,
            deadline: None,
            overrun: OverrunAction::Shed,
        }
    }
}

/// How a tenant's work is handled once its [`BatchPolicy::deadline`] is
/// blown — the QoS half of the policy.
///
/// `Shed` is the premium-tier choice: a control loop that missed its
/// window wants the typed refusal *now* (and will retry with fresh
/// readings) rather than a stale answer late. `Degrade` is the bulk-tier
/// choice: serve the request anyway, but against a
/// [`truncated`](eigenmaps_core::Deployment::truncated) `keep_k`-mode
/// deployment — a coarse map on time instead of an exact one late.
/// `Degrade` tenants are also the ones brownout downgrades: while the
/// scheduler is in brownout (see [`BrownoutPolicy`]), *every* flush of a
/// `Degrade` tenant carries the degrade marker, deadline blown or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverrunAction {
    /// Drop overrun requests at tick time: the scheduler emits
    /// [`Decision::Shed`] and the driver completes them with a typed
    /// retryable error.
    Shed,
    /// Serve overrun (and in-brownout) batches against a deployment
    /// truncated to its `keep_k` strongest modes.
    Degrade {
        /// How many eigenmode coefficients the degraded deployment
        /// keeps (clamped by the driver to the deployment's own `k`).
        keep_k: usize,
    },
}

/// Brownout hysteresis on the scheduler's total pending frames.
///
/// At the start of every [`Scheduler::tick`], the scheduler compares its
/// pending-frame total against this band: **enter** brownout when the
/// total reaches `enter_above`, **exit** once it falls back to
/// `exit_below` or less. The gap between the two watermarks is what
/// keeps the mode from flapping — between them the current state holds.
/// While in brownout, every flush of an [`OverrunAction::Degrade`]
/// tenant carries [`FlushDecision::degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutPolicy {
    /// Enter brownout when pending frames reach this high watermark.
    pub enter_above: usize,
    /// Exit brownout once pending frames fall to this low watermark or
    /// below. Must be below `enter_above` for the hysteresis band to
    /// exist; an inverted band degenerates to judging `enter_above`
    /// alone.
    pub exit_below: usize,
}

/// Identity of one pending queue: a deployment name at the version pinned
/// when the request was admitted.
///
/// Hot-swapping a tenant's deployment changes the version and therefore
/// the key, so requests pinned to the old artifact keep coalescing among
/// themselves (and are never mixed with new-version requests) while both
/// drain — version pinning falls out of the queue identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantKey {
    /// Registry name of the deployment.
    pub name: String,
    /// Pinned registry version.
    pub version: u32,
}

impl TenantKey {
    /// A key for `name` pinned at `version`.
    pub fn new(name: impl Into<String>, version: u32) -> Self {
        TenantKey {
            name: name.into(),
            version,
        }
    }
}

impl fmt::Display for TenantKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@v{}", self.name, self.version)
    }
}

/// Identity of one stream lane: a streaming session whose steps are
/// scheduled one at a time through the fairness rotation.
///
/// Allocated by the [`Server`](crate::Server) front end (one per open
/// [`TrackerSession`](crate::TrackerSession)); the scheduler treats it as
/// an opaque lane id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// One lane in the fairness rotation: a batch tenant queue or a session
/// stream lane.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LaneKey {
    Tenant(TenantKey),
    Stream(StreamId),
}

/// Why a [`FlushDecision`] was made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The tenant's pending frames reached
    /// [`BatchPolicy::max_batch_frames`].
    FrameBudget,
    /// The tenant's pending requests reached
    /// [`BatchPolicy::max_batch_requests`].
    RequestBudget,
    /// The tenant's oldest pending request waited
    /// [`BatchPolicy::max_delay`].
    DeadlineExpired,
    /// The scheduler was drained (shutdown).
    Drain,
}

/// One coalesced batch the driver must now execute: a tenant's oldest
/// pending jobs, in submission order, with the frame total precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushDecision<T> {
    /// Which pending queue flushed.
    pub tenant: TenantKey,
    /// Which budget triggered the flush.
    pub reason: FlushReason,
    /// Total frames across `jobs`.
    pub frames: usize,
    /// The job payloads, oldest first — for the serving driver these are
    /// the queued requests; tests use plain markers.
    pub jobs: Vec<T>,
    /// `Some(keep_k)` when this batch must be served degraded against a
    /// deployment truncated to `keep_k` modes: the tenant's
    /// [`OverrunAction::Degrade`] fired, either because the scheduler is
    /// in brownout or because a job in the batch overran its
    /// [`BatchPolicy::deadline`]. `None` serves exact.
    pub degraded: Option<usize>,
}

/// Requests the scheduler refused at tick time because their
/// [`BatchPolicy::deadline`] was already blown and the tenant's overrun
/// action is [`OverrunAction::Shed`]. The driver must still complete
/// every job — with a typed retryable error, not silence (no lost
/// tickets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedDecision<T> {
    /// Which pending queue the jobs were shed from.
    pub tenant: TenantKey,
    /// The deadline budget the jobs overran.
    pub deadline: Duration,
    /// Total frames across `jobs`.
    pub frames: usize,
    /// The shed job payloads, oldest first.
    pub jobs: Vec<T>,
}

/// One granted stream step: the session lane it belongs to and its job
/// payload. Steps are granted strictly one per rotation pass, in FIFO
/// order within a lane — the driver executes them sequentially, which is
/// what keeps a stateful session's temporal filter well-ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepDecision<T> {
    /// Which stream lane the step came from.
    pub stream: StreamId,
    /// The step payload (for the serving driver, the queued readings).
    pub job: T,
}

/// One unit of work the driver must now execute, in fairness order: a
/// coalesced tenant batch or a single session stream step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision<T> {
    /// Flush a tenant's coalesced batch.
    Batch(FlushDecision<T>),
    /// Execute one stream step.
    Step(StepDecision<T>),
    /// Complete these deadline-blown jobs with a typed retryable error.
    Shed(ShedDecision<T>),
}

impl<T> Decision<T> {
    /// The batch decision, if this is one.
    pub fn as_batch(&self) -> Option<&FlushDecision<T>> {
        match self {
            Decision::Batch(d) => Some(d),
            _ => None,
        }
    }

    /// The step decision, if this is one.
    pub fn as_step(&self) -> Option<&StepDecision<T>> {
        match self {
            Decision::Step(d) => Some(d),
            _ => None,
        }
    }

    /// The shed decision, if this is one.
    pub fn as_shed(&self) -> Option<&ShedDecision<T>> {
        match self {
            Decision::Shed(d) => Some(d),
            _ => None,
        }
    }

    /// Consumes into the batch decision, if this is one.
    pub fn into_batch(self) -> Option<FlushDecision<T>> {
        match self {
            Decision::Batch(d) => Some(d),
            _ => None,
        }
    }

    /// Consumes into the step decision, if this is one.
    pub fn into_step(self) -> Option<StepDecision<T>> {
        match self {
            Decision::Step(d) => Some(d),
            _ => None,
        }
    }

    /// Consumes into the shed decision, if this is one.
    pub fn into_shed(self) -> Option<ShedDecision<T>> {
        match self {
            Decision::Shed(d) => Some(d),
            _ => None,
        }
    }
}

/// One queued job: its frame count, arrival time, trace handle and
/// opaque payload.
#[derive(Debug)]
struct Job<T> {
    frames: usize,
    enqueued_at: Duration,
    trace: TraceRef,
    payload: T,
}

/// One tenant's pending queue with its frame total maintained inline.
#[derive(Debug)]
struct TenantQueue<T> {
    jobs: VecDeque<Job<T>>,
    frames: usize,
}

impl<T> Default for TenantQueue<T> {
    fn default() -> Self {
        TenantQueue {
            jobs: VecDeque::new(),
            frames: 0,
        }
    }
}

/// The pure coalesce/flush state machine. See the [module docs](self) for
/// the design and a worked example.
///
/// Invariant: a lane (tenant queue or stream lane) appears in the rotation
/// iff it has a non-empty queue, and the rotation order is the fairness
/// order (front = served next among ready lanes).
#[derive(Debug)]
pub struct Scheduler<T> {
    policy: BatchPolicy,
    /// Per-deployment-name policy overrides (latency-tiered SKUs), keyed
    /// by name so they survive hot-swap version bumps.
    overrides: HashMap<String, BatchPolicy>,
    tenants: HashMap<TenantKey, TenantQueue<T>>,
    /// Pending steps per stream lane, FIFO.
    streams: HashMap<StreamId, VecDeque<T>>,
    rotation: VecDeque<LaneKey>,
    /// The flight recorder lane events are emitted to, if one is
    /// attached ([`Scheduler::set_recorder`]).
    recorder: Option<FlightRecorder>,
    /// The most recent clock value seen by `submit`/`tick` — the
    /// timestamp [`Scheduler::drain`] (which takes no clock) stamps its
    /// coalesce events with.
    last_now: Duration,
    /// Brownout watermarks; `None` disables brownout entirely.
    brownout: Option<BrownoutPolicy>,
    /// Whether the scheduler is currently in brownout. Re-judged at the
    /// start of every tick under the hysteresis band.
    in_brownout: bool,
}

impl<T> Scheduler<T> {
    /// A scheduler enforcing `policy` per tenant.
    pub fn new(policy: BatchPolicy) -> Self {
        Scheduler {
            policy,
            overrides: HashMap::new(),
            tenants: HashMap::new(),
            streams: HashMap::new(),
            rotation: VecDeque::new(),
            recorder: None,
            last_now: Duration::ZERO,
            brownout: None,
            in_brownout: false,
        }
    }

    /// Attaches a [`FlightRecorder`]: from now on the scheduler emits
    /// [`Stage::Enqueued`] for every traced submission and
    /// [`Stage::Coalesced`] for every job it folds into a batch. Jobs
    /// submitted through the untraced [`Scheduler::submit`] (or with
    /// [`TraceRef::NONE`]) emit nothing.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = Some(recorder);
    }

    /// The global (fallback) policy this scheduler enforces.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Installs (`Some`) or clears (`None`) a per-tenant policy override
    /// for every version of deployment `name`. Takes effect from the next
    /// readiness inspection: already-queued requests are re-judged under
    /// the new budgets on the following [`Scheduler::tick`].
    pub fn set_tenant_policy(&mut self, name: impl Into<String>, policy: Option<BatchPolicy>) {
        match policy {
            Some(policy) => {
                self.overrides.insert(name.into(), policy);
            }
            None => {
                self.overrides.remove(&name.into());
            }
        }
    }

    /// The policy in force for deployment `name` — its override if one is
    /// installed, else the global policy.
    pub fn tenant_policy(&self, name: &str) -> BatchPolicy {
        *self.overrides.get(name).unwrap_or(&self.policy)
    }

    /// Installs (`Some`) or disables (`None`) brownout watermarks. State
    /// is re-judged at the start of the next [`Scheduler::tick`];
    /// disabling while in brownout exits immediately.
    pub fn set_brownout(&mut self, policy: Option<BrownoutPolicy>) {
        self.brownout = policy;
        if policy.is_none() {
            self.in_brownout = false;
        }
    }

    /// The installed brownout watermarks, if any.
    pub fn brownout_policy(&self) -> Option<BrownoutPolicy> {
        self.brownout
    }

    /// Whether the scheduler is currently in brownout (as of the last
    /// tick's judgment).
    pub fn in_brownout(&self) -> bool {
        self.in_brownout
    }

    /// The policy in force for one pinned tenant queue.
    fn policy_for(&self, key: &TenantKey) -> &BatchPolicy {
        self.overrides.get(&key.name).unwrap_or(&self.policy)
    }

    /// Enqueues a job of `frames` frames for `tenant`, stamped `now` for
    /// its latency budget. Decisions are made only by [`Scheduler::tick`]
    /// — call it after submitting. The stamp may lag the tick clock (the
    /// serving driver passes the client's submit time, so waiting to be
    /// fed into the scheduler already counts against the budget); a stamp
    /// whose deadline is already past simply flushes on the next tick.
    pub fn submit(&mut self, now: Duration, tenant: TenantKey, frames: usize, payload: T) {
        self.submit_traced(now, tenant, frames, TraceRef::NONE, payload);
    }

    /// [`Scheduler::submit`] with a flight-recorder handle: when a
    /// recorder is attached ([`Scheduler::set_recorder`]) and `trace` is
    /// live, the scheduler emits [`Stage::Enqueued`] now and
    /// [`Stage::Coalesced`] when the job is folded into a batch.
    pub fn submit_traced(
        &mut self,
        now: Duration,
        tenant: TenantKey,
        frames: usize,
        trace: TraceRef,
        payload: T,
    ) {
        self.last_now = self.last_now.max(now);
        if trace.is_traced() {
            if let Some(recorder) = &self.recorder {
                recorder.event(trace, Stage::Enqueued, now);
            }
        }
        if !self.tenants.contains_key(&tenant) {
            self.rotation.push_back(LaneKey::Tenant(tenant.clone()));
        }
        let queue = self.tenants.entry(tenant).or_default();
        queue.frames += frames;
        queue.jobs.push_back(Job {
            frames,
            enqueued_at: now,
            trace,
            payload,
        });
    }

    /// Enqueues one session step for `stream`'s lane. Steps carry no
    /// coalescing budgets or latency stamp: a queued step is always ready,
    /// and [`Scheduler::tick`] grants one per lane per rotation pass —
    /// interleaved fairly with batch flushes — until every stream lane is
    /// drained.
    pub fn submit_stream(&mut self, stream: StreamId, payload: T) {
        if !self.streams.contains_key(&stream) {
            self.rotation.push_back(LaneKey::Stream(stream));
        }
        self.streams.entry(stream).or_default().push_back(payload);
    }

    /// Decides every unit of work due at time `now`, in fairness order:
    /// the rotation is scanned in place, every granted lane (a flushed
    /// tenant or a stepped stream) moves to the rotation's back, and the
    /// scan ends once a full rotation's worth of consecutive lanes was
    /// inspected without a grant — so a backlogged lane's next grant is
    /// decided only after every other ready lane got one. Batch and step
    /// decisions interleave in the returned vec exactly as granted; the
    /// driver executes them in order. Returns an empty vec when nothing is
    /// due. Since stream steps are always ready, every stream lane is
    /// empty once `tick` returns.
    ///
    /// The common no-op tick (nothing ready) inspects each lane once and
    /// allocates nothing; a tenant key is cloned only when it actually
    /// flushes. Readiness is monotone within a tick (fixed `now`, no
    /// submits, queues only shrink), so one inspection per non-ready lane
    /// is sufficient.
    ///
    /// QoS runs first, before the fairness scan: brownout state is
    /// re-judged once against the pending-frame watermarks
    /// ([`Scheduler::set_brownout`]), then every `Shed`-tenant job whose
    /// [`BatchPolicy::deadline`] is blown at `now` is popped into a
    /// [`Decision::Shed`] — a blown job is never served. Shedding fires
    /// at the exact deadline instant: a job enqueued at `t` with budget
    /// `d` is shed by `tick(t + d)` and untouched by any earlier tick.
    pub fn tick(&mut self, now: Duration) -> Vec<Decision<T>> {
        self.last_now = self.last_now.max(now);
        let mut decisions = Vec::new();
        self.judge_brownout();
        self.shed_expired(now, &mut decisions);
        let mut idx = 0usize;
        let mut since_grant = 0usize;
        while since_grant < self.rotation.len() {
            if idx >= self.rotation.len() {
                idx = 0;
            }
            // Granting removes the lane at `idx` (re-appending it at the
            // back while backlogged), shifting the next candidate into
            // `idx` — don't advance after a grant. The one exception is a
            // granted lane that was already at the rotation's back:
            // re-appending leaves it at `idx`, so wrap the scan to the
            // front instead of re-inspecting it — the documented order
            // visits every other lane before a granted lane's next turn.
            let granted = match &self.rotation[idx] {
                LaneKey::Tenant(key) => match self.readiness(key, now) {
                    Some(reason) => {
                        let key = key.clone();
                        // Weighted grant: the tenant's policy buys it up to
                        // `weight` budget-capped batches in this pass — each
                        // re-judged for readiness, so the extra grants stop
                        // the moment the queue drops under budget.
                        let weight = self.policy_for(&key).weight.max(1);
                        decisions.push(Decision::Batch(self.take_batch(&key, reason, now)));
                        for _ in 1..weight {
                            match self.readiness(&key, now) {
                                Some(reason) => {
                                    decisions
                                        .push(Decision::Batch(self.take_batch(&key, reason, now)));
                                }
                                None => break,
                            }
                        }
                        Some(LaneKey::Tenant(key))
                    }
                    None => None,
                },
                LaneKey::Stream(id) => {
                    let id = *id;
                    decisions.push(Decision::Step(self.take_step(id)));
                    Some(LaneKey::Stream(id))
                }
            };
            match granted {
                Some(lane) => {
                    since_grant = 0;
                    if self.rotation.get(idx) == Some(&lane) {
                        idx = 0;
                    }
                }
                None => {
                    idx += 1;
                    since_grant += 1;
                }
            }
        }
        decisions
    }

    /// Re-judges brownout state against the pending-frame watermarks,
    /// with hysteresis: enter at `enter_above`, exit at `exit_below`,
    /// hold in between.
    fn judge_brownout(&mut self) {
        let Some(policy) = self.brownout else {
            return;
        };
        let pending = self.pending_frames();
        if self.in_brownout {
            if pending <= policy.exit_below {
                self.in_brownout = false;
            }
        } else if pending >= policy.enter_above {
            self.in_brownout = true;
        }
    }

    /// Pops every deadline-blown job belonging to a `Shed` tenant into
    /// one [`ShedDecision`] per tenant, in rotation order. Blown jobs
    /// are a queue prefix under a monotone submit clock, so the pop
    /// stops at the first job still within budget. Traced sheds emit
    /// [`Stage::Rejected`] with [`RejectReason::DeadlineShed`] at `now`;
    /// the driver stamps the terminal reject on the card itself.
    fn shed_expired(&mut self, now: Duration, decisions: &mut Vec<Decision<T>>) {
        let lanes: Vec<TenantKey> = self
            .rotation
            .iter()
            .filter_map(|lane| match lane {
                LaneKey::Tenant(key) => {
                    let policy = self.policy_for(key);
                    (policy.deadline.is_some() && policy.overrun == OverrunAction::Shed)
                        .then(|| key.clone())
                }
                LaneKey::Stream(_) => None,
            })
            .collect();
        for key in lanes {
            let budget = self
                .policy_for(&key)
                .deadline
                .expect("lane filtered on deadline");
            let Some(queue) = self.tenants.get_mut(&key) else {
                continue;
            };
            let mut jobs = Vec::new();
            let mut frames = 0usize;
            while let Some(job) = queue.jobs.front() {
                let blown = job
                    .enqueued_at
                    .checked_add(budget)
                    .is_some_and(|deadline| deadline <= now);
                if !blown {
                    break;
                }
                let job = queue.jobs.pop_front().expect("front exists");
                queue.frames -= job.frames;
                frames += job.frames;
                if job.trace.is_traced() {
                    if let Some(recorder) = &self.recorder {
                        recorder.event(job.trace, Stage::Rejected(RejectReason::DeadlineShed), now);
                    }
                }
                jobs.push(job.payload);
            }
            if jobs.is_empty() {
                continue;
            }
            if queue.jobs.is_empty() {
                self.tenants.remove(&key);
                let lane = LaneKey::Tenant(key.clone());
                if let Some(pos) = self.rotation.iter().position(|k| k == &lane) {
                    self.rotation.remove(pos);
                }
            }
            decisions.push(Decision::Shed(ShedDecision {
                tenant: key,
                deadline: budget,
                frames,
                jobs,
            }));
        }
    }

    /// Flushes everything still pending (shutdown), round-robin across
    /// lanes, still respecting the size budgets per batch.
    pub fn drain(&mut self) -> Vec<Decision<T>> {
        let now = self.last_now;
        let mut decisions = Vec::new();
        while let Some(lane) = self.rotation.front().cloned() {
            decisions.push(match lane {
                LaneKey::Tenant(key) => {
                    Decision::Batch(self.take_batch(&key, FlushReason::Drain, now))
                }
                LaneKey::Stream(id) => Decision::Step(self.take_step(id)),
            });
        }
        decisions
    }

    /// The earliest latency-budget deadline across all tenants (each under
    /// the policy in force for it) — when the next [`Scheduler::tick`] is
    /// due absent new submissions. `None` when idle or when every pending
    /// tenant's deadline is unrepresentable (flush-by-size-only). Stream
    /// steps never appear here: they are always ready, so the driver ticks
    /// immediately after submitting one.
    pub fn next_deadline(&self) -> Option<Duration> {
        self.tenants
            .iter()
            .filter_map(|(key, q)| {
                let job = q.jobs.front()?;
                let policy = self.policy_for(key);
                let flush = job.enqueued_at.checked_add(policy.max_delay);
                // A `Shed` tenant's request deadline is a tick instant
                // too: the driver must wake to shed it on time even when
                // the budget is tighter than the coalescing delay.
                let shed = match (policy.deadline, policy.overrun) {
                    (Some(budget), OverrunAction::Shed) => job.enqueued_at.checked_add(budget),
                    _ => None,
                };
                match (flush, shed) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .min()
    }

    /// Whether no job is pending anywhere — no batch request and no
    /// stream step.
    pub fn is_idle(&self) -> bool {
        self.tenants.is_empty() && self.streams.is_empty()
    }

    /// Total pending requests across all tenants.
    pub fn pending_requests(&self) -> usize {
        self.tenants.values().map(|q| q.jobs.len()).sum()
    }

    /// Total pending frames across all tenants.
    pub fn pending_frames(&self) -> usize {
        self.tenants.values().map(|q| q.frames).sum()
    }

    /// Number of tenants with a non-empty queue.
    pub fn pending_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Pending requests queued for one tenant (0 if none).
    pub fn tenant_depth(&self, tenant: &TenantKey) -> usize {
        self.tenants.get(tenant).map_or(0, |q| q.jobs.len())
    }

    /// Total pending stream steps across all lanes. Nonzero only between
    /// a [`Scheduler::submit_stream`] and the next tick.
    pub fn pending_steps(&self) -> usize {
        self.streams.values().map(VecDeque::len).sum()
    }

    /// Pending steps queued for one stream lane (0 if none).
    pub fn stream_depth(&self, stream: StreamId) -> usize {
        self.streams.get(&stream).map_or(0, VecDeque::len)
    }

    /// Which budget (if any) makes `key` flushable at `now`, under the
    /// policy in force for that tenant.
    fn readiness(&self, key: &TenantKey, now: Duration) -> Option<FlushReason> {
        let policy = self.policy_for(key);
        let queue = self.tenants.get(key)?;
        if queue.frames >= policy.max_batch_frames {
            return Some(FlushReason::FrameBudget);
        }
        if queue.jobs.len() >= policy.max_batch_requests {
            return Some(FlushReason::RequestBudget);
        }
        let oldest = queue.jobs.front()?;
        match oldest.enqueued_at.checked_add(policy.max_delay) {
            Some(deadline) if deadline <= now => Some(FlushReason::DeadlineExpired),
            _ => None,
        }
    }

    /// Pops one batch off `key`'s queue (oldest first, until a size budget
    /// of the tenant's policy fills or the queue empties) and rotates the
    /// tenant to the back. Stamps every traced job with
    /// [`Stage::Coalesced`] at `now`, carrying the batch's request count.
    fn take_batch(
        &mut self,
        key: &TenantKey,
        reason: FlushReason,
        now: Duration,
    ) -> FlushDecision<T> {
        let policy = *self.policy_for(key);
        // A `Degrade` tenant's batch is marked degraded while the
        // scheduler is in brownout, or when any job folded into it has
        // already overrun the tenant's deadline (serve coarse on time
        // rather than exact late).
        let degrade_keep = match policy.overrun {
            OverrunAction::Degrade { keep_k } => Some(keep_k),
            OverrunAction::Shed => None,
        };
        let mut degraded = degrade_keep.filter(|_| self.in_brownout);
        let queue = self.tenants.get_mut(key).expect("flushed tenant exists");
        let mut jobs = Vec::new();
        let mut traces = Vec::new();
        let mut frames = 0usize;
        while let Some(job) = queue.jobs.pop_front() {
            frames += job.frames;
            queue.frames -= job.frames;
            if degraded.is_none() {
                if let (Some(keep), Some(budget)) = (degrade_keep, policy.deadline) {
                    let blown = job
                        .enqueued_at
                        .checked_add(budget)
                        .is_some_and(|deadline| deadline <= now);
                    if blown {
                        degraded = Some(keep);
                    }
                }
            }
            if job.trace.is_traced() {
                traces.push(job.trace);
            }
            jobs.push(job.payload);
            if frames >= policy.max_batch_frames || jobs.len() >= policy.max_batch_requests {
                break;
            }
        }
        if let Some(recorder) = &self.recorder {
            let stage = Stage::Coalesced {
                requests: jobs.len() as u32,
            };
            for trace in traces {
                recorder.event(trace, stage, now);
            }
        }
        let emptied = queue.jobs.is_empty();
        if emptied {
            self.tenants.remove(key);
        }
        let lane = LaneKey::Tenant(key.clone());
        if let Some(pos) = self.rotation.iter().position(|k| k == &lane) {
            self.rotation.remove(pos);
        }
        if !emptied {
            self.rotation.push_back(lane);
        }
        FlushDecision {
            tenant: key.clone(),
            reason,
            frames,
            jobs,
            degraded,
        }
    }

    /// Pops one step off `id`'s lane (FIFO) and rotates the lane to the
    /// back (or retires it when emptied).
    fn take_step(&mut self, id: StreamId) -> StepDecision<T> {
        let lane = self.streams.get_mut(&id).expect("granted stream exists");
        let job = lane.pop_front().expect("granted stream is non-empty");
        let emptied = lane.is_empty();
        if emptied {
            self.streams.remove(&id);
        }
        let lane = LaneKey::Stream(id);
        if let Some(pos) = self.rotation.iter().position(|k| k == &lane) {
            self.rotation.remove(pos);
        }
        if !emptied {
            self.rotation.push_back(lane);
        }
        StepDecision { stream: id, job }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(frames: usize, requests: usize, delay_us: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch_frames: frames,
            max_batch_requests: requests,
            max_delay: Duration::from_micros(delay_us),
            ..BatchPolicy::default()
        }
    }

    fn us(micros: u64) -> Duration {
        Duration::from_micros(micros)
    }

    #[test]
    fn empty_scheduler_is_idle() {
        let sched: Scheduler<u8> = Scheduler::new(BatchPolicy::default());
        assert!(sched.is_idle());
        assert_eq!(sched.next_deadline(), None);
        assert_eq!(sched.pending_requests(), 0);
        assert_eq!(sched.pending_frames(), 0);
    }

    #[test]
    fn frame_budget_beats_request_budget_in_reason() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(4, 1, 1000));
        sched.submit(Duration::ZERO, TenantKey::new("t", 1), 8, 0);
        let d = sched.tick(Duration::ZERO);
        assert_eq!(d.len(), 1);
        let batch = d[0].as_batch().unwrap();
        assert_eq!(batch.reason, FlushReason::FrameBudget);
        assert_eq!(batch.frames, 8);
        assert!(sched.is_idle());
    }

    #[test]
    fn batch_exceeds_frame_budget_by_at_most_one_request() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(8, 100, 1000));
        let key = TenantKey::new("t", 1);
        for i in 0..4 {
            sched.submit(Duration::ZERO, key.clone(), 3, i);
        }
        let d = sched.tick(Duration::ZERO);
        // 3+3+3 = 9 >= 8 flushes as one batch; the 4th job (3 frames,
        // below every budget) stays queued for its deadline.
        assert_eq!(d.len(), 1);
        let batch = d[0].as_batch().unwrap();
        assert_eq!(batch.frames, 9);
        assert_eq!(batch.jobs, vec![0, 1, 2]);
        assert_eq!(sched.tenant_depth(&key), 1);
    }

    #[test]
    fn drain_respects_size_budgets_and_round_robins() {
        let mut sched: Scheduler<(char, u8)> = Scheduler::new(policy(100, 2, 1_000_000));
        for i in 0..3 {
            sched.submit(Duration::ZERO, TenantKey::new("a", 1), 1, ('a', i));
            sched.submit(Duration::ZERO, TenantKey::new("b", 1), 1, ('b', i));
        }
        // Below the 2-request readiness threshold? No: 3 >= 2, but drain
        // is exercised directly without tick here.
        let d = sched.drain();
        assert!(sched.is_idle());
        let order: Vec<(String, usize)> = d
            .iter()
            .map(|f| {
                let f = f.as_batch().unwrap();
                (f.tenant.name.clone(), f.jobs.len())
            })
            .collect();
        // a:2, b:2, a:1, b:1 — budget-capped batches, round-robin.
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 2),
                ("a".to_string(), 1),
                ("b".to_string(), 1)
            ]
        );
        assert!(d
            .iter()
            .all(|f| f.as_batch().unwrap().reason == FlushReason::Drain));
    }

    #[test]
    fn stream_steps_are_granted_fifo_and_drain_each_tick() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(100, 100, 1000));
        let s = StreamId(3);
        assert_eq!(sched.stream_depth(s), 0);
        for i in 0..3 {
            sched.submit_stream(s, i);
        }
        assert_eq!(sched.pending_steps(), 3);
        assert!(!sched.is_idle());
        assert_eq!(sched.next_deadline(), None, "steps carry no deadline");
        let d = sched.tick(Duration::ZERO);
        let steps: Vec<u8> = d.iter().map(|d| d.as_step().unwrap().job).collect();
        assert_eq!(steps, vec![0, 1, 2], "steps grant in FIFO order");
        assert!(sched.is_idle(), "tick drains every stream lane");
        assert_eq!(format!("{s}"), "stream#3");
    }

    #[test]
    fn streams_and_batches_interleave_round_robin() {
        // One ready tenant with two request-budget batches + two streams
        // with two steps each: grants must alternate lanes, never letting
        // one lane take two grants in a row while others are ready.
        let mut sched: Scheduler<(char, u8)> = Scheduler::new(policy(1 << 20, 2, 1000));
        let t = TenantKey::new("bulk", 1);
        for i in 0..4 {
            sched.submit(Duration::ZERO, t.clone(), 1, ('t', i));
        }
        for i in 0..2 {
            sched.submit_stream(StreamId(1), ('x', i));
            sched.submit_stream(StreamId(2), ('y', i));
        }
        let lanes: Vec<String> = sched
            .tick(Duration::ZERO)
            .iter()
            .map(|d| match d {
                Decision::Batch(b) => b.tenant.name.clone(),
                Decision::Step(s) => format!("{}", s.stream),
                Decision::Shed(s) => format!("shed:{}", s.tenant.name),
            })
            .collect();
        assert_eq!(
            lanes,
            vec!["bulk", "stream#1", "stream#2", "bulk", "stream#1", "stream#2"]
        );
        assert!(sched.is_idle());
    }

    #[test]
    fn tenant_policy_override_changes_readiness_and_deadline() {
        // Global: flush at 4 requests. Premium tenant: flush every
        // request (request budget 1) with a 10x tighter deadline.
        let mut sched: Scheduler<u8> = Scheduler::new(policy(1 << 20, 4, 1000));
        sched.set_tenant_policy("premium", Some(policy(1 << 20, 1, 100)));
        assert_eq!(sched.tenant_policy("premium").max_batch_requests, 1);
        assert_eq!(sched.tenant_policy("bulk").max_batch_requests, 4);

        let p = TenantKey::new("premium", 1);
        let b = TenantKey::new("bulk", 1);
        sched.submit(Duration::ZERO, p.clone(), 1, 0);
        sched.submit(Duration::ZERO, b.clone(), 1, 1);
        // The premium tenant's deadline (100 µs) wins the global 1 ms.
        assert_eq!(sched.next_deadline(), Some(us(100)));
        let d = sched.tick(Duration::ZERO);
        assert_eq!(d.len(), 1, "only premium is ready at one request");
        assert_eq!(d[0].as_batch().unwrap().tenant, p);
        assert_eq!(sched.tenant_depth(&b), 1);

        // Clearing the override restores the global budgets.
        sched.set_tenant_policy("premium", None);
        sched.submit(us(10), p.clone(), 1, 2);
        assert!(sched.tick(us(10)).is_empty());
        assert_eq!(sched.next_deadline(), Some(us(1000)), "global max_delay");
    }

    #[test]
    fn unrepresentable_deadline_disables_latency_budget() {
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            max_delay: Duration::MAX,
            ..policy(100, 100, 0)
        });
        sched.submit(Duration::from_secs(1), TenantKey::new("t", 1), 1, 0);
        assert_eq!(sched.next_deadline(), None);
        assert!(sched.tick(Duration::from_secs(1 << 30)).is_empty());
        assert_eq!(sched.drain().len(), 1);
    }

    #[test]
    fn weighted_tenant_takes_multiple_grants_per_pass() {
        // Both tenants ready with deep backlogs; "heavy" carries weight 3.
        let mut sched: Scheduler<u8> = Scheduler::new(policy(1 << 20, 1, 1000));
        sched.set_tenant_policy(
            "heavy",
            Some(BatchPolicy {
                weight: 3,
                ..policy(1 << 20, 1, 1000)
            }),
        );
        let h = TenantKey::new("heavy", 1);
        let l = TenantKey::new("light", 1);
        for i in 0..6 {
            sched.submit(Duration::ZERO, h.clone(), 1, i);
        }
        for i in 0..2 {
            sched.submit(Duration::ZERO, l.clone(), 1, 10 + i);
        }
        let order: Vec<String> = sched
            .tick(Duration::ZERO)
            .iter()
            .map(|d| d.as_batch().unwrap().tenant.name.clone())
            .collect();
        // Per pass: heavy ×3, then light ×1 — never light starved out.
        assert_eq!(
            order,
            vec!["heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"]
        );
        assert!(sched.is_idle());
    }

    #[test]
    fn zero_weight_is_treated_as_one() {
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            weight: 0,
            ..policy(1 << 20, 1, 1000)
        });
        let t = TenantKey::new("t", 1);
        sched.submit(Duration::ZERO, t.clone(), 1, 0);
        sched.submit(Duration::ZERO, t.clone(), 1, 1);
        assert_eq!(sched.tick(Duration::ZERO).len(), 2);
        assert!(sched.is_idle());
    }

    #[test]
    fn weighted_grants_stop_when_budget_runs_out() {
        // Weight 5, but only two request-budget batches are ready: the
        // extra grants must not flush an under-budget remainder early.
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            weight: 5,
            ..policy(1 << 20, 2, 1_000_000)
        });
        let t = TenantKey::new("t", 1);
        for i in 0..5 {
            sched.submit(Duration::ZERO, t.clone(), 1, i);
        }
        let d = sched.tick(Duration::ZERO);
        assert_eq!(d.len(), 2, "two full batches, fifth job under budget");
        assert_eq!(sched.tenant_depth(&t), 1);
    }

    #[test]
    fn shed_fires_at_the_exact_deadline_instant() {
        // Deadline tighter than the coalescing delay: the job expires
        // before it would ever flush.
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            deadline: Some(us(500)),
            overrun: OverrunAction::Shed,
            ..policy(1 << 20, 100, 1000)
        });
        let t = TenantKey::new("ctl", 1);
        sched.submit(Duration::ZERO, t.clone(), 4, 7);
        // The shed instant is a wake-up deadline.
        assert_eq!(sched.next_deadline(), Some(us(500)));
        // One nanosecond early: untouched.
        assert!(sched.tick(us(500) - Duration::from_nanos(1)).is_empty());
        assert_eq!(sched.tenant_depth(&t), 1);
        // Exactly at the instant: shed, never served.
        let d = sched.tick(us(500));
        assert_eq!(d.len(), 1);
        let shed = d[0].as_shed().unwrap();
        assert_eq!(shed.tenant, t);
        assert_eq!(shed.deadline, us(500));
        assert_eq!(shed.frames, 4);
        assert_eq!(shed.jobs, vec![7]);
        assert!(sched.is_idle());
    }

    #[test]
    fn shed_pops_only_the_blown_prefix() {
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            deadline: Some(us(100)),
            overrun: OverrunAction::Shed,
            ..policy(1 << 20, 100, 1_000_000)
        });
        let t = TenantKey::new("ctl", 1);
        sched.submit(Duration::ZERO, t.clone(), 1, 0);
        sched.submit(us(50), t.clone(), 1, 1);
        sched.submit(us(90), t.clone(), 1, 2);
        // At 160 µs the 0 µs and 50 µs arrivals have blown their 100 µs
        // budget; the 90 µs arrival (due at 190 µs) has not.
        let d = sched.tick(us(160));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].as_shed().unwrap().jobs, vec![0, 1]);
        assert_eq!(sched.tenant_depth(&t), 1, "in-budget job stays queued");
        assert_eq!(sched.pending_frames(), 1);
    }

    #[test]
    fn degrade_tenant_marks_overrun_batches_instead_of_shedding() {
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            deadline: Some(us(100)),
            overrun: OverrunAction::Degrade { keep_k: 3 },
            ..policy(1 << 20, 100, 200)
        });
        let t = TenantKey::new("bulk", 1);
        sched.submit(Duration::ZERO, t.clone(), 2, 0);
        // Past both the flush delay and the request deadline: the job is
        // served (not shed), but degraded.
        let d = sched.tick(us(300));
        assert_eq!(d.len(), 1);
        let batch = d[0].as_batch().unwrap();
        assert_eq!(batch.reason, FlushReason::DeadlineExpired);
        assert_eq!(batch.degraded, Some(3));
        assert!(sched.is_idle());
    }

    #[test]
    fn brownout_enters_and_exits_by_hysteresis() {
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            overrun: OverrunAction::Degrade { keep_k: 2 },
            ..policy(1 << 20, 4, 1_000_000)
        });
        sched.set_brownout(Some(BrownoutPolicy {
            enter_above: 10,
            exit_below: 2,
        }));
        let t = TenantKey::new("bulk", 1);
        // 9 pending frames: under the high watermark, exact service.
        for i in 0..3 {
            sched.submit(Duration::ZERO, t.clone(), 3, i);
        }
        assert!(sched.tick(Duration::ZERO).is_empty());
        assert!(!sched.in_brownout());
        // A 4th submit crosses the 10-frame watermark AND the 4-request
        // budget: the flush this tick is degraded.
        sched.submit(Duration::ZERO, t.clone(), 3, 3);
        let d = sched.tick(Duration::ZERO);
        assert!(sched.in_brownout());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].as_batch().unwrap().degraded, Some(2));
        assert!(sched.is_idle());
        // Pending fell to 0 <= exit_below: the next tick exits brownout,
        // and a fresh sub-watermark burst is served exact again.
        assert!(sched.tick(us(5)).is_empty());
        assert!(!sched.in_brownout());
        for i in 0..4 {
            sched.submit(us(10), t.clone(), 1, 10 + i);
        }
        let d = sched.tick(us(10));
        assert!(!sched.in_brownout());
        assert_eq!(d[0].as_batch().unwrap().degraded, None);
    }

    #[test]
    fn brownout_holds_state_between_the_watermarks() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(1 << 20, 100, 1_000_000));
        sched.set_brownout(Some(BrownoutPolicy {
            enter_above: 10,
            exit_below: 2,
        }));
        let t = TenantKey::new("bulk", 1);
        // 5 frames sits inside the band: out stays out.
        sched.submit(Duration::ZERO, t.clone(), 5, 0);
        sched.tick(Duration::ZERO);
        assert!(!sched.in_brownout());
        // Cross the high watermark: in.
        sched.submit(Duration::ZERO, t.clone(), 6, 1);
        sched.tick(Duration::ZERO);
        assert!(sched.in_brownout());
        // Back inside the band (5 frames after a drain to below 10 but
        // above 2): in stays in — no flapping.
        let mut sched2: Scheduler<u8> = Scheduler::new(policy(1 << 20, 100, 1_000_000));
        sched2.set_brownout(Some(BrownoutPolicy {
            enter_above: 10,
            exit_below: 2,
        }));
        sched2.submit(Duration::ZERO, t.clone(), 11, 0);
        sched2.tick(Duration::ZERO);
        assert!(sched2.in_brownout());
        // Disabling exits immediately.
        sched.set_brownout(None);
        assert!(!sched.in_brownout());
    }

    #[test]
    fn granting_the_back_lane_wraps_the_scan_to_the_front() {
        // Regression for the rotation-index bug: lane order [idle, deep]
        // puts the deep-backlog lane at the rotation's back. Granting it
        // re-appends it at the same index; the scan must wrap past the
        // front lane before re-inspecting it, per the documented "every
        // granted lane moves to the rotation's back" order.
        let mut sched: Scheduler<u8> = Scheduler::new(policy(1 << 20, 100, 1_000_000));
        sched.set_tenant_policy("deep", Some(policy(1 << 20, 1, 1_000_000)));
        let idle = TenantKey::new("idle", 1);
        let deep = TenantKey::new("deep", 1);
        // idle enters the rotation first (front) but is never ready; deep
        // sits at the back with a 4-job backlog, ready every inspection.
        sched.submit(Duration::ZERO, idle.clone(), 1, 0);
        for i in 0..4 {
            sched.submit(Duration::ZERO, deep.clone(), 1, 10 + i);
        }
        let order: Vec<String> = sched
            .tick(Duration::ZERO)
            .iter()
            .map(|d| d.as_batch().unwrap().tenant.name.clone())
            .collect();
        assert_eq!(order, vec!["deep", "deep", "deep", "deep"]);
        assert_eq!(sched.tenant_depth(&idle), 1, "idle lane never granted");
        // The rotation still holds idle at the front: a now-ready idle
        // lane is granted before deep's next turn.
        sched.submit(Duration::ZERO, deep.clone(), 1, 20);
        sched.set_tenant_policy("idle", Some(policy(1 << 20, 1, 1_000_000)));
        let order: Vec<String> = sched
            .tick(Duration::ZERO)
            .iter()
            .map(|d| d.as_batch().unwrap().tenant.name.clone())
            .collect();
        assert_eq!(order, vec!["idle", "deep"]);
    }

    #[test]
    fn tenant_depth_tracks_queue() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(100, 100, 1000));
        let key = TenantKey::new("t", 3);
        assert_eq!(sched.tenant_depth(&key), 0);
        sched.submit(Duration::ZERO, key.clone(), 2, 0);
        sched.submit(Duration::ZERO, key.clone(), 2, 1);
        assert_eq!(sched.tenant_depth(&key), 2);
        assert_eq!(sched.pending_frames(), 4);
        assert_eq!(format!("{key}"), "t@v3");
    }
}
