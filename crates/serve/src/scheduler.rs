//! The pure micro-batching scheduler: per-tenant pending queues, a
//! fairness rotation and size/latency budgets as a clock-injected state
//! machine.
//!
//! [`Scheduler`] makes every coalesce/flush decision for the [`Server`]
//! front end, but holds no threads, no channels and no real clock: time is
//! a plain [`Duration`] since an epoch the caller picks, injected into
//! [`Scheduler::submit`] and [`Scheduler::tick`]. The thread that drives
//! it (the batcher inside [`Server`]) merely feeds arrivals in and
//! executes the returned [`FlushDecision`]s — which means every scheduling
//! property (fairness under interleaved tenants, latency-budget expiry,
//! version pinning across hot swap) is testable deterministically with a
//! mock clock and zero sleeps. See `crates/serve/tests/scheduler.rs`.
//!
//! # Why per-tenant queues
//!
//! Coalescing is only valid within one pinned artifact, so a FIFO batcher
//! must flush whenever consecutive requests pin different deployments —
//! interleaved multi-tenant traffic degrades to one-request batches. The
//! scheduler instead keeps **one pending queue per [`TenantKey`]** (a
//! deployment name at a pinned version): a tenant's requests coalesce
//! across the gaps other tenants' traffic punches into the arrival order,
//! and each queue enforces its own size and latency budgets.
//!
//! # Fairness rotation
//!
//! Ready tenants are flushed round-robin: [`Scheduler::tick`] scans the
//! tenant rotation in order, and **every flushed tenant moves to the
//! rotation's back**, so a tenant with a deep backlog cannot starve the
//! others — its second batch is decided only after every other ready
//! tenant got one — and a tenant that is never ready costs one
//! inspection per tick.
//! Latency is bounded tenant-locally: each queue's oldest request expires
//! the queue's own [`BatchPolicy::max_delay`] deadline regardless of what
//! other tenants do.
//!
//! # Example (mock clock)
//!
//! ```
//! use std::time::Duration;
//! use eigenmaps_serve::{BatchPolicy, FlushReason, Scheduler, TenantKey};
//!
//! let policy = BatchPolicy {
//!     max_batch_frames: 256,
//!     max_batch_requests: 3,
//!     max_delay: Duration::from_millis(1),
//!     ..BatchPolicy::default()
//! };
//! let mut sched: Scheduler<&'static str> = Scheduler::new(policy);
//! let (a, b) = (TenantKey::new("alpha", 1), TenantKey::new("beta", 1));
//!
//! // Interleaved sub-budget traffic: nothing flushes yet.
//! sched.submit(Duration::ZERO, a.clone(), 4, "a0");
//! sched.submit(Duration::ZERO, b.clone(), 4, "b0");
//! sched.submit(Duration::from_micros(10), a.clone(), 4, "a1");
//! assert!(sched.tick(Duration::from_micros(10)).is_empty());
//!
//! // A third request fills alpha's request budget: alpha flushes as one
//! // three-request batch; beta keeps waiting on its own deadline.
//! sched.submit(Duration::from_micros(20), a.clone(), 4, "a2");
//! let decisions = sched.tick(Duration::from_micros(20));
//! assert_eq!(decisions.len(), 1);
//! assert_eq!(decisions[0].tenant, a);
//! assert_eq!(decisions[0].reason, FlushReason::RequestBudget);
//! assert_eq!(decisions[0].jobs, vec!["a0", "a1", "a2"]);
//!
//! // Beta's latency budget expires exactly at its deadline.
//! assert_eq!(sched.next_deadline(), Some(Duration::from_millis(1)));
//! assert!(sched.tick(Duration::from_micros(999)).is_empty());
//! let expired = sched.tick(Duration::from_millis(1));
//! assert_eq!(expired[0].reason, FlushReason::DeadlineExpired);
//! assert_eq!(expired[0].jobs, vec!["b0"]);
//! assert!(sched.is_idle());
//! ```
//!
//! [`Server`]: crate::Server

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

/// When the micro-batcher flushes a coalesced batch, enforced **per
/// tenant** (per pinned `(name, version)` queue).
///
/// Each tenant's pending queue flushes as soon as it alone holds
/// [`max_batch_frames`](BatchPolicy::max_batch_frames) frames or
/// [`max_batch_requests`](BatchPolicy::max_batch_requests) requests, or
/// when its own oldest request has waited
/// [`max_delay`](BatchPolicy::max_delay) — other tenants' traffic never
/// advances or postpones these budgets. A batch may exceed
/// `max_batch_frames` by at most one request's frames (requests are
/// atomic, never split across batches).
///
/// ```
/// use std::time::Duration;
/// use eigenmaps_serve::{BatchPolicy, Scheduler, TenantKey};
///
/// // Per-tenant budgets: two tenants fill independently.
/// let policy = BatchPolicy {
///     max_batch_frames: 8,
///     ..BatchPolicy::default()
/// };
/// let mut sched: Scheduler<u32> = Scheduler::new(policy);
/// sched.submit(Duration::ZERO, TenantKey::new("a", 1), 5, 0);
/// sched.submit(Duration::ZERO, TenantKey::new("b", 1), 5, 1);
/// // Ten frames are pending overall, but neither tenant reached its own
/// // 8-frame budget, so nothing flushes.
/// assert!(sched.tick(Duration::ZERO).is_empty());
/// sched.submit(Duration::ZERO, TenantKey::new("a", 1), 3, 2);
/// assert_eq!(sched.tick(Duration::ZERO).len(), 1); // only tenant a
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush a tenant once its pending queue holds at least this many
    /// frames.
    pub max_batch_frames: usize,
    /// Flush a tenant once this many of its requests are pending.
    pub max_batch_requests: usize,
    /// Flush a tenant once its oldest pending request has waited this
    /// long — the latency budget a small lone request pays at worst. An
    /// unrepresentable deadline (`enqueue + max_delay` overflows
    /// `Duration`, e.g. [`Duration::MAX`]) disables the latency budget:
    /// that tenant flushes by size only.
    pub max_delay: Duration,
    /// Admission-control bound used by [`Server::try_submit`]: the
    /// nonblocking front door reports saturation instead of queueing once
    /// a tenant already has this many requests pending. The blocking
    /// [`Server::submit`] path ignores it (back-compat, unbounded).
    ///
    /// [`Server::try_submit`]: crate::Server::try_submit
    /// [`Server::submit`]: crate::Server::submit
    pub max_pending_per_tenant: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_frames: 256,
            max_batch_requests: 64,
            max_delay: Duration::from_millis(2),
            max_pending_per_tenant: 1024,
        }
    }
}

/// Identity of one pending queue: a deployment name at the version pinned
/// when the request was admitted.
///
/// Hot-swapping a tenant's deployment changes the version and therefore
/// the key, so requests pinned to the old artifact keep coalescing among
/// themselves (and are never mixed with new-version requests) while both
/// drain — version pinning falls out of the queue identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantKey {
    /// Registry name of the deployment.
    pub name: String,
    /// Pinned registry version.
    pub version: u32,
}

impl TenantKey {
    /// A key for `name` pinned at `version`.
    pub fn new(name: impl Into<String>, version: u32) -> Self {
        TenantKey {
            name: name.into(),
            version,
        }
    }
}

impl fmt::Display for TenantKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@v{}", self.name, self.version)
    }
}

/// Why a [`FlushDecision`] was made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The tenant's pending frames reached
    /// [`BatchPolicy::max_batch_frames`].
    FrameBudget,
    /// The tenant's pending requests reached
    /// [`BatchPolicy::max_batch_requests`].
    RequestBudget,
    /// The tenant's oldest pending request waited
    /// [`BatchPolicy::max_delay`].
    DeadlineExpired,
    /// The scheduler was drained (shutdown).
    Drain,
}

/// One coalesced batch the driver must now execute: a tenant's oldest
/// pending jobs, in submission order, with the frame total precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushDecision<T> {
    /// Which pending queue flushed.
    pub tenant: TenantKey,
    /// Which budget triggered the flush.
    pub reason: FlushReason,
    /// Total frames across `jobs`.
    pub frames: usize,
    /// The job payloads, oldest first — for the serving driver these are
    /// the queued requests; tests use plain markers.
    pub jobs: Vec<T>,
}

/// One queued job: its frame count, arrival time and opaque payload.
#[derive(Debug)]
struct Job<T> {
    frames: usize,
    enqueued_at: Duration,
    payload: T,
}

/// One tenant's pending queue with its frame total maintained inline.
#[derive(Debug)]
struct TenantQueue<T> {
    jobs: VecDeque<Job<T>>,
    frames: usize,
}

impl<T> Default for TenantQueue<T> {
    fn default() -> Self {
        TenantQueue {
            jobs: VecDeque::new(),
            frames: 0,
        }
    }
}

/// The pure coalesce/flush state machine. See the [module docs](self) for
/// the design and a worked example.
///
/// Invariant: a tenant appears in the rotation iff it has a non-empty
/// queue, and the rotation order is the fairness order (front = served
/// next among ready tenants).
#[derive(Debug)]
pub struct Scheduler<T> {
    policy: BatchPolicy,
    tenants: HashMap<TenantKey, TenantQueue<T>>,
    rotation: VecDeque<TenantKey>,
}

impl<T> Scheduler<T> {
    /// A scheduler enforcing `policy` per tenant.
    pub fn new(policy: BatchPolicy) -> Self {
        Scheduler {
            policy,
            tenants: HashMap::new(),
            rotation: VecDeque::new(),
        }
    }

    /// The policy this scheduler enforces.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Enqueues a job of `frames` frames for `tenant`, stamped `now` for
    /// its latency budget. Decisions are made only by [`Scheduler::tick`]
    /// — call it after submitting. The stamp may lag the tick clock (the
    /// serving driver passes the client's submit time, so waiting to be
    /// fed into the scheduler already counts against the budget); a stamp
    /// whose deadline is already past simply flushes on the next tick.
    pub fn submit(&mut self, now: Duration, tenant: TenantKey, frames: usize, payload: T) {
        if !self.tenants.contains_key(&tenant) {
            self.rotation.push_back(tenant.clone());
        }
        let queue = self.tenants.entry(tenant).or_default();
        queue.frames += frames;
        queue.jobs.push_back(Job {
            frames,
            enqueued_at: now,
            payload,
        });
    }

    /// Decides every batch that must flush at time `now`, in fairness
    /// order: the rotation is scanned in place, every flushed tenant
    /// moves to the rotation's back, and the scan ends once a full
    /// rotation's worth of consecutive tenants was inspected without a
    /// flush — so a backlogged tenant's next batch is decided only after
    /// every other ready tenant got one. Returns an empty vec when
    /// nothing is due.
    ///
    /// The common no-op tick (nothing ready) inspects each tenant once
    /// and allocates nothing; a key is cloned only when it actually
    /// flushes. Readiness is monotone within a tick (fixed `now`, no
    /// submits, queues only shrink), so one inspection per non-ready
    /// tenant is sufficient.
    pub fn tick(&mut self, now: Duration) -> Vec<FlushDecision<T>> {
        let mut decisions = Vec::new();
        let mut idx = 0usize;
        let mut since_flush = 0usize;
        while since_flush < self.rotation.len() {
            if idx >= self.rotation.len() {
                idx = 0;
            }
            match self.readiness(&self.rotation[idx], now) {
                Some(reason) => {
                    let key = self.rotation[idx].clone();
                    // `take_batch` removes the key at `idx` (re-appending
                    // it at the back while backlogged), shifting the next
                    // candidate into `idx` — don't advance.
                    decisions.push(self.take_batch(&key, reason));
                    since_flush = 0;
                }
                None => {
                    idx += 1;
                    since_flush += 1;
                }
            }
        }
        decisions
    }

    /// Flushes everything still pending (shutdown), round-robin across
    /// tenants, still respecting the size budgets per batch.
    pub fn drain(&mut self) -> Vec<FlushDecision<T>> {
        let mut decisions = Vec::new();
        while let Some(key) = self.rotation.front().cloned() {
            decisions.push(self.take_batch(&key, FlushReason::Drain));
        }
        decisions
    }

    /// The earliest latency-budget deadline across all tenants — when the
    /// next [`Scheduler::tick`] is due absent new submissions. `None` when
    /// idle or when every pending tenant's deadline is unrepresentable
    /// (flush-by-size-only).
    pub fn next_deadline(&self) -> Option<Duration> {
        self.tenants
            .values()
            .filter_map(|q| q.jobs.front())
            .filter_map(|job| job.enqueued_at.checked_add(self.policy.max_delay))
            .min()
    }

    /// Whether no job is pending anywhere.
    pub fn is_idle(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Total pending requests across all tenants.
    pub fn pending_requests(&self) -> usize {
        self.tenants.values().map(|q| q.jobs.len()).sum()
    }

    /// Total pending frames across all tenants.
    pub fn pending_frames(&self) -> usize {
        self.tenants.values().map(|q| q.frames).sum()
    }

    /// Number of tenants with a non-empty queue.
    pub fn pending_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Pending requests queued for one tenant (0 if none).
    pub fn tenant_depth(&self, tenant: &TenantKey) -> usize {
        self.tenants.get(tenant).map_or(0, |q| q.jobs.len())
    }

    /// Which budget (if any) makes `key` flushable at `now`.
    fn readiness(&self, key: &TenantKey, now: Duration) -> Option<FlushReason> {
        let queue = self.tenants.get(key)?;
        if queue.frames >= self.policy.max_batch_frames {
            return Some(FlushReason::FrameBudget);
        }
        if queue.jobs.len() >= self.policy.max_batch_requests {
            return Some(FlushReason::RequestBudget);
        }
        let oldest = queue.jobs.front()?;
        match oldest.enqueued_at.checked_add(self.policy.max_delay) {
            Some(deadline) if deadline <= now => Some(FlushReason::DeadlineExpired),
            _ => None,
        }
    }

    /// Pops one batch off `key`'s queue (oldest first, until a size budget
    /// fills or the queue empties) and rotates the tenant to the back.
    fn take_batch(&mut self, key: &TenantKey, reason: FlushReason) -> FlushDecision<T> {
        let queue = self.tenants.get_mut(key).expect("flushed tenant exists");
        let mut jobs = Vec::new();
        let mut frames = 0usize;
        while let Some(job) = queue.jobs.pop_front() {
            frames += job.frames;
            queue.frames -= job.frames;
            jobs.push(job.payload);
            if frames >= self.policy.max_batch_frames
                || jobs.len() >= self.policy.max_batch_requests
            {
                break;
            }
        }
        let emptied = queue.jobs.is_empty();
        if emptied {
            self.tenants.remove(key);
        }
        if let Some(pos) = self.rotation.iter().position(|k| k == key) {
            self.rotation.remove(pos);
        }
        if !emptied {
            self.rotation.push_back(key.clone());
        }
        FlushDecision {
            tenant: key.clone(),
            reason,
            frames,
            jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(frames: usize, requests: usize, delay_us: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch_frames: frames,
            max_batch_requests: requests,
            max_delay: Duration::from_micros(delay_us),
            ..BatchPolicy::default()
        }
    }

    #[test]
    fn empty_scheduler_is_idle() {
        let sched: Scheduler<u8> = Scheduler::new(BatchPolicy::default());
        assert!(sched.is_idle());
        assert_eq!(sched.next_deadline(), None);
        assert_eq!(sched.pending_requests(), 0);
        assert_eq!(sched.pending_frames(), 0);
    }

    #[test]
    fn frame_budget_beats_request_budget_in_reason() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(4, 1, 1000));
        sched.submit(Duration::ZERO, TenantKey::new("t", 1), 8, 0);
        let d = sched.tick(Duration::ZERO);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].reason, FlushReason::FrameBudget);
        assert_eq!(d[0].frames, 8);
        assert!(sched.is_idle());
    }

    #[test]
    fn batch_exceeds_frame_budget_by_at_most_one_request() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(8, 100, 1000));
        let key = TenantKey::new("t", 1);
        for i in 0..4 {
            sched.submit(Duration::ZERO, key.clone(), 3, i);
        }
        let d = sched.tick(Duration::ZERO);
        // 3+3+3 = 9 >= 8 flushes as one batch; the 4th job (3 frames,
        // below every budget) stays queued for its deadline.
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].frames, 9);
        assert_eq!(d[0].jobs, vec![0, 1, 2]);
        assert_eq!(sched.tenant_depth(&key), 1);
    }

    #[test]
    fn drain_respects_size_budgets_and_round_robins() {
        let mut sched: Scheduler<(char, u8)> = Scheduler::new(policy(100, 2, 1_000_000));
        for i in 0..3 {
            sched.submit(Duration::ZERO, TenantKey::new("a", 1), 1, ('a', i));
            sched.submit(Duration::ZERO, TenantKey::new("b", 1), 1, ('b', i));
        }
        // Below the 2-request readiness threshold? No: 3 >= 2, but drain
        // is exercised directly without tick here.
        let d = sched.drain();
        assert!(sched.is_idle());
        let order: Vec<(String, usize)> = d
            .iter()
            .map(|f| (f.tenant.name.clone(), f.jobs.len()))
            .collect();
        // a:2, b:2, a:1, b:1 — budget-capped batches, round-robin.
        assert_eq!(
            order,
            vec![
                ("a".to_string(), 2),
                ("b".to_string(), 2),
                ("a".to_string(), 1),
                ("b".to_string(), 1)
            ]
        );
        assert!(d.iter().all(|f| f.reason == FlushReason::Drain));
    }

    #[test]
    fn unrepresentable_deadline_disables_latency_budget() {
        let mut sched: Scheduler<u8> = Scheduler::new(BatchPolicy {
            max_delay: Duration::MAX,
            ..policy(100, 100, 0)
        });
        sched.submit(Duration::from_secs(1), TenantKey::new("t", 1), 1, 0);
        assert_eq!(sched.next_deadline(), None);
        assert!(sched.tick(Duration::from_secs(1 << 30)).is_empty());
        assert_eq!(sched.drain().len(), 1);
    }

    #[test]
    fn tenant_depth_tracks_queue() {
        let mut sched: Scheduler<u8> = Scheduler::new(policy(100, 100, 1000));
        let key = TenantKey::new("t", 3);
        assert_eq!(sched.tenant_depth(&key), 0);
        sched.submit(Duration::ZERO, key.clone(), 2, 0);
        sched.submit(Duration::ZERO, key.clone(), 2, 1);
        assert_eq!(sched.tenant_depth(&key), 2);
        assert_eq!(sched.pending_frames(), 4);
        assert_eq!(format!("{key}"), "t@v3");
    }
}
