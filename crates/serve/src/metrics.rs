//! Lightweight serving metrics: request/frame counters, a fixed-bucket
//! latency histogram, per-shard utilization counters, per-tenant batching
//! gauges and connection/wire gauges for a network front door.
//!
//! Everything is a relaxed atomic — recording from worker threads and the
//! batcher costs a handful of uncontended atomic increments per request.
//! The only lock is the read-mostly registry of per-tenant counter blocks,
//! write-locked once per tenant lifetime (first sight of the name).
//! [`ServeMetrics::snapshot`] folds the counters into a plain
//! [`MetricsSnapshot`] for reporting.
//!
//! The per-tenant block ([`TenantSnapshot`]) carries flushed batch/request/
//! frame counters plus a live queue-depth gauge with a high-water mark:
//! mean coalesced batch size per tenant is derivable directly from a
//! snapshot ([`TenantSnapshot::mean_batch_requests`]), which is what the
//! interleaved-tenant bench asserts batch-size recovery on, and what
//! [`Server::try_submit`] admission control reads.
//!
//! [`Server::try_submit`]: crate::Server::try_submit
//!
//! # Histogram semantics
//!
//! The latency histogram uses **fixed bucket edges** — a 1-2-5
//! logarithmic ladder from 1 µs to 10 s (22 bounds plus one overflow
//! bucket), identical in every process, so histograms from different
//! serving replicas can be merged bucket-by-bucket without resampling.
//! Quantiles (the `latency_p50` / `latency_p99` snapshot fields) are
//! resolved to the **upper edge of the containing bucket**, not
//! interpolated within it: a reported p99 of 5 ms means "99% of requests
//! completed in at most 5 ms". Estimates are therefore conservative
//! (never under-report) and within one 1-2-5 ladder step of the true
//! quantile. See [`LatencyHistogram::quantile`] for the exact rule,
//! including the overflow clamp.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Upper bounds (nanoseconds) of the latency histogram buckets — a 1-2-5
/// log ladder from 1 µs to 10 s. Latencies above the last bound land in a
/// final overflow bucket.
const BUCKET_BOUNDS_NS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// The fixed bucket upper bounds (nanoseconds) every
/// [`LatencyHistogram`] in this crate uses — 22 bounds of a 1-2-5 log
/// ladder from 1 µs to 10 s; the final bucket of a
/// [`HistogramSnapshot`] (index 22) counts overflow samples beyond the
/// last bound. Identical in every process, so external scrapers can
/// merge raw bucket counts from different replicas bucket-by-bucket.
pub fn bucket_bounds_ns() -> &'static [u64] {
    &BUCKET_BOUNDS_NS
}

/// Round-to-nearest mean of `total_ns` over `count` samples
/// ([`Duration::ZERO`] when empty). Widening to `u128` keeps the
/// half-count rounding bias from overflowing near `u64::MAX` totals.
fn mean_rounded(total_ns: u64, count: u64) -> Duration {
    if count == 0 {
        return Duration::ZERO;
    }
    let rounded = (u128::from(total_ns) + u128::from(count) / 2) / u128::from(count);
    Duration::from_nanos(rounded as u64)
}

/// A point-in-time copy of one [`LatencyHistogram`]'s raw state: the
/// per-bucket counts (aligned with [`bucket_bounds_ns`], plus one final
/// overflow bucket), the sample count and the summed nanoseconds.
///
/// This is what external scrapers should aggregate — derived quantiles
/// (`latency_p50` / `latency_p99` in [`MetricsSnapshot`]) resolve to
/// bucket upper bounds and cannot be merged across processes, while raw
/// bucket counts can.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts: `buckets[i]` counts samples at or below
    /// `bucket_bounds_ns()[i]`; the final element counts overflow.
    pub buckets: Vec<u64>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded samples, in nanoseconds.
    pub total_ns: u64,
}

impl HistogramSnapshot {
    /// Mean recorded latency, rounded to the nearest nanosecond
    /// ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        mean_rounded(self.total_ns, self.count)
    }

    /// The `q`-quantile under the same bucket-upper-bound rule as
    /// [`LatencyHistogram::quantile`]; [`Duration::ZERO`] when empty or
    /// when `q` is NaN.
    pub fn quantile(&self, q: f64) -> Duration {
        if q.is_nan() {
            return Duration::ZERO;
        }
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                let bound = BUCKET_BOUNDS_NS
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1]);
                return Duration::from_nanos(bound);
            }
        }
        Duration::from_nanos(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1])
    }
}

/// Fixed-bucket latency histogram with lock-free recording.
///
/// Quantile estimates are upper bounds of the containing bucket: for
/// samples within the bucket ladder they are conservative (never
/// under-report) and within one 1-2-5 step of the true quantile. Samples
/// beyond the last bound land in an overflow bucket and are clamped to
/// the 10 s bound — a serving latency that far out is an outage, not a
/// percentile to resolve.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let idx = BUCKET_BOUNDS_NS.partition_point(|&bound| bound < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean recorded latency, rounded to the nearest nanosecond
    /// ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        mean_rounded(self.total_ns.load(Ordering::Relaxed), self.count())
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// containing it; [`Duration::ZERO`] when empty. Values in the
    /// overflow bucket report the last bound (10 s).
    ///
    /// The rank is `ceil(q · count)` over the cumulative bucket counts
    /// (so `q = 0.5` with two samples resolves to the first), and the
    /// result is always one of the fixed bucket edges — no within-bucket
    /// interpolation; see the [module docs](self) for why. Quantiles are
    /// monotone in `q` and never below any recorded sample's bucket.
    /// A NaN `q` is a caller bug, not a rank: it reports
    /// [`Duration::ZERO`] explicitly (identically in
    /// [`HistogramSnapshot::quantile`]) instead of silently resolving to
    /// the minimum bucket as `NaN.clamp(..).ceil() as u64` used to.
    pub fn quantile(&self, q: f64) -> Duration {
        if q.is_nan() {
            return Duration::ZERO;
        }
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                let bound = BUCKET_BOUNDS_NS
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1]);
                return Duration::from_nanos(bound);
            }
        }
        Duration::from_nanos(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1])
    }

    /// A point-in-time copy of the raw bucket counts, sample count and
    /// summed nanoseconds — the mergeable form external scrapers want.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
        }
    }
}

/// One phase of a traced request's lifecycle, as attributed by the
/// flight recorder ([`crate::trace::FlightRecorder`]) into per-tenant
/// stage histograms: where did the time go — waiting for a grant,
/// executing on a shard, or delivering the response?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageLatency {
    /// Admission to shard dispatch: time spent queued and coalescing.
    QueueWait,
    /// Shard dispatch to kernel completion: time spent computing.
    Execute,
    /// Kernel completion to response delivery.
    Respond,
}

/// Per-tenant batching counters and queue-depth gauge, keyed by
/// deployment name. Recorded by the front end (enqueue) and the batcher
/// (flush); the scheduler's fairness and batch-size behavior is observable
/// here without scraping logs.
#[derive(Debug, Default)]
struct TenantCounters {
    /// Micro-batches flushed for this tenant.
    batches: AtomicU64,
    /// Requests across all flushed batches.
    batch_requests: AtomicU64,
    /// Frames across all flushed batches.
    batch_frames: AtomicU64,
    /// Requests currently pending in the tenant's queue (gauge).
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    max_queue_depth: AtomicU64,
    /// Streaming session steps served against this tenant's deployments.
    session_steps: AtomicU64,
    /// Requests shed for blowing their deadline (overrun action `Shed`).
    shed_requests: AtomicU64,
    /// Frames across all shed requests.
    shed_frames: AtomicU64,
    /// Micro-batches served degraded (truncated reconstruction).
    degraded_batches: AtomicU64,
    /// Requests across all degraded micro-batches.
    degraded_requests: AtomicU64,
    /// Stage attribution from the flight recorder: admission → dispatch.
    queue_wait: LatencyHistogram,
    /// Stage attribution: dispatch → kernel done.
    execute: LatencyHistogram,
    /// Stage attribution: kernel done → response delivered.
    respond: LatencyHistogram,
}

/// Kind tag for one recorded wire-level error — how a network front door
/// classified a frame or request it had to reject. Indexes the fixed
/// per-kind counters behind [`WireSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorKind {
    /// A frame's length prefix exceeded the transport's max-frame-size
    /// bound; its payload was skipped unread.
    Oversized,
    /// A complete frame failed integrity validation (bad magic, wrong
    /// protocol version, checksum mismatch, impossible length).
    Corrupt,
    /// The frame envelope was sound but its body failed to decode.
    Malformed,
    /// The frame carried a message kind this endpoint does not handle.
    UnknownKind,
    /// A well-formed request was refused with a typed error status
    /// (unknown deployment, saturation, bad shapes, …).
    Rejected,
}

/// Why a network front door reaped (force-closed) a connection — kept as
/// separate counters so an operator can tell dead peers from overwhelmed
/// ones from ordinary shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReapReason {
    /// No readable traffic and nothing pending to write for longer than
    /// the idle timeout: the peer went away.
    Idle,
    /// The connection made no progress while responses were backed up
    /// toward it: the peer stopped reading (slow client).
    SlowClient,
    /// The door was asked to shut down and closed the connection during
    /// drain.
    Drain,
}

/// Connection/wire gauges recorded by a network front door (see the
/// `eigenmaps-net` crate): connection gauge with high-water mark, frames
/// decoded/encoded, raw bytes in/out and per-kind error counters.
#[derive(Debug, Default)]
struct WireCounters {
    /// Connections currently open (gauge).
    connections_open: AtomicU64,
    /// High-water mark of `connections_open`.
    max_connections_open: AtomicU64,
    /// Wire frames successfully decoded from clients.
    frames_in: AtomicU64,
    /// Wire frames encoded and queued toward clients.
    frames_out: AtomicU64,
    /// Raw bytes read off sockets.
    bytes_in: AtomicU64,
    /// Raw bytes written to sockets.
    bytes_out: AtomicU64,
    /// Error counters indexed by [`WireErrorKind`] discriminant order.
    errors: [AtomicU64; 5],
    /// Reap counters indexed by [`ReapReason`] discriminant order.
    reaps: [AtomicU64; 3],
    /// Durability checkpoints committed to the snapshot store.
    checkpoints: AtomicU64,
    /// Session snapshots referenced across committed checkpoints.
    checkpoint_sessions: AtomicU64,
    /// Deployments republished from the persisted catalog at hydration.
    hydrated_deployments: AtomicU64,
    /// Sessions rehydrated from the snapshot store at hydration.
    hydrated_sessions: AtomicU64,
    /// Corrupt/torn/mismatched store entries skipped during hydration.
    hydration_skipped: AtomicU64,
}

/// Counter hub shared by the front end, the execution engine and any
/// sessions. Cheap to record into from any thread.
#[derive(Debug)]
pub struct ServeMetrics {
    requests: AtomicU64,
    frames: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    /// Requests shed for blowing their deadline, across all tenants.
    shed: AtomicU64,
    /// Requests answered with a degraded (truncated) reconstruction,
    /// across all tenants.
    degraded: AtomicU64,
    /// Whether the scheduler is currently in brownout (gauge, 0 or 1).
    brownout: AtomicU64,
    /// Inactive→active brownout transitions observed.
    brownout_entries: AtomicU64,
    session_steps: AtomicU64,
    /// Streaming sessions currently open (gauge).
    sessions_open: AtomicU64,
    /// High-water mark of `sessions_open`.
    max_sessions_open: AtomicU64,
    latency: LatencyHistogram,
    /// Queue-to-response latency of scheduled session steps — kept
    /// separate from the batch-request histogram so mixed workloads can
    /// be attributed per class (the mixed-workload bench reads both).
    session_latency: LatencyHistogram,
    shard_frames: Vec<AtomicU64>,
    shard_batches: Vec<AtomicU64>,
    /// Lazily created per-tenant counters. The hot path takes the read
    /// lock and bumps relaxed atomics; the write lock is held only the
    /// first time a tenant name is seen.
    tenants: RwLock<HashMap<String, Arc<TenantCounters>>>,
    /// Connection/wire gauges recorded by a network front door.
    wire: WireCounters,
}

impl ServeMetrics {
    /// Metrics for a runtime with `shards` execution shards.
    pub fn new(shards: usize) -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            brownout: AtomicU64::new(0),
            brownout_entries: AtomicU64::new(0),
            session_steps: AtomicU64::new(0),
            sessions_open: AtomicU64::new(0),
            max_sessions_open: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            session_latency: LatencyHistogram::new(),
            shard_frames: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_batches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            tenants: RwLock::new(HashMap::new()),
            wire: WireCounters::default(),
        }
    }

    /// Records one network connection opening (gauge up, high-water mark
    /// maintained).
    pub fn record_connection_opened(&self) {
        let open = self.wire.connections_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.wire
            .max_connections_open
            .fetch_max(open, Ordering::Relaxed);
    }

    /// Records one network connection closing. Saturates at zero.
    pub fn record_connection_closed(&self) {
        let _ =
            self.wire
                .connections_open
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |open| {
                    Some(open.saturating_sub(1))
                });
    }

    /// Records one wire frame decoded from a client.
    pub fn record_wire_frame_in(&self) {
        self.wire.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one wire frame encoded toward a client.
    pub fn record_wire_frame_out(&self) {
        self.wire.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` raw bytes read off a socket.
    pub fn record_wire_bytes_in(&self, bytes: u64) {
        self.wire.bytes_in.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `bytes` raw bytes written to a socket.
    pub fn record_wire_bytes_out(&self, bytes: u64) {
        self.wire.bytes_out.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one wire-level error of `kind`.
    pub fn record_wire_error(&self, kind: WireErrorKind) {
        let idx = match kind {
            WireErrorKind::Oversized => 0,
            WireErrorKind::Corrupt => 1,
            WireErrorKind::Malformed => 2,
            WireErrorKind::UnknownKind => 3,
            WireErrorKind::Rejected => 4,
        };
        self.wire.errors[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection reaped by a network front door for
    /// `reason`.
    pub fn record_reap(&self, reason: ReapReason) {
        let idx = match reason {
            ReapReason::Idle => 0,
            ReapReason::SlowClient => 1,
            ReapReason::Drain => 2,
        };
        self.wire.reaps[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one committed durability checkpoint covering `sessions`
    /// session snapshots.
    pub fn record_checkpoint(&self, sessions: u64) {
        self.wire.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.wire
            .checkpoint_sessions
            .fetch_add(sessions, Ordering::Relaxed);
    }

    /// Records one deployment republished from the persisted catalog
    /// during hydration.
    pub fn record_hydrated_deployment(&self) {
        self.wire
            .hydrated_deployments
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one session rehydrated from the snapshot store.
    pub fn record_hydrated_session(&self) {
        self.wire.hydrated_sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `skipped` corrupt/torn/mismatched store entries skipped
    /// (rather than failing the boot) during hydration.
    pub fn record_hydration_skipped(&self, skipped: u64) {
        self.wire
            .hydration_skipped
            .fetch_add(skipped, Ordering::Relaxed);
    }

    /// Records one stage latency for tenant `name` — the flight
    /// recorder's per-tenant attribution of where a finished request's
    /// time went.
    pub fn record_stage_latency(&self, name: &str, stage: StageLatency, latency: Duration) {
        let tenant = self.tenant(name);
        match stage {
            StageLatency::QueueWait => tenant.queue_wait.record(latency),
            StageLatency::Execute => tenant.execute.record(latency),
            StageLatency::Respond => tenant.respond.record(latency),
        }
    }

    /// The counter block for `name`, created on first use.
    fn tenant(&self, name: &str) -> Arc<TenantCounters> {
        if let Some(counters) = self
            .tenants
            .read()
            .expect("tenant metrics lock poisoned")
            .get(name)
        {
            return Arc::clone(counters);
        }
        let mut tenants = self.tenants.write().expect("tenant metrics lock poisoned");
        Arc::clone(tenants.entry(name.to_string()).or_default())
    }

    /// Records one request entering tenant `name`'s pending queue
    /// (queue-depth gauge up, high-water mark maintained).
    pub fn record_tenant_enqueued(&self, name: &str) {
        let tenant = self.tenant(name);
        let depth = tenant.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        tenant.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Atomically admits one request for tenant `name` iff its queue
    /// depth is below `bound`: on success the gauge is incremented and
    /// `Ok(())` returned; at or above the bound nothing changes and the
    /// observed depth comes back as `Err`. The reserve-or-refuse step is
    /// a single compare-exchange loop, so concurrent admitters can never
    /// overshoot `bound` — the hard guarantee behind
    /// [`Server::try_submit`].
    ///
    /// [`Server::try_submit`]: crate::Server::try_submit
    pub fn try_record_tenant_enqueued(
        &self,
        name: &str,
        bound: u64,
    ) -> std::result::Result<(), u64> {
        let tenant = self.tenant(name);
        let mut depth = tenant.queue_depth.load(Ordering::Relaxed);
        loop {
            if depth >= bound {
                return Err(depth);
            }
            match tenant.queue_depth.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    tenant
                        .max_queue_depth
                        .fetch_max(depth + 1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(observed) => depth = observed,
            }
        }
    }

    /// Removes `requests` requests from tenant `name`'s queue-depth gauge
    /// without recording a batch (an admitted request that could not be
    /// handed to the batcher). Saturates at zero.
    pub fn record_tenant_dequeued(&self, name: &str, requests: u64) {
        let tenant = self.tenant(name);
        let _ = tenant
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                Some(depth.saturating_sub(requests))
            });
    }

    /// Records one flushed micro-batch of `requests` requests / `frames`
    /// frames for tenant `name`, draining the same count from its
    /// queue-depth gauge.
    pub fn record_tenant_batch(&self, name: &str, requests: u64, frames: u64) {
        let tenant = self.tenant(name);
        tenant.batches.fetch_add(1, Ordering::Relaxed);
        tenant.batch_requests.fetch_add(requests, Ordering::Relaxed);
        tenant.batch_frames.fetch_add(frames, Ordering::Relaxed);
        let _ = tenant
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                Some(depth.saturating_sub(requests))
            });
    }

    /// Records `requests` requests / `frames` frames shed for tenant
    /// `name` because their deadline budget was blown
    /// ([`crate::OverrunAction::Shed`]). Drains the same request count
    /// from the tenant's queue-depth gauge and counts each shed request
    /// as a request that completed with an error (every shed ticket
    /// completes with the typed [`crate::ServeError::DeadlineShed`]), so
    /// `requests == served + errors` accounting stays exact.
    pub fn record_shed(&self, name: &str, requests: u64, frames: u64) {
        self.shed.fetch_add(requests, Ordering::Relaxed);
        self.errors.fetch_add(requests, Ordering::Relaxed);
        let tenant = self.tenant(name);
        tenant.shed_requests.fetch_add(requests, Ordering::Relaxed);
        tenant.shed_frames.fetch_add(frames, Ordering::Relaxed);
        let _ = tenant
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                Some(depth.saturating_sub(requests))
            });
    }

    /// Records one micro-batch of `requests` requests served degraded
    /// (reconstructed against a truncated deployment) for tenant `name`.
    /// Flush accounting — batch counters and the queue-depth drain — is
    /// still [`ServeMetrics::record_tenant_batch`]'s job; this only adds
    /// the degraded attribution on top.
    pub fn record_degraded_batch(&self, name: &str, requests: u64) {
        self.degraded.fetch_add(requests, Ordering::Relaxed);
        let tenant = self.tenant(name);
        tenant.degraded_batches.fetch_add(1, Ordering::Relaxed);
        tenant
            .degraded_requests
            .fetch_add(requests, Ordering::Relaxed);
    }

    /// Sets the brownout gauge, counting inactive→active transitions in
    /// `brownout_entries` so flap frequency is observable even between
    /// snapshots.
    pub fn set_brownout(&self, active: bool) {
        let prev = self.brownout.swap(active as u64, Ordering::Relaxed);
        if active && prev == 0 {
            self.brownout_entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the brownout gauge is currently raised.
    pub fn in_brownout(&self) -> bool {
        self.brownout.load(Ordering::Relaxed) != 0
    }

    /// Tenant `name`'s current pending-queue depth (0 for an unseen
    /// tenant) — what [`Server::try_submit`] admission control reads.
    ///
    /// [`Server::try_submit`]: crate::Server::try_submit
    pub fn tenant_queue_depth(&self, name: &str) -> u64 {
        self.tenants
            .read()
            .expect("tenant metrics lock poisoned")
            .get(name)
            .map_or(0, |t| t.queue_depth.load(Ordering::Relaxed))
    }

    /// Records a request entering the front end with `frames` frames.
    pub fn record_request(&self, frames: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.frames.fetch_add(frames as u64, Ordering::Relaxed);
    }

    /// Records one flushed micro-batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request that completed with an error.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one streaming tracker-session step against tenant `name`.
    pub fn record_session_step(&self, name: &str) {
        self.session_steps.fetch_add(1, Ordering::Relaxed);
        self.tenant(name)
            .session_steps
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one streaming session opening (gauge up, high-water mark
    /// maintained).
    pub fn record_session_opened(&self) {
        let open = self.sessions_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_sessions_open.fetch_max(open, Ordering::Relaxed);
    }

    /// Records one streaming session closing. Saturates at zero.
    pub fn record_session_closed(&self) {
        let _ = self
            .sessions_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |open| {
                Some(open.saturating_sub(1))
            });
    }

    /// Records one scheduled session step's submit-to-response latency.
    pub fn record_session_latency(&self, latency: Duration) {
        self.session_latency.record(latency);
    }

    /// The session-step latency histogram (e.g. for custom quantiles).
    pub fn session_latency(&self) -> &LatencyHistogram {
        &self.session_latency
    }

    /// Records one request's queue-to-response latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// Records `frames` frames executed by shard `shard` (ignored for
    /// out-of-range shard indices).
    pub fn record_shard(&self, shard: usize, frames: usize) {
        if let Some(counter) = self.shard_frames.get(shard) {
            counter.fetch_add(frames as u64, Ordering::Relaxed);
        }
        if let Some(counter) = self.shard_batches.get(shard) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The latency histogram (e.g. for custom quantiles).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Folds all counters into a plain snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            brownout: self.brownout.load(Ordering::Relaxed) != 0,
            brownout_entries: self.brownout_entries.load(Ordering::Relaxed),
            session_steps: self.session_steps.load(Ordering::Relaxed),
            sessions_open: self.sessions_open.load(Ordering::Relaxed),
            max_sessions_open: self.max_sessions_open.load(Ordering::Relaxed),
            latency_mean: self.latency.mean(),
            latency_p50: self.latency.quantile(0.50),
            latency_p99: self.latency.quantile(0.99),
            session_latency_p50: self.session_latency.quantile(0.50),
            session_latency_p99: self.session_latency.quantile(0.99),
            latency_buckets: self.latency.snapshot(),
            session_latency_buckets: self.session_latency.snapshot(),
            shard_frames: self
                .shard_frames
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            shard_batches: self
                .shard_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            tenants: self
                .tenants
                .read()
                .expect("tenant metrics lock poisoned")
                .iter()
                .map(|(name, t)| {
                    (
                        name.clone(),
                        TenantSnapshot {
                            batches: t.batches.load(Ordering::Relaxed),
                            batch_requests: t.batch_requests.load(Ordering::Relaxed),
                            batch_frames: t.batch_frames.load(Ordering::Relaxed),
                            queue_depth: t.queue_depth.load(Ordering::Relaxed),
                            max_queue_depth: t.max_queue_depth.load(Ordering::Relaxed),
                            session_steps: t.session_steps.load(Ordering::Relaxed),
                            shed_requests: t.shed_requests.load(Ordering::Relaxed),
                            shed_frames: t.shed_frames.load(Ordering::Relaxed),
                            degraded_batches: t.degraded_batches.load(Ordering::Relaxed),
                            degraded_requests: t.degraded_requests.load(Ordering::Relaxed),
                            queue_wait: t.queue_wait.snapshot(),
                            execute: t.execute.snapshot(),
                            respond: t.respond.snapshot(),
                        },
                    )
                })
                .collect(),
            wire: WireSnapshot {
                connections_open: self.wire.connections_open.load(Ordering::Relaxed),
                max_connections_open: self.wire.max_connections_open.load(Ordering::Relaxed),
                frames_in: self.wire.frames_in.load(Ordering::Relaxed),
                frames_out: self.wire.frames_out.load(Ordering::Relaxed),
                bytes_in: self.wire.bytes_in.load(Ordering::Relaxed),
                bytes_out: self.wire.bytes_out.load(Ordering::Relaxed),
                errors_oversized: self.wire.errors[0].load(Ordering::Relaxed),
                errors_corrupt: self.wire.errors[1].load(Ordering::Relaxed),
                errors_malformed: self.wire.errors[2].load(Ordering::Relaxed),
                errors_unknown_kind: self.wire.errors[3].load(Ordering::Relaxed),
                errors_rejected: self.wire.errors[4].load(Ordering::Relaxed),
                reaped_idle: self.wire.reaps[0].load(Ordering::Relaxed),
                reaped_slow_client: self.wire.reaps[1].load(Ordering::Relaxed),
                reaped_drain: self.wire.reaps[2].load(Ordering::Relaxed),
                checkpoints: self.wire.checkpoints.load(Ordering::Relaxed),
                checkpoint_sessions: self.wire.checkpoint_sessions.load(Ordering::Relaxed),
                hydrated_deployments: self.wire.hydrated_deployments.load(Ordering::Relaxed),
                hydrated_sessions: self.wire.hydrated_sessions.load(Ordering::Relaxed),
                hydration_skipped: self.wire.hydration_skipped.load(Ordering::Relaxed),
            },
        }
    }
}

/// A point-in-time copy of the connection/wire gauges a network front
/// door records into [`ServeMetrics`]. All zero for a server that has no
/// network edge attached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Connections open when the snapshot was taken.
    pub connections_open: u64,
    /// High-water mark of concurrently open connections.
    pub max_connections_open: u64,
    /// Wire frames successfully decoded from clients.
    pub frames_in: u64,
    /// Wire frames encoded toward clients.
    pub frames_out: u64,
    /// Raw bytes read off sockets.
    pub bytes_in: u64,
    /// Raw bytes written to sockets.
    pub bytes_out: u64,
    /// Frames skipped because their length prefix exceeded the max-frame
    /// bound ([`WireErrorKind::Oversized`]).
    pub errors_oversized: u64,
    /// Frames that failed integrity validation
    /// ([`WireErrorKind::Corrupt`]).
    pub errors_corrupt: u64,
    /// Frames whose body failed to decode ([`WireErrorKind::Malformed`]).
    pub errors_malformed: u64,
    /// Frames carrying an unhandled message kind
    /// ([`WireErrorKind::UnknownKind`]).
    pub errors_unknown_kind: u64,
    /// Well-formed requests refused with a typed error status
    /// ([`WireErrorKind::Rejected`]).
    pub errors_rejected: u64,
    /// Connections reaped for inactivity ([`ReapReason::Idle`]).
    pub reaped_idle: u64,
    /// Connections reaped because they stopped reading while responses
    /// backed up ([`ReapReason::SlowClient`]).
    pub reaped_slow_client: u64,
    /// Connections closed during shutdown drain ([`ReapReason::Drain`]).
    pub reaped_drain: u64,
    /// Durability checkpoints committed to the snapshot store.
    pub checkpoints: u64,
    /// Session snapshots referenced across committed checkpoints.
    pub checkpoint_sessions: u64,
    /// Deployments republished from the persisted catalog at hydration.
    pub hydrated_deployments: u64,
    /// Sessions rehydrated from the snapshot store at hydration.
    pub hydrated_sessions: u64,
    /// Corrupt/torn/mismatched store entries skipped (and survived)
    /// during hydration.
    pub hydration_skipped: u64,
}

impl WireSnapshot {
    /// Total wire-level errors across every kind.
    pub fn errors_total(&self) -> u64 {
        self.errors_oversized
            + self.errors_corrupt
            + self.errors_malformed
            + self.errors_unknown_kind
            + self.errors_rejected
    }

    /// Total connections reaped across every reason.
    pub fn reaped_total(&self) -> u64 {
        self.reaped_idle + self.reaped_slow_client + self.reaped_drain
    }
}

/// A point-in-time copy of one tenant's batching counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Micro-batches flushed for this tenant.
    pub batches: u64,
    /// Requests across all flushed batches.
    pub batch_requests: u64,
    /// Frames across all flushed batches.
    pub batch_frames: u64,
    /// Requests pending in the tenant's queue when the snapshot was taken.
    pub queue_depth: u64,
    /// High-water mark of the pending-queue depth.
    pub max_queue_depth: u64,
    /// Streaming session steps served against this tenant's deployments.
    pub session_steps: u64,
    /// Requests shed for blowing their deadline (each completed with the
    /// retryable [`crate::ServeError::DeadlineShed`]).
    pub shed_requests: u64,
    /// Frames across all shed requests.
    pub shed_frames: u64,
    /// Micro-batches served degraded (truncated reconstruction).
    pub degraded_batches: u64,
    /// Requests across all degraded micro-batches.
    pub degraded_requests: u64,
    /// Raw bucket counts of the admission→dispatch stage latency (from
    /// the flight recorder; empty histogram without one).
    pub queue_wait: HistogramSnapshot,
    /// Raw bucket counts of the dispatch→kernel-done stage latency.
    pub execute: HistogramSnapshot,
    /// Raw bucket counts of the kernel-done→responded stage latency.
    pub respond: HistogramSnapshot,
}

impl TenantSnapshot {
    /// Mean requests coalesced per flushed batch (0 when no batch ran) —
    /// the batch-size-recovery figure the interleaved-tenant bench
    /// asserts on.
    pub fn mean_batch_requests(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_requests as f64 / self.batches as f64
    }

    /// Mean frames per flushed batch (0 when no batch ran).
    pub fn mean_batch_frames(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_frames as f64 / self.batches as f64
    }
}

/// A point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted by the front end.
    pub requests: u64,
    /// Frames across all accepted requests.
    pub frames: u64,
    /// Micro-batches flushed to the execution engine.
    pub batches: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Requests shed for blowing their deadline, across all tenants
    /// (also counted in `errors`).
    pub shed: u64,
    /// Requests answered with a degraded (truncated) reconstruction,
    /// across all tenants.
    pub degraded: u64,
    /// Whether the scheduler was in brownout when the snapshot was taken.
    pub brownout: bool,
    /// Inactive→active brownout transitions observed so far.
    pub brownout_entries: u64,
    /// Streaming tracker-session steps served.
    pub session_steps: u64,
    /// Streaming sessions open when the snapshot was taken.
    pub sessions_open: u64,
    /// High-water mark of concurrently open sessions.
    pub max_sessions_open: u64,
    /// Mean queue-to-response latency of batch requests.
    pub latency_mean: Duration,
    /// Median queue-to-response latency of batch requests (bucket upper
    /// bound).
    pub latency_p50: Duration,
    /// 99th-percentile queue-to-response latency of batch requests
    /// (bucket upper bound).
    pub latency_p99: Duration,
    /// Median submit-to-response latency of scheduled session steps
    /// (bucket upper bound; zero when no step was scheduled).
    pub session_latency_p50: Duration,
    /// 99th-percentile submit-to-response latency of scheduled session
    /// steps (bucket upper bound).
    pub session_latency_p99: Duration,
    /// Raw bucket counts behind `latency_p50`/`latency_p99` — the
    /// mergeable form external scrapers aggregate (see
    /// [`bucket_bounds_ns`]).
    pub latency_buckets: HistogramSnapshot,
    /// Raw bucket counts behind the session-step latency quantiles.
    pub session_latency_buckets: HistogramSnapshot,
    /// Frames executed per shard.
    pub shard_frames: Vec<u64>,
    /// Shard batches executed per shard.
    pub shard_batches: Vec<u64>,
    /// Per-tenant batching counters and queue-depth gauges, keyed by
    /// deployment name (sorted).
    pub tenants: BTreeMap<String, TenantSnapshot>,
    /// Connection/wire gauges recorded by a network front door (all zero
    /// without one).
    pub wire: WireSnapshot,
}

impl MetricsSnapshot {
    /// Each shard's share of all executed frames (empty when no frames
    /// have been executed) — the shard-utilization figure.
    pub fn shard_utilization(&self) -> Vec<f64> {
        let total: u64 = self.shard_frames.iter().sum();
        if total == 0 {
            return vec![0.0; self.shard_frames.len()];
        }
        self.shard_frames
            .iter()
            .map(|&f| f as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        for us in [3u64, 30, 300, 3_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 4);
        // p50 falls in the 2nd sample's bucket (30 µs → 50 µs bound).
        assert_eq!(h.quantile(0.5), Duration::from_micros(50));
        // p99 falls in the last sample's bucket (3 ms → 5 ms bound).
        assert_eq!(h.quantile(0.99), Duration::from_millis(5));
        // Quantiles are monotone in q.
        assert!(h.quantile(0.25) <= h.quantile(0.75));
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn nan_quantile_is_zero_in_both_impls() {
        let h = LatencyHistogram::new();
        for us in [3u64, 30, 300] {
            h.record(Duration::from_micros(us));
        }
        // A NaN rank is a caller bug: both the live histogram and its
        // snapshot report Duration::ZERO instead of silently resolving
        // to the minimum bucket.
        assert_eq!(h.quantile(f64::NAN), Duration::ZERO);
        assert_eq!(h.snapshot().quantile(f64::NAN), Duration::ZERO);
        // Infinities still clamp to the [0, 1] rank range as before.
        assert_eq!(h.quantile(f64::INFINITY), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NEG_INFINITY), h.quantile(0.0));
        assert_eq!(
            h.snapshot().quantile(f64::INFINITY),
            h.snapshot().quantile(1.0)
        );
    }

    #[test]
    fn mean_rounds_to_nearest_in_both_impls() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_nanos(2));
        // 3 ns over 2 samples is 1.5 ns: round to 2 ns, not truncate to 1.
        assert_eq!(h.mean(), Duration::from_nanos(2));
        assert_eq!(h.snapshot().mean(), Duration::from_nanos(2));
        // Exact halves round up; below-half fractions round down.
        h.record(Duration::from_nanos(1));
        // 4 ns over 3 samples = 1.33 ns → 1 ns.
        assert_eq!(h.mean(), Duration::from_nanos(1));
        assert_eq!(h.snapshot().mean(), Duration::from_nanos(1));
    }

    #[test]
    fn histogram_overflow_bucket_reports_last_bound() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(100));
        assert_eq!(h.quantile(1.0), Duration::from_secs(10));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServeMetrics::new(2);
        m.record_request(10);
        m.record_request(6);
        m.record_batch();
        m.record_shard(0, 12);
        m.record_shard(1, 4);
        m.record_shard(9, 1); // out of range: ignored
        m.record_latency(Duration::from_micros(40));
        m.record_error();
        m.record_session_step("alpha");
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.frames, 16);
        assert_eq!(s.batches, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.session_steps, 1);
        assert_eq!(s.tenants["alpha"].session_steps, 1);
        assert_eq!(s.shard_frames, vec![12, 4]);
        assert_eq!(s.shard_batches, vec![1, 1]);
        let util = s.shard_utilization();
        assert!((util[0] - 0.75).abs() < 1e-12);
        assert!((util.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(s.latency_p50, Duration::from_micros(50));
    }

    #[test]
    fn zero_utilization_is_well_defined() {
        let s = ServeMetrics::new(3).snapshot();
        assert_eq!(s.shard_utilization(), vec![0.0; 3]);
        assert!(s.tenants.is_empty());
    }

    #[test]
    fn tenant_gauges_track_enqueue_and_flush() {
        let m = ServeMetrics::new(1);
        for _ in 0..3 {
            m.record_tenant_enqueued("alpha");
        }
        m.record_tenant_enqueued("beta");
        assert_eq!(m.tenant_queue_depth("alpha"), 3);
        assert_eq!(m.tenant_queue_depth("beta"), 1);
        assert_eq!(m.tenant_queue_depth("unseen"), 0);

        m.record_tenant_batch("alpha", 2, 16);
        m.record_tenant_batch("alpha", 1, 4);
        m.record_tenant_dequeued("beta", 1);
        let s = m.snapshot();
        let alpha = &s.tenants["alpha"];
        assert_eq!(alpha.batches, 2);
        assert_eq!(alpha.batch_requests, 3);
        assert_eq!(alpha.batch_frames, 20);
        assert_eq!(alpha.queue_depth, 0);
        assert_eq!(alpha.max_queue_depth, 3);
        assert!((alpha.mean_batch_requests() - 1.5).abs() < 1e-12);
        assert!((alpha.mean_batch_frames() - 10.0).abs() < 1e-12);
        let beta = &s.tenants["beta"];
        assert_eq!(beta.queue_depth, 0);
        assert_eq!(beta.batches, 0);
        assert_eq!(beta.mean_batch_requests(), 0.0);

        // Draining more than pending saturates at zero instead of
        // wrapping the gauge.
        m.record_tenant_batch("beta", 5, 5);
        assert_eq!(m.tenant_queue_depth("beta"), 0);
    }

    #[test]
    fn shed_and_degraded_work_is_accounted_per_tenant() {
        let m = ServeMetrics::new(1);
        for _ in 0..4 {
            m.record_tenant_enqueued("bulk");
        }
        // Three requests shed: drained from the gauge, attributed to the
        // tenant, counted globally both as sheds and as errors.
        m.record_shed("bulk", 3, 24);
        assert_eq!(m.tenant_queue_depth("bulk"), 1);
        // The surviving request flushes as a degraded batch.
        m.record_tenant_batch("bulk", 1, 8);
        m.record_degraded_batch("bulk", 1);
        m.set_brownout(true);
        let s = m.snapshot();
        assert_eq!(s.shed, 3);
        assert_eq!(s.errors, 3);
        assert_eq!(s.degraded, 1);
        assert!(s.brownout);
        assert_eq!(s.brownout_entries, 1);
        let bulk = &s.tenants["bulk"];
        assert_eq!(bulk.shed_requests, 3);
        assert_eq!(bulk.shed_frames, 24);
        assert_eq!(bulk.degraded_batches, 1);
        assert_eq!(bulk.degraded_requests, 1);
        assert_eq!(bulk.queue_depth, 0);
        // Re-asserting an active brownout is not a new entry; a full
        // exit/enter cycle is.
        m.set_brownout(true);
        m.set_brownout(false);
        m.set_brownout(true);
        let s = m.snapshot();
        assert_eq!(s.brownout_entries, 2);
        assert!(m.in_brownout());
    }

    #[test]
    fn wire_gauges_track_connections_frames_and_errors() {
        let m = ServeMetrics::new(1);
        assert_eq!(m.snapshot().wire, WireSnapshot::default());
        m.record_connection_opened();
        m.record_connection_opened();
        m.record_connection_closed();
        m.record_wire_frame_in();
        m.record_wire_frame_out();
        m.record_wire_frame_out();
        m.record_wire_bytes_in(128);
        m.record_wire_bytes_out(64);
        m.record_wire_error(WireErrorKind::Oversized);
        m.record_wire_error(WireErrorKind::Corrupt);
        m.record_wire_error(WireErrorKind::Corrupt);
        m.record_wire_error(WireErrorKind::Malformed);
        m.record_wire_error(WireErrorKind::UnknownKind);
        m.record_wire_error(WireErrorKind::Rejected);
        let w = m.snapshot().wire;
        assert_eq!(w.connections_open, 1);
        assert_eq!(w.max_connections_open, 2);
        assert_eq!(w.frames_in, 1);
        assert_eq!(w.frames_out, 2);
        assert_eq!(w.bytes_in, 128);
        assert_eq!(w.bytes_out, 64);
        assert_eq!(w.errors_oversized, 1);
        assert_eq!(w.errors_corrupt, 2);
        assert_eq!(w.errors_malformed, 1);
        assert_eq!(w.errors_unknown_kind, 1);
        assert_eq!(w.errors_rejected, 1);
        assert_eq!(w.errors_total(), 6);
        // Closing saturates at zero instead of wrapping.
        for _ in 0..5 {
            m.record_connection_closed();
        }
        assert_eq!(m.snapshot().wire.connections_open, 0);
    }

    #[test]
    fn histogram_snapshot_exposes_raw_buckets() {
        let h = LatencyHistogram::new();
        for us in [3u64, 30, 300, 3_000] {
            h.record(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), bucket_bounds_ns().len() + 1);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4);
        // Raw counts land exactly where the bounds say they should.
        for (i, &bound) in bucket_bounds_ns().iter().enumerate() {
            let expected = [3_000u64, 30_000, 300_000, 3_000_000]
                .iter()
                .filter(|&&ns| {
                    let lower = if i == 0 { 0 } else { bucket_bounds_ns()[i - 1] };
                    ns > lower && ns <= bound
                })
                .count() as u64;
            assert_eq!(snap.buckets[i], expected, "bucket {i}");
        }
        // Derived figures agree between the live histogram and the copy.
        assert_eq!(snap.quantile(0.5), h.quantile(0.5));
        assert_eq!(snap.quantile(0.99), h.quantile(0.99));
        assert_eq!(snap.mean(), h.mean());
        // An overflow sample lands in the final bucket of the copy too.
        h.record(Duration::from_secs(100));
        let snap = h.snapshot();
        assert_eq!(snap.buckets[bucket_bounds_ns().len()], 1);
        assert_eq!(snap.quantile(1.0), Duration::from_secs(10));
    }

    #[test]
    fn stage_latencies_attribute_per_tenant() {
        let m = ServeMetrics::new(1);
        m.record_stage_latency("alpha", StageLatency::QueueWait, Duration::from_micros(40));
        m.record_stage_latency("alpha", StageLatency::QueueWait, Duration::from_micros(45));
        m.record_stage_latency("alpha", StageLatency::Execute, Duration::from_micros(400));
        m.record_stage_latency("alpha", StageLatency::Respond, Duration::from_micros(4));
        let s = m.snapshot();
        let alpha = &s.tenants["alpha"];
        assert_eq!(alpha.queue_wait.count, 2);
        assert_eq!(alpha.execute.count, 1);
        assert_eq!(alpha.respond.count, 1);
        assert_eq!(alpha.queue_wait.quantile(0.5), Duration::from_micros(50));
        assert_eq!(alpha.execute.quantile(0.5), Duration::from_micros(500));
        assert_eq!(alpha.respond.quantile(0.5), Duration::from_micros(5));
        // Stage histograms never leak into the endpoint histograms.
        assert_eq!(s.latency_buckets.count, 0);
        assert_eq!(s.session_latency_buckets.count, 0);
    }

    #[test]
    fn reap_reasons_count_separately() {
        let m = ServeMetrics::new(1);
        m.record_reap(ReapReason::Idle);
        m.record_reap(ReapReason::SlowClient);
        m.record_reap(ReapReason::SlowClient);
        m.record_reap(ReapReason::Drain);
        let w = m.snapshot().wire;
        assert_eq!(w.reaped_idle, 1);
        assert_eq!(w.reaped_slow_client, 2);
        assert_eq!(w.reaped_drain, 1);
        assert_eq!(w.reaped_total(), 4);
        // Reaps are not wire errors.
        assert_eq!(w.errors_total(), 0);
    }

    #[test]
    fn durability_counters_flow_into_wire_snapshot() {
        let m = ServeMetrics::new(1);
        m.record_checkpoint(3);
        m.record_checkpoint(2);
        m.record_hydrated_deployment();
        m.record_hydrated_session();
        m.record_hydrated_session();
        m.record_hydration_skipped(4);
        let w = m.snapshot().wire;
        assert_eq!(w.checkpoints, 2);
        assert_eq!(w.checkpoint_sessions, 5);
        assert_eq!(w.hydrated_deployments, 1);
        assert_eq!(w.hydrated_sessions, 2);
        assert_eq!(w.hydration_skipped, 4);
        // Durability traffic is not a wire error or a reap.
        assert_eq!(w.errors_total(), 0);
        assert_eq!(w.reaped_total(), 0);
    }

    #[test]
    fn session_gauges_track_open_close_and_latency() {
        let m = ServeMetrics::new(1);
        m.record_session_opened();
        m.record_session_opened();
        m.record_session_closed();
        m.record_session_opened();
        m.record_session_latency(Duration::from_micros(40));
        let s = m.snapshot();
        assert_eq!(s.sessions_open, 2);
        assert_eq!(s.max_sessions_open, 2);
        assert_eq!(s.session_latency_p50, Duration::from_micros(50));
        // The batch-request histogram is untouched by session traffic.
        assert_eq!(s.latency_p99, Duration::ZERO);
        // Closing saturates at zero instead of wrapping.
        for _ in 0..5 {
            m.record_session_closed();
        }
        assert_eq!(m.snapshot().sessions_open, 0);
    }
}
