//! Lightweight serving metrics: request/frame counters, a fixed-bucket
//! latency histogram and per-shard utilization counters.
//!
//! Everything is a relaxed atomic — recording from worker threads and the
//! batcher costs a handful of uncontended atomic increments per request,
//! never a lock. [`ServeMetrics::snapshot`] folds the counters into a
//! plain [`MetricsSnapshot`] for reporting.
//!
//! # Histogram semantics
//!
//! The latency histogram uses **fixed bucket edges** — a 1-2-5
//! logarithmic ladder from 1 µs to 10 s (22 bounds plus one overflow
//! bucket), identical in every process, so histograms from different
//! serving replicas can be merged bucket-by-bucket without resampling.
//! Quantiles (the `latency_p50` / `latency_p99` snapshot fields) are
//! resolved to the **upper edge of the containing bucket**, not
//! interpolated within it: a reported p99 of 5 ms means "99% of requests
//! completed in at most 5 ms". Estimates are therefore conservative
//! (never under-report) and within one 1-2-5 ladder step of the true
//! quantile. See [`LatencyHistogram::quantile`] for the exact rule,
//! including the overflow clamp.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (nanoseconds) of the latency histogram buckets — a 1-2-5
/// log ladder from 1 µs to 10 s. Latencies above the last bound land in a
/// final overflow bucket.
const BUCKET_BOUNDS_NS: [u64; 22] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Fixed-bucket latency histogram with lock-free recording.
///
/// Quantile estimates are upper bounds of the containing bucket: for
/// samples within the bucket ladder they are conservative (never
/// under-report) and within one 1-2-5 step of the true quantile. Samples
/// beyond the last bound land in an overflow bucket and are clamped to
/// the 10 s bound — a serving latency that far out is an outage, not a
/// percentile to resolve.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let idx = BUCKET_BOUNDS_NS.partition_point(|&bound| bound < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean recorded latency ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed) / count)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// containing it; [`Duration::ZERO`] when empty. Values in the
    /// overflow bucket report the last bound (10 s).
    ///
    /// The rank is `ceil(q · count)` over the cumulative bucket counts
    /// (so `q = 0.5` with two samples resolves to the first), and the
    /// result is always one of the fixed bucket edges — no within-bucket
    /// interpolation; see the [module docs](self) for why. Quantiles are
    /// monotone in `q` and never below any recorded sample's bucket.
    pub fn quantile(&self, q: f64) -> Duration {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                let bound = BUCKET_BOUNDS_NS
                    .get(i)
                    .copied()
                    .unwrap_or(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1]);
                return Duration::from_nanos(bound);
            }
        }
        Duration::from_nanos(BUCKET_BOUNDS_NS[BUCKET_BOUNDS_NS.len() - 1])
    }
}

/// Counter hub shared by the front end, the execution engine and any
/// sessions. Cheap to record into from any thread.
#[derive(Debug)]
pub struct ServeMetrics {
    requests: AtomicU64,
    frames: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    session_steps: AtomicU64,
    latency: LatencyHistogram,
    shard_frames: Vec<AtomicU64>,
    shard_batches: Vec<AtomicU64>,
}

impl ServeMetrics {
    /// Metrics for a runtime with `shards` execution shards.
    pub fn new(shards: usize) -> Self {
        ServeMetrics {
            requests: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            session_steps: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            shard_frames: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_batches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records a request entering the front end with `frames` frames.
    pub fn record_request(&self, frames: usize) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.frames.fetch_add(frames as u64, Ordering::Relaxed);
    }

    /// Records one flushed micro-batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request that completed with an error.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one streaming tracker-session step.
    pub fn record_session_step(&self) {
        self.session_steps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's queue-to-response latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// Records `frames` frames executed by shard `shard` (ignored for
    /// out-of-range shard indices).
    pub fn record_shard(&self, shard: usize, frames: usize) {
        if let Some(counter) = self.shard_frames.get(shard) {
            counter.fetch_add(frames as u64, Ordering::Relaxed);
        }
        if let Some(counter) = self.shard_batches.get(shard) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The latency histogram (e.g. for custom quantiles).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Folds all counters into a plain snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            session_steps: self.session_steps.load(Ordering::Relaxed),
            latency_mean: self.latency.mean(),
            latency_p50: self.latency.quantile(0.50),
            latency_p99: self.latency.quantile(0.99),
            shard_frames: self
                .shard_frames
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            shard_batches: self
                .shard_batches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted by the front end.
    pub requests: u64,
    /// Frames across all accepted requests.
    pub frames: u64,
    /// Micro-batches flushed to the execution engine.
    pub batches: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// Streaming tracker-session steps served.
    pub session_steps: u64,
    /// Mean queue-to-response latency.
    pub latency_mean: Duration,
    /// Median queue-to-response latency (bucket upper bound).
    pub latency_p50: Duration,
    /// 99th-percentile queue-to-response latency (bucket upper bound).
    pub latency_p99: Duration,
    /// Frames executed per shard.
    pub shard_frames: Vec<u64>,
    /// Shard batches executed per shard.
    pub shard_batches: Vec<u64>,
}

impl MetricsSnapshot {
    /// Each shard's share of all executed frames (empty when no frames
    /// have been executed) — the shard-utilization figure.
    pub fn shard_utilization(&self) -> Vec<f64> {
        let total: u64 = self.shard_frames.iter().sum();
        if total == 0 {
            return vec![0.0; self.shard_frames.len()];
        }
        self.shard_frames
            .iter()
            .map(|&f| f as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        for us in [3u64, 30, 300, 3_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 4);
        // p50 falls in the 2nd sample's bucket (30 µs → 50 µs bound).
        assert_eq!(h.quantile(0.5), Duration::from_micros(50));
        // p99 falls in the last sample's bucket (3 ms → 5 ms bound).
        assert_eq!(h.quantile(0.99), Duration::from_millis(5));
        // Quantiles are monotone in q.
        assert!(h.quantile(0.25) <= h.quantile(0.75));
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn histogram_overflow_bucket_reports_last_bound() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(100));
        assert_eq!(h.quantile(1.0), Duration::from_secs(10));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServeMetrics::new(2);
        m.record_request(10);
        m.record_request(6);
        m.record_batch();
        m.record_shard(0, 12);
        m.record_shard(1, 4);
        m.record_shard(9, 1); // out of range: ignored
        m.record_latency(Duration::from_micros(40));
        m.record_error();
        m.record_session_step();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.frames, 16);
        assert_eq!(s.batches, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.session_steps, 1);
        assert_eq!(s.shard_frames, vec![12, 4]);
        assert_eq!(s.shard_batches, vec![1, 1]);
        let util = s.shard_utilization();
        assert!((util[0] - 0.75).abs() < 1e-12);
        assert!((util.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(s.latency_p50, Duration::from_micros(50));
    }

    #[test]
    fn zero_utilization_is_well_defined() {
        let s = ServeMetrics::new(3).snapshot();
        assert_eq!(s.shard_utilization(), vec![0.0; 3]);
    }
}
