//! The flight recorder: per-request stage tracing through the whole
//! serving lifecycle, recorded into a fixed-capacity lock-free ring.
//!
//! `ServeMetrics` answers "how is the fleet doing" with aggregate
//! counters and histograms; this module answers "what happened to *that*
//! request". Every batch request, session step and wire frame gets a
//! [`TraceId`] at admission and emits typed [`Stage`] events as it moves
//! through the stack:
//!
//! ```text
//! Admitted → Enqueued → Coalesced(N) → ShardDispatched → KernelDone → Responded
//!     │                                                └→ Degraded(k') ─┘
//!     └────────────────────────────────────────────────→ Rejected(reason)
//! ```
//!
//! `Degraded(k')` is the brownout marker: the response was served, but
//! against a deployment truncated to `k'` modes. `Rejected` with the
//! `DeadlineShed` reason is the load-shedding terminal.
//!
//! Timestamps are [`Duration`]s on the server's injected monotonic clock
//! ([`MonotonicClock`]) — the same seam the scheduler's deadline
//! arithmetic uses — so a mock-clock test drives `*_at` entry points
//! with explicit durations and asserts the **exact** event sequence a
//! given arrival timeline produces.
//!
//! # The ring
//!
//! Events land in a fixed-capacity ring of seqlock-style slots:
//!
//! * **No allocation, no locks on the hot path** — a writer claims a
//!   ticket with one `fetch_add`, publishes the slot's payload between
//!   two sequence-counter transitions, and never blocks. Every slot
//!   field is an atomic; there is no `unsafe` anywhere.
//! * **Overwrite-oldest** — the ring always holds the newest `capacity`
//!   events; history older than that is dropped, and
//!   [`FlightRecorder::dropped`] counts exactly how much.
//! * **Torn-proof reads** — [`FlightRecorder::snapshot`] revalidates
//!   each slot's sequence counter after reading its payload and skips
//!   slots that were concurrently overwritten, so a snapshot never
//!   contains a half-written event.
//!
//! # On top of the ring
//!
//! When constructed with [`FlightRecorder::with_metrics`], a finished
//! trace is folded into per-tenant **stage histograms** in
//! [`ServeMetrics`] (queue-wait vs execute vs respond — see
//! [`StageLatency`]), and offered to the **slow-request exemplar
//! store**, which keeps the [`EXEMPLARS_PER_TENANT`] worst full traces
//! per tenant ([`FlightRecorder::exemplars`]) so the outlier behind a
//! bad p99 can be read stage by stage. The `eigenmaps-net` crate serves
//! both — plus the raw ring — over the wire as the `EMWIRE1` `Trace`
//! reply.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use eigenmaps_core::clock::MonotonicClock;

use crate::metrics::{ServeMetrics, StageLatency};

/// Default event capacity of the recorder's ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// How many worst-case (slowest) full traces the exemplar store keeps
/// per tenant.
pub const EXEMPLARS_PER_TENANT: usize = 4;

/// Identifier of one traced request, session step or wire frame, unique
/// within a recorder's lifetime. Id `0` is reserved for "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Why a traced request ended without a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Refused at admission: the tenant's pending queue was full.
    Saturated,
    /// The server shut down before the request could be served.
    Terminated,
    /// Execution failed (the error went back to the client).
    Failed,
    /// The request overran its tenant's QoS deadline while queued and
    /// was load-shed by the scheduler (typed retryable error to the
    /// client).
    DeadlineShed,
}

impl RejectReason {
    /// Stable wire code (1–4) for this reason.
    pub fn code(&self) -> u64 {
        match self {
            RejectReason::Saturated => 1,
            RejectReason::Terminated => 2,
            RejectReason::Failed => 3,
            RejectReason::DeadlineShed => 4,
        }
    }

    /// Decodes a wire code produced by [`RejectReason::code`].
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(RejectReason::Saturated),
            2 => Some(RejectReason::Terminated),
            3 => Some(RejectReason::Failed),
            4 => Some(RejectReason::DeadlineShed),
            _ => None,
        }
    }
}

/// One typed lifecycle stage of a traced request. The stage taxonomy is
/// documented in ARCHITECTURE.md's observability section; codes and args
/// are stable wire values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Passed admission control at the front door.
    Admitted,
    /// Entered its tenant's pending lane in the scheduler.
    Enqueued,
    /// Granted by the scheduler into a flush of `requests` coalesced
    /// requests.
    Coalesced {
        /// How many requests share the flushed batch.
        requests: u32,
    },
    /// Handed to the sharded executor.
    ShardDispatched,
    /// The synthesis kernel finished.
    KernelDone,
    /// The response was delivered to the waiter.
    Responded,
    /// The request ended without a response.
    Rejected(RejectReason),
    /// The response was served **degraded**: reconstructed against a
    /// deployment truncated to `keep_k` modes because the tenant's QoS
    /// action is `Degrade` and the server was in brownout (or the
    /// request overran its deadline). Emitted just before
    /// [`Stage::Responded`]; non-terminal.
    Degraded {
        /// How many eigenmode coefficients the serving deployment kept.
        keep_k: u32,
    },
}

impl Stage {
    /// Stable wire code (0–7) for this stage.
    pub fn code(&self) -> u8 {
        match self {
            Stage::Admitted => 0,
            Stage::Enqueued => 1,
            Stage::Coalesced { .. } => 2,
            Stage::ShardDispatched => 3,
            Stage::KernelDone => 4,
            Stage::Responded => 5,
            Stage::Rejected(_) => 6,
            Stage::Degraded { .. } => 7,
        }
    }

    /// The stage's argument: coalesced request count for
    /// [`Stage::Coalesced`], the [`RejectReason::code`] for
    /// [`Stage::Rejected`], the kept mode count for [`Stage::Degraded`],
    /// `0` otherwise.
    pub fn arg(&self) -> u64 {
        match self {
            Stage::Coalesced { requests } => *requests as u64,
            Stage::Rejected(reason) => reason.code(),
            Stage::Degraded { keep_k } => *keep_k as u64,
            _ => 0,
        }
    }

    /// Decodes a `(code, arg)` pair produced by [`Stage::code`] /
    /// [`Stage::arg`].
    pub fn from_wire(code: u8, arg: u64) -> Option<Self> {
        match code {
            0 => Some(Stage::Admitted),
            1 => Some(Stage::Enqueued),
            2 => Some(Stage::Coalesced {
                requests: u32::try_from(arg).ok()?,
            }),
            3 => Some(Stage::ShardDispatched),
            4 => Some(Stage::KernelDone),
            5 => Some(Stage::Responded),
            6 => Some(Stage::Rejected(RejectReason::from_code(arg)?)),
            7 => Some(Stage::Degraded {
                keep_k: u32::try_from(arg).ok()?,
            }),
            _ => None,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Admitted => write!(f, "admitted"),
            Stage::Enqueued => write!(f, "enqueued"),
            Stage::Coalesced { requests } => write!(f, "coalesced({requests})"),
            Stage::ShardDispatched => write!(f, "shard-dispatched"),
            Stage::KernelDone => write!(f, "kernel-done"),
            Stage::Responded => write!(f, "responded"),
            Stage::Rejected(reason) => write!(f, "rejected({reason:?})"),
            Stage::Degraded { keep_k } => write!(f, "degraded({keep_k})"),
        }
    }
}

/// A copyable handle naming one trace — the id plus its interned tenant —
/// that components without the full [`TraceCard`] (e.g. the pure
/// scheduler) use to emit raw ring events through
/// [`FlightRecorder::event`]. [`TraceRef::NONE`] is the untraced
/// sentinel: every recorder API ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    id: u64,
    tenant: u32,
}

impl TraceRef {
    /// The untraced sentinel: emitting events against it is a no-op.
    pub const NONE: TraceRef = TraceRef { id: 0, tenant: 0 };

    /// The trace id (zero for [`TraceRef::NONE`]).
    pub fn id(&self) -> TraceId {
        TraceId(self.id)
    }

    /// Whether this ref names a real trace.
    pub fn is_traced(&self) -> bool {
        self.id != 0
    }
}

impl Default for TraceRef {
    fn default() -> Self {
        TraceRef::NONE
    }
}

/// One decoded event out of the ring: which trace, which tenant, which
/// stage, when (duration since the recorder's epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// The tenant (deployment name) the trace was admitted under.
    pub tenant: String,
    /// The lifecycle stage.
    pub stage: Stage,
    /// When it happened, on the recorder's monotonic clock.
    pub at: Duration,
}

/// A torn-proof copy of the ring: the events still resident (oldest
/// first), how many were ever written, and how many are gone — either
/// overwritten by newer traffic or skipped because a concurrent writer
/// held the slot mid-publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    /// Decoded events, in write order (oldest surviving first).
    pub events: Vec<TraceEvent>,
    /// Events ever written to the ring.
    pub written: u64,
    /// Events no longer readable: overwritten by newer events, plus
    /// writes abandoned to a lapping writer (counted once each).
    pub dropped: u64,
}

/// One kept worst-case trace: the stages the request went through with
/// their timestamps, and the total admitted-to-terminal latency it is
/// ranked by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceExemplar {
    /// The trace id.
    pub trace: TraceId,
    /// Total latency from admission to the terminal stage.
    pub total: Duration,
    /// The stages observed, in lifecycle order, with their timestamps.
    pub stages: Vec<(Stage, Duration)>,
}

/// Stage-slot indices on a [`TraceCard`] (== [`Stage::code`]).
const STAGE_SLOTS: usize = 8;
const SLOT_ADMITTED: usize = 0;
const SLOT_COALESCED: usize = 2;
const SLOT_DISPATCHED: usize = 3;
const SLOT_KERNEL: usize = 4;
const SLOT_RESPONDED: usize = 5;
const SLOT_REJECTED: usize = 6;
const SLOT_DEGRADED: usize = 7;

/// Slot indices in lifecycle order — what exemplar timelines iterate.
/// `Degraded` (slot 7, a late wire addition) happens between the kernel
/// finishing and the response going out, so it sorts before the
/// terminals despite its higher wire code.
const LIFECYCLE_ORDER: [usize; STAGE_SLOTS] = [0, 1, 2, 3, 4, 7, 5, 6];

/// One seqlock-style ring slot. `seq` advances `2·turn → 2·turn+1`
/// (writer in progress) `→ 2·turn+2` (turn's payload published); readers
/// accept a slot only when they observe the same even value before and
/// after the payload loads.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    /// Interned tenant id (high 32 bits) | stage code (low 8 bits).
    tenant_stage: AtomicU64,
    arg: AtomicU64,
    at_ns: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            tenant_stage: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
        }
    }
}

/// Interned tenant names: the ring stores a `u32` per event instead of a
/// heap string, so the hot path never allocates. Read-mostly, like the
/// metrics tenant registry.
#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

#[derive(Debug)]
struct Shared {
    clock: MonotonicClock,
    enabled: AtomicBool,
    next_trace: AtomicU64,
    slots: Vec<Slot>,
    /// Ring write tickets ever claimed (== events written or abandoned).
    head: AtomicU64,
    /// Writes abandoned because a lapping writer already held the slot.
    contended: AtomicU64,
    interner: RwLock<Interner>,
    exemplars: Mutex<HashMap<u32, Vec<TraceExemplar>>>,
    metrics: Option<Arc<ServeMetrics>>,
}

impl Shared {
    /// Interns `tenant`, returning its stable id.
    fn tenant_id(&self, tenant: &str) -> u32 {
        if let Some(&id) = self
            .interner
            .read()
            .expect("trace interner lock poisoned")
            .ids
            .get(tenant)
        {
            return id;
        }
        let mut interner = self.interner.write().expect("trace interner lock poisoned");
        if let Some(&id) = interner.ids.get(tenant) {
            return id;
        }
        let id = interner.names.len() as u32;
        interner.names.push(tenant.to_string());
        interner.ids.insert(tenant.to_string(), id);
        id
    }

    fn tenant_name(&self, id: u32) -> String {
        self.interner
            .read()
            .expect("trace interner lock poisoned")
            .names
            .get(id as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// The lock-free ring write: claim a ticket, publish the payload
    /// between the slot's two seq transitions. If the slot's CAS fails
    /// the writer was lapped while stalled — the write is abandoned (not
    /// torn) and counted in `contended`.
    fn write(&self, trace: u64, tenant: u32, stage: Stage, at: Duration) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(ticket % cap) as usize];
        let turn = ticket / cap;
        if slot
            .seq
            .compare_exchange(2 * turn, 2 * turn + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // A faster writer lapped the ring and took this slot's next
            // turn while we were stalled; give the event up cleanly.
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ns = u64::try_from(at.as_nanos()).unwrap_or(u64::MAX);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.tenant_stage.store(
            ((tenant as u64) << 8) | stage.code() as u64,
            Ordering::Relaxed,
        );
        slot.arg.store(stage.arg(), Ordering::Relaxed);
        slot.at_ns.store(ns, Ordering::Relaxed);
        slot.seq.store(2 * turn + 2, Ordering::Release);
    }

    /// Folds a finished card into the per-tenant stage histograms and
    /// offers it to the exemplar store.
    fn finalize(&self, card: &CardState) {
        let stamps: [Option<u64>; STAGE_SLOTS] = std::array::from_fn(|i| {
            let raw = card.stages[i].load(Ordering::Acquire);
            if raw == 0 {
                None
            } else {
                Some(raw - 1)
            }
        });
        let terminal = stamps[SLOT_RESPONDED].or(stamps[SLOT_REJECTED]);
        if let Some(metrics) = &self.metrics {
            // Borrow the interned name rather than cloning it: this runs
            // once per finished request.
            let interner = self.interner.read().expect("trace interner lock poisoned");
            let name = interner
                .names
                .get(card.tenant as usize)
                .map_or("", String::as_str);
            let span = |a: Option<u64>, b: Option<u64>| match (a, b) {
                (Some(a), Some(b)) => Some(Duration::from_nanos(b.saturating_sub(a))),
                _ => None,
            };
            if let Some(wait) = span(stamps[SLOT_ADMITTED], stamps[SLOT_DISPATCHED]) {
                metrics.record_stage_latency(name, StageLatency::QueueWait, wait);
            }
            if let Some(execute) = span(stamps[SLOT_DISPATCHED], stamps[SLOT_KERNEL]) {
                metrics.record_stage_latency(name, StageLatency::Execute, execute);
            }
            if let Some(respond) = span(stamps[SLOT_KERNEL], terminal) {
                metrics.record_stage_latency(name, StageLatency::Respond, respond);
            }
        }
        let (Some(admitted), Some(terminal)) = (stamps[SLOT_ADMITTED], terminal) else {
            return; // no admission or no terminal stage: nothing to rank
        };
        let total = Duration::from_nanos(terminal.saturating_sub(admitted));
        let mut store = self.exemplars.lock().expect("trace exemplar lock poisoned");
        let kept = store.entry(card.tenant).or_default();
        // Hot path: once the store is full, a trace that is not slower
        // than the slowest kept exemplar is dropped before its timeline
        // is even materialised — no allocation, no sort.
        if kept.len() >= EXEMPLARS_PER_TENANT
            && kept.last().is_some_and(|mildest| total <= mildest.total)
        {
            return;
        }
        let stages: Vec<(Stage, Duration)> = LIFECYCLE_ORDER
            .iter()
            .filter_map(|&i| {
                let ns = stamps[i]?;
                let stage = match i {
                    SLOT_REJECTED => Stage::Rejected(RejectReason::from_code(card.reject_arg())?),
                    SLOT_COALESCED => Stage::Coalesced {
                        requests: card.coalesce_arg() as u32,
                    },
                    SLOT_DEGRADED => Stage::Degraded {
                        keep_k: card.degrade_arg() as u32,
                    },
                    _ => Stage::from_wire(i as u8, 0)?,
                };
                Some((stage, Duration::from_nanos(ns)))
            })
            .collect();
        kept.push(TraceExemplar {
            trace: TraceId(card.id),
            total,
            stages,
        });
        kept.sort_by(|a, b| b.total.cmp(&a.total).then(a.trace.cmp(&b.trace)));
        kept.truncate(EXEMPLARS_PER_TENANT);
    }
}

/// The live state behind a [`TraceCard`]: the per-stage timestamp slots
/// (nanoseconds + 1; zero = unset) a finished trace is folded from.
#[derive(Debug)]
struct CardState {
    shared: Arc<Shared>,
    id: u64,
    tenant: u32,
    stages: [AtomicU64; STAGE_SLOTS],
    args: [AtomicU64; 3],
    finished: AtomicBool,
}

impl CardState {
    fn coalesce_arg(&self) -> u64 {
        self.args[0].load(Ordering::Acquire)
    }

    fn reject_arg(&self) -> u64 {
        self.args[1].load(Ordering::Acquire)
    }

    fn degrade_arg(&self) -> u64 {
        self.args[2].load(Ordering::Acquire)
    }

    /// Stamps `stage` at `at` on the card (slot only, no ring event) and
    /// runs finalization exactly once when a terminal stage lands.
    fn stamp(&self, stage: Stage, at: Duration) {
        let ns = u64::try_from(at.as_nanos()).unwrap_or(u64::MAX - 1);
        let idx = stage.code() as usize;
        self.stages[idx].store(ns + 1, Ordering::Release);
        match stage {
            Stage::Coalesced { requests } => {
                self.args[0].store(requests as u64, Ordering::Release);
            }
            Stage::Rejected(reason) => {
                self.args[1].store(reason.code(), Ordering::Release);
            }
            Stage::Degraded { keep_k } => {
                self.args[2].store(keep_k as u64, Ordering::Release);
            }
            _ => {}
        }
        let terminal = matches!(stage, Stage::Responded | Stage::Rejected(_));
        if terminal && !self.finished.swap(true, Ordering::AcqRel) {
            self.shared.finalize(self);
        }
    }
}

/// The tracing handle that travels with one request (or session step,
/// or wire frame) through the stack. Cloning shares the same trace.
///
/// A card from a disabled recorder is inert: every method is a cheap
/// no-op, which is what the ≤5% overhead bench compares against.
#[derive(Debug, Clone, Default)]
pub struct TraceCard(Option<Arc<CardState>>);

impl TraceCard {
    /// The untraced card — what a disabled recorder hands out.
    pub fn none() -> Self {
        TraceCard(None)
    }

    /// The trace id (zero when untraced).
    pub fn id(&self) -> TraceId {
        TraceId(self.0.as_ref().map_or(0, |c| c.id))
    }

    /// A copyable [`TraceRef`] for components that emit raw ring events
    /// (e.g. the scheduler).
    pub fn trace_ref(&self) -> TraceRef {
        self.0.as_ref().map_or(TraceRef::NONE, |c| TraceRef {
            id: c.id,
            tenant: c.tenant,
        })
    }

    /// Records `stage` now (on the recorder's clock): one ring event
    /// plus the card's stage stamp. A terminal stage
    /// ([`Stage::Responded`] / [`Stage::Rejected`]) folds the trace into
    /// the stage histograms and the exemplar store, exactly once.
    pub fn record(&self, stage: Stage) {
        if let Some(card) = &self.0 {
            let at = card.shared.clock.now();
            self.record_at(stage, at);
        }
    }

    /// [`TraceCard::record`] at an explicit timestamp — the mock-clock
    /// entry point, and what converts foreign `Instant` stamps.
    pub fn record_at(&self, stage: Stage, at: Duration) {
        if let Some(card) = &self.0 {
            card.shared.write(card.id, card.tenant, stage, at);
            card.stamp(stage, at);
        }
    }

    /// Stamps `stage` on the card **without** a ring event — for stages
    /// another component (the scheduler) already emitted to the ring
    /// against this trace's [`TraceRef`], so the card's exemplar view
    /// stays complete without duplicating ring events.
    pub fn note_at(&self, stage: Stage, at: Duration) {
        if let Some(card) = &self.0 {
            card.stamp(stage, at);
        }
    }
}

/// The per-server flight recorder: trace-id allocator, event ring,
/// exemplar store, and (optionally) the [`ServeMetrics`] hub stage
/// latencies are folded into. Clones share state; handing one to every
/// layer of the stack is one `Arc` bump.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    shared: Arc<Shared>,
}

impl FlightRecorder {
    /// A recorder with an event ring of `capacity` (min 1) and no
    /// metrics hub attached.
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A recorder that additionally folds finished traces into
    /// `metrics`' per-tenant stage histograms.
    pub fn with_metrics(capacity: usize, metrics: Arc<ServeMetrics>) -> Self {
        Self::build(capacity, Some(metrics))
    }

    fn build(capacity: usize, metrics: Option<Arc<ServeMetrics>>) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            shared: Arc::new(Shared {
                clock: MonotonicClock::new(),
                enabled: AtomicBool::new(true),
                next_trace: AtomicU64::new(1),
                slots: (0..capacity).map(|_| Slot::new()).collect(),
                head: AtomicU64::new(0),
                contended: AtomicU64::new(0),
                interner: RwLock::new(Interner::default()),
                exemplars: Mutex::new(HashMap::new()),
                metrics,
            }),
        }
    }

    /// The ring's event capacity.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// The recorder's monotonic clock epoch — foreign `Instant` stamps
    /// convert onto the trace timeline with
    /// `stamp.saturating_duration_since(recorder.epoch())`.
    pub fn epoch(&self) -> Instant {
        self.shared.clock.epoch()
    }

    /// The current timestamp on the recorder's clock.
    pub fn now(&self) -> Duration {
        self.shared.clock.now()
    }

    /// Turns recording on or off. Off, [`FlightRecorder::begin`] hands
    /// out inert cards and [`FlightRecorder::event`] is a no-op — the
    /// cost of a disabled recorder is one relaxed load per call site.
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Release);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Acquire)
    }

    /// Starts a trace for `tenant`, recording [`Stage::Admitted`] now.
    /// Returns an inert card when disabled.
    pub fn begin(&self, tenant: &str) -> TraceCard {
        if !self.is_enabled() {
            return TraceCard::none();
        }
        self.begin_at(tenant, self.now())
    }

    /// [`FlightRecorder::begin`] at an explicit admission timestamp —
    /// the mock-clock entry point.
    pub fn begin_at(&self, tenant: &str, at: Duration) -> TraceCard {
        if !self.is_enabled() {
            return TraceCard::none();
        }
        let id = self.shared.next_trace.fetch_add(1, Ordering::Relaxed);
        let tenant = self.shared.tenant_id(tenant);
        let card = TraceCard(Some(Arc::new(CardState {
            shared: Arc::clone(&self.shared),
            id,
            tenant,
            stages: std::array::from_fn(|_| AtomicU64::new(0)),
            args: std::array::from_fn(|_| AtomicU64::new(0)),
            finished: AtomicBool::new(false),
        })));
        card.record_at(Stage::Admitted, at);
        card
    }

    /// Allocates a bare [`TraceRef`] for `tenant` without a card or an
    /// `Admitted` event — for terminal-only traces such as a request
    /// rejected before admission. [`TraceRef::NONE`] when disabled.
    pub fn allocate(&self, tenant: &str) -> TraceRef {
        if !self.is_enabled() {
            return TraceRef::NONE;
        }
        TraceRef {
            id: self.shared.next_trace.fetch_add(1, Ordering::Relaxed),
            tenant: self.shared.tenant_id(tenant),
        }
    }

    /// Emits one raw ring event against `trace` at `at`. No-op for
    /// [`TraceRef::NONE`] or when disabled. Unlike [`TraceCard`]
    /// methods this does not advance any card state — it is the entry
    /// point for card-less components like the scheduler.
    pub fn event(&self, trace: TraceRef, stage: Stage, at: Duration) {
        if !trace.is_traced() || !self.is_enabled() {
            return;
        }
        self.shared.write(trace.id, trace.tenant, stage, at);
    }

    /// Events ever written to the ring (excluding contended writes that
    /// were abandoned).
    pub fn written(&self) -> u64 {
        let claimed = self.shared.head.load(Ordering::Acquire);
        claimed.saturating_sub(self.shared.contended.load(Ordering::Acquire))
    }

    /// Events no longer readable from the ring: everything older than
    /// the newest `capacity` events (overwrite-oldest), plus writes
    /// abandoned to a lapping writer.
    pub fn dropped(&self) -> u64 {
        let claimed = self.shared.head.load(Ordering::Acquire);
        let contended = self.shared.contended.load(Ordering::Acquire);
        let written = claimed.saturating_sub(contended);
        written.saturating_sub(self.capacity() as u64) + contended
    }

    /// A torn-proof copy of the ring's resident events (oldest first)
    /// with write/drop accounting. Concurrent writers may overwrite
    /// slots mid-snapshot; such slots are skipped, never torn.
    pub fn snapshot(&self) -> RingSnapshot {
        let end = self.shared.head.load(Ordering::Acquire);
        let cap = self.shared.slots.len() as u64;
        let start = end.saturating_sub(cap);
        let mut events = Vec::with_capacity((end - start) as usize);
        for ticket in start..end {
            let slot = &self.shared.slots[(ticket % cap) as usize];
            let turn = ticket / cap;
            let want = 2 * turn + 2;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != want {
                continue; // not yet published, or already overwritten
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let tenant_stage = slot.tenant_stage.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            let at_ns = slot.at_ns.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while we read: skip, never tear
            }
            let Some(stage) = Stage::from_wire((tenant_stage & 0xFF) as u8, arg) else {
                continue;
            };
            events.push(TraceEvent {
                trace: TraceId(trace),
                tenant: self.shared.tenant_name((tenant_stage >> 8) as u32),
                stage,
                at: Duration::from_nanos(at_ns),
            });
        }
        RingSnapshot {
            events,
            written: self.written(),
            dropped: self.dropped(),
        }
    }

    /// The kept worst-case traces, keyed by tenant name (sorted), each
    /// tenant's slowest first.
    pub fn exemplars(&self) -> BTreeMap<String, Vec<TraceExemplar>> {
        self.shared
            .exemplars
            .lock()
            .expect("trace exemplar lock poisoned")
            .iter()
            .map(|(&tenant, kept)| (self.shared.tenant_name(tenant), kept.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(micros: u64) -> Duration {
        Duration::from_micros(micros)
    }

    #[test]
    fn stage_codes_round_trip() {
        let stages = [
            Stage::Admitted,
            Stage::Enqueued,
            Stage::Coalesced { requests: 17 },
            Stage::ShardDispatched,
            Stage::KernelDone,
            Stage::Responded,
            Stage::Rejected(RejectReason::Saturated),
            Stage::Rejected(RejectReason::Terminated),
            Stage::Rejected(RejectReason::Failed),
            Stage::Rejected(RejectReason::DeadlineShed),
            Stage::Degraded { keep_k: 3 },
        ];
        for stage in stages {
            assert_eq!(Stage::from_wire(stage.code(), stage.arg()), Some(stage));
        }
        assert_eq!(Stage::from_wire(8, 0), None);
        assert_eq!(Stage::from_wire(6, 9), None, "unknown reject reason");
    }

    #[test]
    fn degraded_stage_slots_before_the_terminal_in_exemplars() {
        let recorder = FlightRecorder::new(64);
        let card = recorder.begin_at("bulk", us(0));
        card.record_at(Stage::ShardDispatched, us(10));
        card.record_at(Stage::KernelDone, us(20));
        card.record_at(Stage::Degraded { keep_k: 2 }, us(21));
        card.record_at(Stage::Responded, us(25));
        let kept = &recorder.exemplars()["bulk"];
        let stages: Vec<Stage> = kept[0].stages.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            stages,
            vec![
                Stage::Admitted,
                Stage::ShardDispatched,
                Stage::KernelDone,
                Stage::Degraded { keep_k: 2 },
                Stage::Responded,
            ],
            "degraded sits between kernel-done and the terminal"
        );
        // Degraded is non-terminal: the trace finalized on Responded.
        assert_eq!(kept[0].total, us(25));
    }

    #[test]
    fn card_lifecycle_lands_in_ring_and_exemplars() {
        let recorder = FlightRecorder::new(64);
        let card = recorder.begin_at("alpha", us(10));
        card.record_at(Stage::Enqueued, us(12));
        card.record_at(Stage::Coalesced { requests: 3 }, us(40));
        card.record_at(Stage::ShardDispatched, us(41));
        card.record_at(Stage::KernelDone, us(90));
        card.record_at(Stage::Responded, us(95));
        let snap = recorder.snapshot();
        assert_eq!(snap.written, 6);
        assert_eq!(snap.dropped, 0);
        let stages: Vec<Stage> = snap.events.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::Admitted,
                Stage::Enqueued,
                Stage::Coalesced { requests: 3 },
                Stage::ShardDispatched,
                Stage::KernelDone,
                Stage::Responded,
            ]
        );
        for event in &snap.events {
            assert_eq!(event.trace, card.id());
            assert_eq!(event.tenant, "alpha");
        }
        // Timestamps are exactly what the mock clock injected, monotone.
        let ats: Vec<Duration> = snap.events.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![us(10), us(12), us(40), us(41), us(90), us(95)]);
        // The finished trace became an exemplar with the full stage list.
        let exemplars = recorder.exemplars();
        let kept = &exemplars["alpha"];
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].trace, card.id());
        assert_eq!(kept[0].total, us(85));
        assert_eq!(kept[0].stages.len(), 6);
    }

    #[test]
    fn exemplar_store_keeps_the_k_worst() {
        let recorder = FlightRecorder::new(256);
        for i in 0..10u64 {
            let card = recorder.begin_at("alpha", us(0));
            // Totals 0, 10, 20, … — the slowest are the last begun.
            card.record_at(Stage::Responded, us(10 * i));
        }
        let kept = &recorder.exemplars()["alpha"];
        assert_eq!(kept.len(), EXEMPLARS_PER_TENANT);
        let totals: Vec<u64> = kept.iter().map(|e| e.total.as_micros() as u64).collect();
        assert_eq!(totals, vec![90, 80, 70, 60], "slowest first");
    }

    #[test]
    fn overwrite_oldest_keeps_the_newest_capacity_events() {
        let recorder = FlightRecorder::new(4);
        let card = recorder.begin_at("alpha", us(0));
        let trace = card.trace_ref();
        for i in 1..=9u64 {
            recorder.event(trace, Stage::Enqueued, us(i));
        }
        // 10 events through a 4-slot ring: 6 dropped, newest 4 resident.
        assert_eq!(recorder.written(), 10);
        assert_eq!(recorder.dropped(), 6);
        let snap = recorder.snapshot();
        assert_eq!(snap.events.len(), 4);
        let ats: Vec<u64> = snap
            .events
            .iter()
            .map(|e| e.at.as_micros() as u64)
            .collect();
        assert_eq!(ats, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = FlightRecorder::new(16);
        recorder.set_enabled(false);
        let card = recorder.begin("alpha");
        assert_eq!(card.id(), TraceId(0));
        assert!(!card.trace_ref().is_traced());
        card.record(Stage::Responded);
        assert_eq!(recorder.allocate("alpha"), TraceRef::NONE);
        recorder.event(TraceRef::NONE, Stage::Enqueued, us(1));
        assert_eq!(recorder.written(), 0);
        assert!(recorder.snapshot().events.is_empty());
        assert!(recorder.exemplars().is_empty());
        // Re-enabling resumes recording with fresh ids.
        recorder.set_enabled(true);
        let card = recorder.begin("alpha");
        assert!(card.trace_ref().is_traced());
        assert_eq!(recorder.written(), 1);
    }

    #[test]
    fn rejected_trace_records_reason_and_finalizes_once() {
        let metrics = Arc::new(ServeMetrics::new(1));
        let recorder = FlightRecorder::with_metrics(64, Arc::clone(&metrics));
        let card = recorder.begin_at("alpha", us(5));
        card.record_at(Stage::Rejected(RejectReason::Terminated), us(25));
        // A late duplicate terminal must not double-finalize.
        card.record_at(Stage::Rejected(RejectReason::Terminated), us(30));
        let kept = &recorder.exemplars()["alpha"];
        assert_eq!(kept.len(), 1);
        assert_eq!(
            kept[0].stages.last().unwrap().0,
            Stage::Rejected(RejectReason::Terminated)
        );
        // No dispatch/kernel stamps → no stage histograms recorded (the
        // tenant never even appears in the metrics hub).
        let snap = metrics.snapshot();
        assert!(snap
            .tenants
            .get("alpha")
            .is_none_or(|t| t.queue_wait.count == 0 && t.execute.count == 0));
    }

    #[test]
    fn finished_trace_feeds_stage_histograms() {
        let metrics = Arc::new(ServeMetrics::new(1));
        let recorder = FlightRecorder::with_metrics(64, Arc::clone(&metrics));
        let card = recorder.begin_at("alpha", us(0));
        card.note_at(Stage::Enqueued, us(1));
        card.note_at(Stage::Coalesced { requests: 2 }, us(30));
        card.record_at(Stage::ShardDispatched, us(40));
        card.record_at(Stage::KernelDone, us(240));
        card.record_at(Stage::Responded, us(243));
        let snap = metrics.snapshot();
        let alpha = &snap.tenants["alpha"];
        assert_eq!(alpha.queue_wait.count, 1);
        assert_eq!(alpha.execute.count, 1);
        assert_eq!(alpha.respond.count, 1);
        // 40 µs wait → 50 µs bound; 200 µs execute → 200 µs bound
        // (exact ladder edge); 3 µs respond → 5 µs bound.
        assert_eq!(alpha.queue_wait.quantile(0.5), us(50));
        assert_eq!(alpha.execute.quantile(0.5), us(200));
        assert_eq!(alpha.respond.quantile(0.5), us(5));
        // `note_at` stamped the card without ring events: the ring holds
        // Admitted + the three recorded stages only.
        assert_eq!(recorder.written(), 4);
        // …but the exemplar still shows the complete lifecycle.
        let kept = &recorder.exemplars()["alpha"];
        assert_eq!(kept[0].stages.len(), 6);
        assert_eq!(kept[0].stages[2].0, Stage::Coalesced { requests: 2 });
    }
}
