//! The deployment registry: named, versioned deployments with lock-light
//! hot swap.
//!
//! A serving fleet hosts many tenants (chips, dies, product SKUs), each
//! with its own fitted [`Deployment`] that gets re-trained and re-published
//! over time. [`DeploymentRegistry`] owns those artifacts behind `Arc`s:
//! resolving a deployment clones an `Arc` under a briefly-held read lock,
//! so publishing a new version never stalls in-flight requests — they keep
//! serving from the version they resolved at submit time, and the old
//! artifact is freed when its last in-flight holder drops.
//!
//! # Hot-swap ordering guarantees
//!
//! * **Version numbers are per-name, monotonic and never reused** — not
//!   even after every version of a name is retired. A version number
//!   therefore identifies exactly one artifact for the registry's entire
//!   lifetime, so a request that pinned `(name, version)` at submit time
//!   can always be attributed to the bytes it actually served from.
//! * **Publishes are atomic and totally ordered per name** (they
//!   serialize on the registry's write lock): once
//!   [`DeploymentRegistry::publish`] returns version `v`, every
//!   subsequent [`DeploymentRegistry::latest`] resolves to `v` or newer —
//!   never an older version. Expensive work (decoding `EMDEPLOY` bytes,
//!   re-factoring the solver) happens *before* the lock is taken, so a
//!   publish stalls readers only for a map insert.
//! * **Resolution pins, retirement doesn't revoke**: resolving hands out
//!   an `Arc` snapshot. [`DeploymentRegistry::retire`] only removes the
//!   version from future resolutions; requests already holding the `Arc`
//!   finish on it, and the artifact is dropped when the last holder
//!   drops. There is no way to observe a half-swapped state.
//! * **No cross-name ordering** is promised: publishes to different
//!   names are independent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use eigenmaps_core::Deployment;

use crate::error::{Result, ServeError};

/// One tenant's published versions, newest last.
#[derive(Debug, Default)]
struct Tenant {
    /// Monotonic version counter; never reused, even after retirement.
    next_version: u32,
    /// Live `(version, artifact)` pairs, ascending by version.
    versions: Vec<(u32, Arc<Deployment>)>,
}

/// A named, versioned store of serving [`Deployment`]s.
///
/// See the [module docs](self) for the concurrency contract. All methods
/// take `&self`; share the registry between threads as an
/// `Arc<DeploymentRegistry>`.
#[derive(Debug, Default)]
pub struct DeploymentRegistry {
    tenants: RwLock<HashMap<String, Tenant>>,
    /// Bumped on every publish/retire — a cheap "has the catalog
    /// changed" probe for observers like the durability checkpointer.
    revision: AtomicU64,
}

impl DeploymentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeploymentRegistry::default()
    }

    /// Publishes `deployment` as the newest version of `name`, returning
    /// the version number (1 for a new name, monotonically increasing
    /// thereafter). Existing versions stay resolvable until retired.
    pub fn publish(&self, name: &str, deployment: Deployment) -> u32 {
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        let tenant = tenants.entry(name.to_string()).or_default();
        tenant.next_version += 1;
        let version = tenant.next_version;
        tenant.versions.push((version, Arc::new(deployment)));
        self.revision.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Publishes `deployment` under an explicit, previously assigned
    /// version number — how cold-start hydration reinstates a persisted
    /// catalog with the exact `(name, version)` pairs durable sessions
    /// are pinned to. The per-name counter is advanced past `version`,
    /// so later [`DeploymentRegistry::publish`] calls continue the
    /// never-reused sequence.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotMismatch`] if that `(name, version)` is
    /// already live — hydration treats it as a corrupt (duplicated)
    /// manifest entry and skips it.
    pub fn publish_at(&self, name: &str, version: u32, deployment: Deployment) -> Result<()> {
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        let tenant = tenants.entry(name.to_string()).or_default();
        if tenant.versions.iter().any(|(v, _)| *v == version) {
            return Err(ServeError::SnapshotMismatch {
                context: "deployment version already live",
            });
        }
        let at = tenant
            .versions
            .iter()
            .position(|(v, _)| *v > version)
            .unwrap_or(tenant.versions.len());
        tenant.versions.insert(at, (version, Arc::new(deployment)));
        tenant.next_version = tenant.next_version.max(version);
        self.revision.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Publishes a deployment from its serialized `EMDEPLOY` bytes (the
    /// design-time artifact shipped to the fleet), re-factoring the solver
    /// on load.
    ///
    /// # Errors
    ///
    /// Propagates [`Deployment::from_bytes`] failures for malformed bytes.
    pub fn publish_bytes(&self, name: &str, bytes: &[u8]) -> Result<u32> {
        let deployment = Deployment::from_bytes(bytes)?;
        Ok(self.publish(name, deployment))
    }

    /// Resolves the newest live version of `name`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDeployment`] if the name has no live versions.
    pub fn latest(&self, name: &str) -> Result<Arc<Deployment>> {
        self.resolve(name, None).map(|(_, d)| d)
    }

    /// Resolves the newest live version of `name` together with its
    /// version number (what a request pins at submit time).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDeployment`] if the name has no live versions.
    pub fn latest_versioned(&self, name: &str) -> Result<(u32, Arc<Deployment>)> {
        self.resolve(name, None)
    }

    /// Resolves a specific live version of `name`.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`] for an unknown name.
    /// * [`ServeError::UnknownVersion`] if that version is retired or was
    ///   never published.
    pub fn version(&self, name: &str, version: u32) -> Result<Arc<Deployment>> {
        self.resolve(name, Some(version)).map(|(_, d)| d)
    }

    fn resolve(&self, name: &str, version: Option<u32>) -> Result<(u32, Arc<Deployment>)> {
        let tenants = self.tenants.read().expect("registry lock poisoned");
        let tenant = tenants
            .get(name)
            .ok_or_else(|| ServeError::UnknownDeployment {
                name: name.to_string(),
            })?;
        match version {
            None => tenant
                .versions
                .last()
                .map(|(v, d)| (*v, Arc::clone(d)))
                .ok_or_else(|| ServeError::UnknownDeployment {
                    name: name.to_string(),
                }),
            Some(wanted) => tenant
                .versions
                .iter()
                .find(|(v, _)| *v == wanted)
                .map(|(v, d)| (*v, Arc::clone(d)))
                .ok_or_else(|| ServeError::UnknownVersion {
                    name: name.to_string(),
                    version: wanted,
                }),
        }
    }

    /// Retires one version of `name`. In-flight requests that already
    /// resolved it keep their `Arc`; the artifact is freed when the last
    /// holder drops. Retiring the final version makes the name
    /// unresolvable, but its version counter survives — a later
    /// re-publish continues the sequence, so a version number never
    /// refers to two different artifacts within a registry's lifetime.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`] for an unknown name.
    /// * [`ServeError::UnknownVersion`] for a version not currently live.
    pub fn retire(&self, name: &str, version: u32) -> Result<()> {
        let mut tenants = self.tenants.write().expect("registry lock poisoned");
        let tenant = tenants
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownDeployment {
                name: name.to_string(),
            })?;
        let idx = tenant
            .versions
            .iter()
            .position(|(v, _)| *v == version)
            .ok_or_else(|| ServeError::UnknownVersion {
                name: name.to_string(),
                version,
            })?;
        tenant.versions.remove(idx);
        // The (now possibly version-less) tenant is kept: it holds the
        // monotonic version counter.
        self.revision.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// A counter bumped by every publish and retire. Equal revisions
    /// guarantee an identical catalog, so a periodic observer (the
    /// durability checkpointer, a config watcher) can skip work without
    /// enumerating.
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Relaxed)
    }

    /// Every live `(name, version, artifact)` triple, sorted by name
    /// then version — the full-fidelity enumeration a durability
    /// checkpoint serializes. Unlike [`DeploymentRegistry::catalog`]
    /// this hands out the artifact `Arc`s themselves.
    pub fn artifacts(&self) -> Vec<(String, u32, Arc<Deployment>)> {
        let tenants = self.tenants.read().expect("registry lock poisoned");
        let mut artifacts: Vec<(String, u32, Arc<Deployment>)> = tenants
            .iter()
            .flat_map(|(name, t)| {
                t.versions
                    .iter()
                    .map(|(v, d)| (name.clone(), *v, Arc::clone(d)))
            })
            .collect();
        artifacts.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        artifacts
    }

    /// Every live `(name, versions)` pair, sorted by name with versions
    /// ascending — the fleet-state view a serving dashboard (or the
    /// per-tenant scheduler's operator) enumerates. Names with no live
    /// versions are omitted, like [`DeploymentRegistry::names`].
    pub fn catalog(&self) -> Vec<(String, Vec<u32>)> {
        let tenants = self.tenants.read().expect("registry lock poisoned");
        let mut catalog: Vec<(String, Vec<u32>)> = tenants
            .iter()
            .filter(|(_, t)| !t.versions.is_empty())
            .map(|(name, t)| (name.clone(), t.versions.iter().map(|(v, _)| *v).collect()))
            .collect();
        catalog.sort();
        catalog
    }

    /// All names with at least one live version, sorted.
    pub fn names(&self) -> Vec<String> {
        let tenants = self.tenants.read().expect("registry lock poisoned");
        let mut names: Vec<String> = tenants
            .iter()
            .filter(|(_, t)| !t.versions.is_empty())
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Live version numbers of `name`, ascending.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDeployment`] for a name with no live versions.
    pub fn versions(&self, name: &str) -> Result<Vec<u32>> {
        let tenants = self.tenants.read().expect("registry lock poisoned");
        tenants
            .get(name)
            .filter(|t| !t.versions.is_empty())
            .map(|t| t.versions.iter().map(|(v, _)| *v).collect())
            .ok_or_else(|| ServeError::UnknownDeployment {
                name: name.to_string(),
            })
    }

    /// Number of names with at least one live version.
    pub fn len(&self) -> usize {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .values()
            .filter(|t| !t.versions.is_empty())
            .count()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_deployment(k: usize, m: usize) -> Deployment {
        crate::testutil::two_mode_deployment(6, 6, k, m).0
    }

    #[test]
    fn publish_resolve_retire_lifecycle() {
        let reg = DeploymentRegistry::new();
        assert!(reg.is_empty());
        assert!(matches!(
            reg.latest("chip-a"),
            Err(ServeError::UnknownDeployment { .. })
        ));

        let v1 = reg.publish("chip-a", small_deployment(2, 4));
        let v2 = reg.publish("chip-a", small_deployment(2, 5));
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.versions("chip-a").unwrap(), vec![1, 2]);
        assert_eq!(reg.latest("chip-a").unwrap().m(), 5);
        assert_eq!(reg.version("chip-a", 1).unwrap().m(), 4);
        assert_eq!(reg.latest_versioned("chip-a").unwrap().0, 2);

        reg.retire("chip-a", 2).unwrap();
        assert_eq!(reg.latest("chip-a").unwrap().m(), 4);
        assert!(matches!(
            reg.version("chip-a", 2),
            Err(ServeError::UnknownVersion { version: 2, .. })
        ));
        reg.retire("chip-a", 1).unwrap();
        assert!(reg.is_empty());
        assert!(reg.names().is_empty());
        assert!(matches!(
            reg.latest("chip-a"),
            Err(ServeError::UnknownDeployment { .. })
        ));
        assert!(matches!(
            reg.versions("chip-a"),
            Err(ServeError::UnknownDeployment { .. })
        ));
        // Version numbers are never reused, even across full retirement:
        // a re-publish continues the sequence instead of restarting at 1,
        // so a pinned `version()` always identifies one artifact.
        assert_eq!(reg.publish("chip-a", small_deployment(2, 4)), 3);
        assert_eq!(reg.versions("chip-a").unwrap(), vec![3]);
    }

    #[test]
    fn hot_swap_does_not_invalidate_in_flight_arcs() {
        let reg = DeploymentRegistry::new();
        reg.publish("chip", small_deployment(2, 4));
        let pinned = reg.latest("chip").unwrap();
        let readings = vec![50.0; pinned.m()];

        reg.publish("chip", small_deployment(3, 6));
        reg.retire("chip", 1).unwrap();

        // The pinned artifact still serves, even though it was retired.
        assert!(pinned.reconstruct(&readings).is_ok());
        // New resolutions see the new version.
        assert_eq!(reg.latest("chip").unwrap().m(), 6);
    }

    #[test]
    fn publish_bytes_roundtrips_the_artifact() {
        let reg = DeploymentRegistry::new();
        let d = small_deployment(2, 4);
        let bytes = d.to_bytes();
        reg.publish_bytes("shipped", &bytes).unwrap();
        let served = reg.latest("shipped").unwrap();
        assert_eq!(served.m(), d.m());
        assert_eq!(served.sensors(), d.sensors());
        assert!(matches!(
            reg.publish_bytes("bad", b"NOTDEPLOY"),
            Err(ServeError::Core(_))
        ));
        assert!(matches!(
            reg.latest("bad"),
            Err(ServeError::UnknownDeployment { .. })
        ));
    }

    #[test]
    fn publish_at_reinstates_versions_and_advances_the_counter() {
        let reg = DeploymentRegistry::new();
        let base = reg.revision();
        reg.publish_at("chip", 3, small_deployment(2, 4)).unwrap();
        reg.publish_at("chip", 1, small_deployment(2, 5)).unwrap();
        assert_eq!(reg.versions("chip").unwrap(), vec![1, 3]);
        assert_eq!(reg.latest_versioned("chip").unwrap().0, 3);
        // A duplicate (name, version) is refused, not clobbered.
        assert!(matches!(
            reg.publish_at("chip", 3, small_deployment(2, 6)),
            Err(ServeError::SnapshotMismatch { .. })
        ));
        // The monotonic counter continues past the reinstated versions.
        assert_eq!(reg.publish("chip", small_deployment(2, 4)), 4);
        assert_eq!(reg.revision(), base + 3);
        let artifacts = reg.artifacts();
        assert_eq!(
            artifacts
                .iter()
                .map(|(n, v, _)| (n.as_str(), *v))
                .collect::<Vec<_>>(),
            vec![("chip", 1), ("chip", 3), ("chip", 4)]
        );
    }

    #[test]
    fn names_are_sorted() {
        let reg = DeploymentRegistry::new();
        reg.publish("zeta", small_deployment(2, 4));
        reg.publish("alpha", small_deployment(2, 4));
        assert_eq!(reg.names(), vec!["alpha".to_string(), "zeta".to_string()]);
        assert_eq!(reg.len(), 2);
        reg.publish("alpha", small_deployment(2, 5));
        assert_eq!(
            reg.catalog(),
            vec![
                ("alpha".to_string(), vec![1, 2]),
                ("zeta".to_string(), vec![1])
            ]
        );
    }
}
