//! The sharded execution engine: a fixed pool of worker threads that
//! splits large reconstruction batches into contiguous frame shards.
//!
//! Workers are plain `std::thread`s fed over an mpsc channel (a shared
//! injector queue — idle workers pull the next shard, so load balances
//! itself even when shards run at different speeds). Each worker owns a
//! [`BatchScratch`] reused across every shard it ever processes, so
//! steady-state serving does no per-batch coefficient-buffer allocation.
//! The same pool also executes streaming-session tracker steps
//! ([`ShardedExecutor::execute_step`]): a step is one more unit of work an
//! idle worker pulls, so sessions and batches share the exact same
//! compute capacity instead of stealing caller threads.
//!
//! Inside each shard, the worker runs the deployment's dispatched SIMD
//! synthesis kernel ([`eigenmaps_core::kernel`]) on its own scratch, over
//! the deployment's packed, L2-tiled basis panels
//! ([`eigenmaps_core::PackedBasis`] — built once at design/load time and
//! shared by every worker's `Reconstructor` clone through an `Arc`, so a
//! multi-megabyte panel buffer exists once per artifact, not once per
//! worker). The levels of parallelism compose — threads across frame
//! shards, SIMD lanes across each panel's rows, basis tiles serving from
//! L2 across each shard's blocks — and a forced backend
//! ([`Deployment::set_kernel`]) set before publishing is what every
//! worker executes.
//!
//! Shard boundaries come from [`eigenmaps_core::shard_spans`]; because the
//! batch path is bitwise-identical to per-frame reconstruction *under the
//! deployment's kernel backend* (the kernel's position-independence
//! contract), stitching the shard outputs back together in span order
//! reproduces the single-threaded [`Deployment::reconstruct_batch`]
//! output **bitwise** — parallelism is free of numerical drift by
//! construction, for every backend, and the integration tests assert it.

use std::ops::Range;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use eigenmaps_core::{
    shard_spans, BatchScratch, CoreError, Deployment, ThermalMap, TrackingReconstructor,
};

use crate::error::{Result, ServeError};
use crate::metrics::ServeMetrics;

/// One shard of one batch, dispatched to whichever worker is idle.
struct ShardTask {
    deployment: Arc<Deployment>,
    frames: Arc<Vec<Vec<f64>>>,
    span: Range<usize>,
    slot: usize,
    reply: Sender<(usize, std::result::Result<Vec<ThermalMap>, CoreError>)>,
}

/// What the injector queue carries: a batch shard, or an opaque job (a
/// streaming-session step dispatched by the batcher) that receives the
/// executing worker's index.
enum Task {
    Shard(ShardTask),
    Job(Box<dyn FnOnce(usize) + Send>),
}

/// A fixed pool of reconstruction workers executing batches as frame
/// shards. See the [module docs](self) for the design.
///
/// The executor is `Send + Sync`; submit from any thread through `&self`.
/// Dropping it shuts the pool down (workers finish their current shard
/// and exit).
#[derive(Debug)]
pub struct ShardedExecutor {
    injector: Sender<Task>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<ServeMetrics>,
    shards: usize,
}

impl ShardedExecutor {
    /// A pool of `shards` workers (`0` is treated as 1) with its own
    /// metrics hub.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self::with_metrics(shards, Arc::new(ServeMetrics::new(shards)))
    }

    /// A pool of `shards` workers recording into a shared metrics hub
    /// (size its shard counters with `ServeMetrics::new(shards)`).
    pub fn with_metrics(shards: usize, metrics: Arc<ServeMetrics>) -> Self {
        let shards = shards.max(1);
        let (injector, queue) = mpsc::channel::<Task>();
        let queue = Arc::new(Mutex::new(queue));
        let workers = (0..shards)
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("eigenmaps-shard-{worker}"))
                    .spawn(move || worker_loop(worker, &queue, &metrics))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardedExecutor {
            injector,
            workers,
            metrics,
            shards,
        }
    }

    /// Number of worker threads in the pool.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The metrics hub this executor records shard utilization into.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Reconstructs `frames` against `deployment` across the worker pool,
    /// returning maps in frame order, **bitwise identical** to
    /// [`Deployment::reconstruct_batch`] run sequentially.
    ///
    /// The frames are shared with the workers via `Arc` (no copying); the
    /// batch is split into at most [`ShardedExecutor::shards`] contiguous
    /// spans and reassembled in span order.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] if any frame has the wrong reading count
    ///   (checked up front) or reconstruction fails; the lowest-numbered
    ///   failing shard's error is reported.
    /// * [`ServeError::Terminated`] if the worker pool has died.
    pub fn execute(
        &self,
        deployment: &Arc<Deployment>,
        frames: &Arc<Vec<Vec<f64>>>,
    ) -> Result<Vec<ThermalMap>> {
        let m = deployment.m();
        for readings in frames.iter() {
            if readings.len() != m {
                return Err(ServeError::Core(CoreError::ShapeMismatch {
                    context: "sharded execute readings",
                    expected: m,
                    found: readings.len(),
                }));
            }
        }
        if frames.is_empty() {
            return Ok(Vec::new());
        }

        let spans = shard_spans(frames.len(), self.shards);
        let (reply, results) = mpsc::channel();
        for (slot, span) in spans.iter().cloned().enumerate() {
            let task = Task::Shard(ShardTask {
                deployment: Arc::clone(deployment),
                frames: Arc::clone(frames),
                span,
                slot,
                reply: reply.clone(),
            });
            self.injector
                .send(task)
                .map_err(|_| ServeError::Terminated {
                    context: "shard queue closed",
                })?;
        }
        drop(reply);

        let mut slots: Vec<Option<std::result::Result<Vec<ThermalMap>, CoreError>>> =
            (0..spans.len()).map(|_| None).collect();
        for _ in 0..spans.len() {
            let (slot, outcome) = results.recv().map_err(|_| ServeError::Terminated {
                context: "shard worker died mid-batch",
            })?;
            slots[slot] = Some(outcome);
        }

        let mut maps = Vec::with_capacity(frames.len());
        for outcome in slots {
            let shard_maps = outcome
                .expect("every slot replied")
                .map_err(ServeError::Core)?;
            maps.extend(shard_maps);
        }
        Ok(maps)
    }

    /// [`ShardedExecutor::execute`] for caller-owned frames (wraps them in
    /// an `Arc` for the workers).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedExecutor::execute`].
    pub fn execute_owned(
        &self,
        deployment: &Arc<Deployment>,
        frames: Vec<Vec<f64>>,
    ) -> Result<Vec<ThermalMap>> {
        self.execute(deployment, &Arc::new(frames))
    }

    /// Hands an opaque job to whichever worker is idle — the
    /// fire-and-forget lane the batcher uses to dispatch session steps
    /// without blocking its scheduling loop (so steps of *different*
    /// sessions run in parallel across the pool; per-session ordering is
    /// the dispatcher's job). The job receives the executing worker's
    /// index for shard-utilization accounting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Terminated`] if the worker pool has died — the job
    /// is dropped (not run), so any completion side effects it owns (e.g.
    /// a responder) fire through its `Drop`.
    pub(crate) fn spawn(&self, job: impl FnOnce(usize) + Send + 'static) -> Result<()> {
        self.injector
            .send(Task::Job(Box::new(job)))
            .map_err(|_| ServeError::Terminated {
                context: "shard queue closed",
            })
    }

    /// Executes one streaming-session tracker step on the worker pool and
    /// blocks for the result: whichever worker is idle locks the shared
    /// tracker and runs [`TrackingReconstructor::step`] (the deployment's
    /// dispatched SIMD kernel, same arithmetic as the caller-thread path —
    /// so the result is bitwise-identical to stepping the tracker
    /// inline). The batcher's live path uses the nonblocking
    /// crate-internal `spawn` job lane instead; this blocking form serves the
    /// shutdown drain and direct callers.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] for wrong-length readings or solver failure.
    /// * [`ServeError::Terminated`] if the worker pool has died.
    pub fn execute_step(
        &self,
        tracker: &Arc<Mutex<TrackingReconstructor>>,
        readings: Vec<f64>,
    ) -> Result<ThermalMap> {
        let (reply, result) = mpsc::channel();
        let tracker = Arc::clone(tracker);
        let metrics = Arc::clone(&self.metrics);
        self.spawn(move |worker| {
            let outcome = step_tracker(&tracker, &readings);
            metrics.record_shard(worker, 1);
            let _ = reply.send(outcome);
        })?;
        result
            .recv()
            .map_err(|_| ServeError::Terminated {
                context: "shard worker died mid-step",
            })?
            .map_err(ServeError::Core)
    }
}

/// Locks a session's shared tracker and runs one step — the single place
/// the lock-and-step (and poisoned-lock fallback) policy lives, used by
/// both the blocking [`ShardedExecutor::execute_step`] and the batcher's
/// fire-and-forget dispatch.
pub(crate) fn step_tracker(
    tracker: &Mutex<TrackingReconstructor>,
    readings: &[f64],
) -> std::result::Result<ThermalMap, CoreError> {
    match tracker.lock() {
        Ok(mut tracker) => tracker.step(readings),
        // A panicked session poisoned its tracker; fail the step, not
        // the worker.
        Err(_) => Err(CoreError::InvalidArgument {
            context: "session tracker poisoned",
        }),
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        // Replace the injector with a dead channel so workers' recv fails
        // once the queue drains, then reap them.
        let (dead, _) = mpsc::channel();
        drop(std::mem::replace(&mut self.injector, dead));
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(worker: usize, queue: &Mutex<Receiver<Task>>, metrics: &ServeMetrics) {
    // One scratch per worker, reused across every shard this thread ever
    // runs — the steady-state serving path allocates only output maps.
    let mut scratch = BatchScratch::new();
    loop {
        // The guard spans the blocking recv() — idle workers take turns
        // waiting on the mutex — but it drops before the reconstruction
        // below, so work never serializes. Don't add work inside this
        // match scrutinee: it would run under the queue lock.
        let task = match queue.lock() {
            Ok(rx) => match rx.recv() {
                Ok(task) => task,
                Err(_) => return, // executor dropped: drain finished
            },
            Err(_) => return, // poisoned: another worker panicked
        };
        // The submitter may have given up (executor error path); a closed
        // reply channel is not the worker's problem.
        match task {
            Task::Shard(task) => {
                let outcome = task
                    .deployment
                    .reconstruct_batch_with(&task.frames[task.span.clone()], &mut scratch);
                metrics.record_shard(worker, task.span.len());
                let _ = task.reply.send((task.slot, outcome));
            }
            Task::Job(job) => job(worker),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment_and_frames(frames: usize) -> (Arc<Deployment>, Arc<Vec<Vec<f64>>>) {
        let (d, ens) = crate::testutil::two_mode_deployment(8, 8, 2, 5);
        let frames: Vec<Vec<f64>> = (0..frames)
            .map(|t| d.sensors().sample(&ens.map(t % ens.len())))
            .collect();
        (Arc::new(d), Arc::new(frames))
    }

    #[test]
    fn empty_batch_is_empty() {
        let (d, _) = deployment_and_frames(0);
        let ex = ShardedExecutor::new(3);
        assert!(ex.execute(&d, &Arc::new(Vec::new())).unwrap().is_empty());
    }

    #[test]
    fn bad_frame_length_rejected_up_front() {
        let (d, _) = deployment_and_frames(0);
        let ex = ShardedExecutor::new(2);
        let frames = Arc::new(vec![vec![1.0, 2.0]]);
        assert!(matches!(
            ex.execute(&d, &frames),
            Err(ServeError::Core(CoreError::ShapeMismatch { .. }))
        ));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let ex = ShardedExecutor::new(0);
        assert_eq!(ex.shards(), 1);
        let (d, frames) = deployment_and_frames(7);
        assert_eq!(ex.execute(&d, &frames).unwrap().len(), 7);
    }

    #[test]
    fn utilization_spreads_across_workers() {
        let ex = ShardedExecutor::new(4);
        let (d, frames) = deployment_and_frames(64);
        for _ in 0..8 {
            ex.execute(&d, &frames).unwrap();
        }
        let snap = ex.metrics().snapshot();
        assert_eq!(snap.shard_frames.iter().sum::<u64>(), 8 * 64);
        // The shared injector queue lets any worker pull any shard, so no
        // per-worker guarantee exists — but all frames are accounted for
        // and the batch counter ticks once per executed shard.
        assert_eq!(snap.shard_batches.iter().sum::<u64>(), 8 * 4);
    }

    #[test]
    fn step_on_pool_is_bitwise_identical_to_inline_stepping() {
        let (d, frames) = deployment_and_frames(6);
        let ex = ShardedExecutor::new(2);
        let pooled = Arc::new(Mutex::new(d.tracker(0.4).unwrap()));
        let mut inline = d.tracker(0.4).unwrap();
        for (t, readings) in frames.iter().enumerate() {
            let a = ex.execute_step(&pooled, readings.clone()).unwrap();
            let b = inline.step(readings).unwrap();
            assert_eq!(a.as_slice(), b.as_slice(), "step {t}");
        }
        // Steps tick the shard counters like any other unit of work.
        let snap = ex.metrics().snapshot();
        assert_eq!(snap.shard_frames.iter().sum::<u64>(), 6);
        // Malformed readings fail the step, not the pool.
        assert!(matches!(
            ex.execute_step(&pooled, vec![0.0; 2]),
            Err(ServeError::Core(CoreError::ShapeMismatch { .. }))
        ));
        assert!(ex.execute_step(&pooled, frames[0].clone()).is_ok());
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let ex = Arc::new(ShardedExecutor::new(3));
        let (d, frames) = deployment_and_frames(41);
        let sequential = d.reconstruct_batch(&frames).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (ex, d, frames) = (Arc::clone(&ex), Arc::clone(&d), Arc::clone(&frames));
                std::thread::spawn(move || ex.execute(&d, &frames).unwrap())
            })
            .collect();
        for h in handles {
            let maps = h.join().unwrap();
            for (a, b) in sequential.iter().zip(maps.iter()) {
                assert_eq!(a.as_slice(), b.as_slice());
            }
        }
    }
}
