//! Streaming tracker sessions: stateful per-tenant telemetry feeds,
//! scheduled through the same fair front door as batch traffic, durable
//! across monitor restarts.
//!
//! Batch serving treats frames as independent; a DTM loop streaming one
//! reading vector per control interval wants temporal filtering instead.
//! A [`TrackerSession`] wraps the deployment's
//! [`eigenmaps_core::TrackingReconstructor`] with fleet bookkeeping: the
//! session pins the deployment version it was opened against (hot swaps
//! don't disturb a live feed), counts the frames it has served, and
//! reports steps into the shared serving metrics.
//!
//! # A session step is a scheduled unit of work
//!
//! A session opened through [`Server::open_session`] owns a **stream
//! lane** in the server's scheduler ([`StreamId`]):
//! [`TrackerSession::submit_step`] passes admission control (the tenant's
//! [`max_pending_per_tenant`](crate::BatchPolicy::max_pending_per_tenant)
//! bound, like `try_submit`), enqueues the readings, and returns a
//! pollable [`StepTicket`]; the batcher grants the step in its fairness
//! rotation — interleaved with batch flushes, neither starving the other —
//! and the tracker arithmetic executes on the sharded worker pool with
//! the deployment's dispatched SIMD kernel, never on the caller's thread.
//! The result is bitwise-identical to stepping the tracker inline: the
//! scheduling layer moves *where and when* the arithmetic runs, not what
//! it computes. A session opened standalone ([`TrackerSession::open`],
//! no server) steps inline on the calling thread, which serves as the
//! reference path for that bitwise contract.
//!
//! # Durability: `EMSESS1` snapshots
//!
//! [`TrackerSession::snapshot`] serializes the stream's mutable state
//! (gain, frame count, temporal-filter coefficients) plus the identity of
//! the pinned artifact into a checksummed
//! [`SessionSnapshot`] record;
//! [`TrackerSession::resume`] / [`Server::resume_session`] re-resolve the
//! exact pinned `(name, version)` from the registry — refusing a shape or
//! identity mismatch with [`ServeError::SnapshotMismatch`] — and continue
//! the stream bitwise-identically to one that was never interrupted.
//!
//! [`Server::open_session`]: crate::Server::open_session
//! [`Server::resume_session`]: crate::Server::resume_session
//! [`ServeError::SnapshotMismatch`]: crate::ServeError::SnapshotMismatch

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use eigenmaps_core::codec::{fnv1a64, SessionSnapshot};
use eigenmaps_core::{Deployment, ThermalMap, TrackingReconstructor};

use crate::batch::{BatchPolicy, BatcherMsg, QueuedStep, Responder, ResponseSlot};
use crate::error::{Result, ServeError};
use crate::metrics::ServeMetrics;
use crate::registry::DeploymentRegistry;
use crate::scheduler::StreamId;
use crate::trace::{FlightRecorder, RejectReason, Stage};

/// A pending session-step response handle returned by
/// [`TrackerSession::submit_step`] — the single-map analogue of
/// [`Ticket`](crate::Ticket), consumable exactly once in any of the same
/// three styles (block / poll / readiness callback).
///
/// Dropping a step ticket abandons the response but never the step: the
/// tracker state still advances in submission order, so a fire-and-forget
/// monitor loop may submit steps and only poll the occasional one.
pub struct StepTicket {
    version: u32,
    slot: Arc<ResponseSlot<ThermalMap>>,
}

impl StepTicket {
    /// The deployment version the session is pinned to.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the step was served degraded. Always `false` today:
    /// session steps track against the session's pinned full-fidelity
    /// deployment and never substitute a truncated one (a stream's
    /// temporal filter must stay bitwise-continuous across brownout).
    /// Mirrors [`Ticket::is_degraded`] so transports can report the flag
    /// uniformly for both workload classes.
    ///
    /// [`Ticket::is_degraded`]: crate::Ticket::is_degraded
    pub fn is_degraded(&self) -> bool {
        false
    }

    /// Whether the map is ready — [`StepTicket::try_wait`] would return it.
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }

    /// Nonblocking poll: the tracked map if it is ready (returned exactly
    /// once), `None` while it is still pending or after it was already
    /// consumed.
    pub fn try_wait(&mut self) -> Option<Result<ThermalMap>> {
        self.slot.try_take()
    }

    /// Registers `callback` to run as soon as the map is ready — invoked
    /// on whichever thread completes the step: a shard worker for
    /// scheduled sessions (callbacks of different sessions can therefore
    /// fire concurrently), the calling thread for standalone sessions, or
    /// the batcher during shutdown drain. Runs immediately if the map is
    /// already ready. A second registration replaces the first. Must not
    /// block.
    pub fn on_ready(&self, callback: impl FnOnce() + Send + 'static) {
        self.slot.on_ready(callback);
    }

    /// Blocks until the step has executed on the worker pool.
    ///
    /// # Errors
    ///
    /// * The step's own failure ([`ServeError::Core`]), or
    /// * [`ServeError::Terminated`] if the server shut down before
    ///   responding, or if the response was already consumed by
    ///   [`StepTicket::try_wait`].
    pub fn wait(self) -> Result<ThermalMap> {
        self.slot.wait()
    }
}

impl std::fmt::Debug for StepTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepTicket")
            .field("version", &self.version)
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// The stream-lane wiring a [`Server`](crate::Server)-opened session uses
/// to reach the batcher: its lane id, a clone of the batcher queue and a
/// live view of the server's per-tenant policy overrides, so a
/// [`set_tenant_policy`](crate::Server::set_tenant_policy) call re-tiers
/// the admission bound of already-open sessions too.
#[derive(Debug)]
pub(crate) struct SessionDoor {
    pub(crate) stream: StreamId,
    pub(crate) queue: Sender<BatcherMsg>,
    pub(crate) overrides: Arc<RwLock<HashMap<String, BatchPolicy>>>,
    pub(crate) fallback: BatchPolicy,
    pub(crate) recorder: FlightRecorder,
}

impl SessionDoor {
    /// The admission bound currently in force for tenant `name`.
    fn max_pending(&self, name: &str) -> u64 {
        self.overrides
            .read()
            .expect("policy overrides lock poisoned")
            .get(name)
            .unwrap_or(&self.fallback)
            .max_pending_per_tenant as u64
    }
}

/// A stateful streaming session over one pinned deployment version.
///
/// Open one per sensor-telemetry feed via
/// [`Server::open_session`](crate::Server::open_session) (scheduled: steps
/// run through the fair scheduler on the worker pool) or directly with
/// [`TrackerSession::open`] (standalone: steps run inline); feed each
/// interval's readings to [`TrackerSession::step`] or — for the
/// nonblocking, event-loop shape — [`TrackerSession::submit_step`].
#[derive(Debug)]
pub struct TrackerSession {
    deployment: Arc<Deployment>,
    tracker: Arc<Mutex<TrackingReconstructor>>,
    name: String,
    version: u32,
    gain: f64,
    /// [`fnv1a64`] of the pinned artifact's `EMDEPLOY` bytes, computed
    /// once at open — stamped into every snapshot so resume can prove it
    /// reattached to the *same* artifact, not merely a same-shape one.
    artifact_digest: u64,
    frames: Arc<AtomicU64>,
    /// Steps admitted but not yet completed (admission-control gauge,
    /// drained by each step's responder).
    pending: Arc<AtomicU64>,
    /// Durable id assigned by the server's snapshot store (0 = not
    /// enrolled for background checkpointing). Stable across restarts —
    /// the handle a client re-attaches by after a crash.
    durable: u64,
    metrics: Option<Arc<ServeMetrics>>,
    door: Option<SessionDoor>,
}

impl TrackerSession {
    /// Opens a standalone session against the current version of `name`
    /// in `registry`, with temporal gain `g ∈ (0, 1]` (`g = 1` is the
    /// memoryless paper behavior). Steps execute inline on the calling
    /// thread; sessions opened through a [`Server`](crate::Server) are
    /// scheduled instead.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`]
    ///   for an unresolved name.
    /// * [`ServeError::Core`] for a gain outside
    ///   `(0, 1]`.
    pub fn open(registry: &DeploymentRegistry, name: &str, gain: f64) -> Result<Self> {
        Self::build(registry, name, None, gain, None, None)
    }

    /// [`TrackerSession::open`] pinned to an explicit registry `version`
    /// instead of the latest.
    ///
    /// # Errors
    ///
    /// Adds [`ServeError::UnknownVersion`]
    /// for a retired or never-published version.
    pub fn open_at(
        registry: &DeploymentRegistry,
        name: &str,
        version: u32,
        gain: f64,
    ) -> Result<Self> {
        Self::build(registry, name, Some(version), gain, None, None)
    }

    /// Warm-starts a standalone session from `EMSESS1` snapshot bytes
    /// previously produced by [`TrackerSession::snapshot`]: the exact
    /// pinned `(name, version)` is re-resolved from `registry`, the shape
    /// is verified, and the temporal-filter state and frame count are
    /// imported — the resumed stream continues bitwise-identically to an
    /// uninterrupted one.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] for malformed
    ///   bytes (bad magic/version/checksum, truncation, trailing bytes).
    /// * [`ServeError::UnknownDeployment`]
    ///   / [`ServeError::UnknownVersion`]
    ///   if the pinned artifact is no longer published under that name.
    /// * [`ServeError::SnapshotMismatch`]
    ///   if the resolved deployment's `K`/`M` shape disagrees with the
    ///   snapshot (the registry re-used the version number for a
    ///   different artifact — e.g. a fresh process re-published in a
    ///   different order).
    pub fn resume(registry: &DeploymentRegistry, bytes: &[u8]) -> Result<Self> {
        let record = Self::decode(bytes)?;
        Self::build_resumed(registry, record, None, None)
    }

    /// Internal constructor for [`Server`](crate::Server)-opened sessions.
    pub(crate) fn open_scheduled(
        registry: &DeploymentRegistry,
        name: &str,
        version: Option<u32>,
        gain: f64,
        metrics: Arc<ServeMetrics>,
        door: SessionDoor,
    ) -> Result<Self> {
        Self::build(registry, name, version, gain, Some(metrics), Some(door))
    }

    /// Internal resume for [`Server::resume_session`](crate::Server::resume_session).
    pub(crate) fn resume_scheduled(
        registry: &DeploymentRegistry,
        bytes: &[u8],
        metrics: Arc<ServeMetrics>,
        door: SessionDoor,
    ) -> Result<Self> {
        let record = Self::decode(bytes)?;
        Self::build_resumed(registry, record, Some(metrics), Some(door))
    }

    fn decode(bytes: &[u8]) -> Result<SessionSnapshot> {
        SessionSnapshot::from_bytes(bytes)
            .map_err(|e| ServeError::Core(eigenmaps_core::CoreError::from(e)))
    }

    fn build(
        registry: &DeploymentRegistry,
        name: &str,
        version: Option<u32>,
        gain: f64,
        metrics: Option<Arc<ServeMetrics>>,
        door: Option<SessionDoor>,
    ) -> Result<Self> {
        let (version, deployment) = match version {
            None => registry.latest_versioned(name)?,
            Some(v) => (v, registry.version(name, v)?),
        };
        let tracker = deployment.tracker(gain)?;
        let artifact_digest = fnv1a64(&deployment.to_bytes());
        if let Some(metrics) = &metrics {
            metrics.record_session_opened();
        }
        Ok(TrackerSession {
            deployment,
            tracker: Arc::new(Mutex::new(tracker)),
            name: name.to_string(),
            version,
            gain,
            artifact_digest,
            frames: Arc::new(AtomicU64::new(0)),
            pending: Arc::new(AtomicU64::new(0)),
            durable: 0,
            metrics,
            door,
        })
    }

    fn build_resumed(
        registry: &DeploymentRegistry,
        record: SessionSnapshot,
        metrics: Option<Arc<ServeMetrics>>,
        door: Option<SessionDoor>,
    ) -> Result<Self> {
        let session = Self::build(
            registry,
            &record.deployment,
            Some(record.version),
            record.gain,
            metrics,
            door,
        )?;
        // The version number proves identity only within one registry
        // lifetime; across processes the same number can name a different
        // artifact, so the snapshot's shape fields (cheap, specific
        // errors) and the artifact digest (catches even a same-shape
        // retrain, whose coefficient state would decode to plausible but
        // wrong maps) are the guards.
        if session.deployment.k() != record.k {
            return Err(ServeError::SnapshotMismatch {
                context: "deployment basis dimension K changed",
            });
        }
        if session.deployment.m() != record.m {
            return Err(ServeError::SnapshotMismatch {
                context: "deployment sensor count M changed",
            });
        }
        if session.artifact_digest != record.artifact_digest {
            return Err(ServeError::SnapshotMismatch {
                context: "deployment artifact bytes changed",
            });
        }
        {
            let mut tracker = session.tracker.lock().expect("fresh tracker lock");
            tracker.import_state(record.state)?;
            // Mirror the frame count into the tracker so a checkpoint
            // capturing (state, frames) under its lock sees a consistent
            // pair from the first post-resume step on.
            tracker.set_frames(record.frames);
        }
        session.frames.store(record.frames, Ordering::Release);
        Ok(session)
    }

    /// Serializes the session's durable state to `EMSESS1` bytes — the
    /// warm-restart record [`TrackerSession::resume`] /
    /// [`Server::resume_session`](crate::Server::resume_session) consume.
    /// Snapshot with no steps in flight (await outstanding
    /// [`StepTicket`]s first) so the captured state is a well-defined
    /// point in the stream.
    pub fn snapshot(&self) -> Vec<u8> {
        // Capture (state, frames) under one tracker lock so the pair is
        // consistent even if another thread steps concurrently.
        let (state, frames) = {
            let tracker = self.tracker.lock().expect("session tracker lock poisoned");
            (tracker.export_state(), tracker.frames())
        };
        SessionSnapshot {
            deployment: self.name.clone(),
            version: self.version,
            gain: self.gain,
            frames,
            k: self.deployment.k(),
            m: self.deployment.m(),
            artifact_digest: self.artifact_digest,
            state,
        }
        .to_bytes()
    }

    /// Submits one interval's `M` sensor readings as a scheduled step,
    /// returning a pollable [`StepTicket`] — the nonblocking door a
    /// monitor event loop uses. The step joins the session's stream lane
    /// in the server's fairness rotation and executes on the sharded
    /// worker pool; steps of one session always execute in submission
    /// order. On a standalone session (no server) the step executes
    /// inline and the returned ticket is already ready.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] for a wrong-length
    ///   readings vector (checked up front — a malformed step is refused,
    ///   not enqueued) or, standalone, for a failed step.
    /// * [`ServeError::Saturated`] when this
    ///   session already has `max_pending_per_tenant` steps in flight.
    /// * [`ServeError::Terminated`] if the
    ///   server shut down.
    pub fn submit_step(&self, readings: &[f64]) -> Result<StepTicket> {
        let m = self.deployment.m();
        if readings.len() != m {
            return Err(ServeError::Core(eigenmaps_core::CoreError::ShapeMismatch {
                context: "session step readings",
                expected: m,
                found: readings.len(),
            }));
        }
        let Some(door) = &self.door else {
            // Standalone: execute inline (the bitwise reference path) and
            // hand back an already-completed ticket.
            let map = self.step_inline(readings)?;
            let slot = ResponseSlot::new();
            slot.complete(Ok(map));
            return Ok(StepTicket {
                version: self.version,
                slot,
            });
        };
        // Admission control: reserve a pending slot or refuse, exactly
        // like `try_submit` (a stream lane is its own admission domain,
        // bounded by the tenant's policy in force right now).
        let max_pending = door.max_pending(&self.name);
        let mut pending = self.pending.load(Ordering::Acquire);
        loop {
            if pending >= max_pending {
                // A refused step still leaves a terminal-only ring event.
                door.recorder.event(
                    door.recorder.allocate(&self.name),
                    Stage::Rejected(RejectReason::Saturated),
                    door.recorder.now(),
                );
                return Err(ServeError::Saturated {
                    name: self.name.clone(),
                    pending,
                });
            }
            match self.pending.compare_exchange_weak(
                pending,
                pending + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => pending = observed,
            }
        }
        let slot = ResponseSlot::new();
        let ticket = StepTicket {
            version: self.version,
            slot: Arc::clone(&slot),
        };
        let step = QueuedStep {
            stream: door.stream,
            name: self.name.clone(),
            tracker: Arc::clone(&self.tracker),
            readings: readings.to_vec(),
            enqueued: Instant::now(),
            frames: Arc::clone(&self.frames),
            trace: door.recorder.begin(&self.name),
            // The responder owns the reserved pending slot: completing —
            // or being dropped on a dead channel / teardown — releases it.
            responder: Responder::with_gauge(slot, Arc::clone(&self.pending)),
        };
        self.queue_step(step)?;
        Ok(ticket)
    }

    fn queue_step(&self, step: QueuedStep) -> Result<()> {
        let door = self.door.as_ref().expect("scheduled session has a door");
        // On failure the message (and its responder) is dropped here: the
        // slot completes `Terminated` and the pending gauge is released.
        door.queue
            .send(BatcherMsg::Step(step))
            .map_err(|_| ServeError::Terminated {
                context: "request queue closed",
            })
    }

    fn step_inline(&self, readings: &[f64]) -> Result<ThermalMap> {
        let map = self
            .tracker
            .lock()
            .expect("session tracker lock poisoned")
            .step(readings)?;
        self.frames.fetch_add(1, Ordering::Release);
        if let Some(metrics) = &self.metrics {
            metrics.record_session_step(&self.name);
        }
        Ok(map)
    }

    /// Feeds one interval's `M` sensor readings, returning the temporally
    /// filtered full-map estimate — the blocking convenience over
    /// [`TrackerSession::submit_step`]. On a server-opened session this
    /// is a scheduled round trip through the fairness rotation and the
    /// worker pool; standalone it executes inline. Both produce
    /// bitwise-identical maps.
    ///
    /// # Errors
    ///
    /// Union of [`TrackerSession::submit_step`] and
    /// [`StepTicket::wait`].
    pub fn step(&mut self, readings: &[f64]) -> Result<ThermalMap> {
        if self.door.is_none() {
            // Skip the ticket machinery on the inline path.
            self.step_inline(readings)
        } else {
            self.submit_step(readings)?.wait()
        }
    }

    /// Forgets the temporal state (e.g. after a telemetry gap), keeping
    /// the pinned deployment. Call with no steps in flight.
    pub fn reset(&mut self) {
        self.tracker
            .lock()
            .expect("session tracker lock poisoned")
            .reset();
    }

    /// The deployment artifact this session is pinned to.
    pub fn deployment(&self) -> &Arc<Deployment> {
        &self.deployment
    }

    /// The registry name the session was opened under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pinned deployment version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The temporal blending gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Frames served so far (scheduled steps count on completion).
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Acquire)
    }

    /// Steps admitted but not yet completed.
    pub fn pending_steps(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }

    /// The session's stream-lane id, if it is scheduled through a server.
    pub fn stream_id(&self) -> Option<StreamId> {
        self.door.as_ref().map(|door| door.stream)
    }

    /// The durable id the server's snapshot store checkpoints this
    /// session under, or 0 if the session is not enrolled for background
    /// checkpointing. Stable across restarts: after a crash, a client
    /// re-attaches to the hydrated session by this id.
    pub fn durable_id(&self) -> u64 {
        self.durable
    }

    pub(crate) fn set_durable(&mut self, id: u64) {
        self.durable = id;
    }

    /// The shared tracker cell (the durability hub holds a weak handle
    /// to checkpoint live sessions without owning them).
    pub(crate) fn tracker(&self) -> &Arc<Mutex<TrackingReconstructor>> {
        &self.tracker
    }

    /// [`fnv1a64`] digest of the pinned artifact's `EMDEPLOY` bytes.
    pub(crate) fn artifact_digest(&self) -> u64 {
        self.artifact_digest
    }
}

impl Drop for TrackerSession {
    fn drop(&mut self) {
        if let Some(metrics) = &self.metrics {
            metrics.record_session_closed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;
    use eigenmaps_core::prelude::*;

    fn fixture() -> (Arc<DeploymentRegistry>, MapEnsemble) {
        let (d, ens) = crate::testutil::two_mode_deployment(6, 6, 2, 4);
        let registry = Arc::new(DeploymentRegistry::new());
        registry.publish("chip", d);
        (registry, ens)
    }

    #[test]
    fn unit_gain_matches_memoryless_reconstruction() {
        let (registry, ens) = fixture();
        let mut session = TrackerSession::open(&registry, "chip", 1.0).unwrap();
        let deployment = registry.latest("chip").unwrap();
        for t in [0, 7, 21] {
            let readings = deployment.sensors().sample(&ens.map(t));
            let tracked = session.step(&readings).unwrap();
            let memoryless = deployment.reconstruct(&readings).unwrap();
            assert_eq!(tracked.as_slice(), memoryless.as_slice());
        }
        assert_eq!(session.frames(), 3);
        assert_eq!(session.version(), 1);
        assert_eq!(session.name(), "chip");
        assert_eq!(session.gain(), 1.0);
        assert_eq!(session.stream_id(), None, "standalone session");
    }

    #[test]
    fn session_survives_hot_swap() {
        let (registry, ens) = fixture();
        let mut session = TrackerSession::open(&registry, "chip", 0.5).unwrap();
        let readings = session.deployment().sensors().sample(&ens.map(3)).to_vec();
        session.step(&readings).unwrap();
        // Swap + retire the version the session is pinned to.
        let retrained = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 3 })
            .sensors(6)
            .design()
            .unwrap();
        registry.publish("chip", retrained);
        registry.retire("chip", 1).unwrap();
        // The live feed keeps serving with its pinned artifact.
        session.step(&readings).unwrap();
        assert_eq!(session.version(), 1);
        assert_eq!(session.frames(), 2);
        session.reset();
        assert_eq!(session.frames(), 2);
    }

    #[test]
    fn invalid_gain_rejected() {
        let (registry, _) = fixture();
        assert!(matches!(
            TrackerSession::open(&registry, "chip", 0.0),
            Err(ServeError::Core(_))
        ));
        assert!(matches!(
            TrackerSession::open(&registry, "ghost", 1.0),
            Err(ServeError::UnknownDeployment { .. })
        ));
    }

    #[test]
    fn open_at_pins_a_non_latest_version() {
        let (registry, ens) = fixture();
        let retrained = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 3 })
            .sensors(6)
            .design()
            .unwrap();
        registry.publish("chip", retrained);
        let session = TrackerSession::open_at(&registry, "chip", 1, 0.5).unwrap();
        assert_eq!(session.version(), 1);
        assert_eq!(session.deployment().m(), 4, "v1 artifact, not v2");
        assert!(matches!(
            TrackerSession::open_at(&registry, "chip", 9, 0.5),
            Err(ServeError::UnknownVersion { version: 9, .. })
        ));
    }

    #[test]
    fn standalone_snapshot_resume_continues_bitwise() {
        let (registry, ens) = fixture();
        let deployment = registry.latest("chip").unwrap();
        let readings: Vec<Vec<f64>> = (0..20)
            .map(|t| deployment.sensors().sample(&ens.map(t)))
            .collect();
        // The uninterrupted reference stream.
        let mut reference = TrackerSession::open(&registry, "chip", 0.3).unwrap();
        // The interrupted stream: step, snapshot, "restart", resume.
        let mut live = TrackerSession::open(&registry, "chip", 0.3).unwrap();
        for r in &readings[..8] {
            reference.step(r).unwrap();
            live.step(r).unwrap();
        }
        let bytes = live.snapshot();
        drop(live); // monitor restart
        let mut resumed = TrackerSession::resume(&registry, bytes.as_slice()).unwrap();
        assert_eq!(resumed.frames(), 8);
        assert_eq!(resumed.version(), 1);
        assert_eq!(resumed.gain(), 0.3);
        for (t, r) in readings[8..].iter().enumerate() {
            let a = reference.step(r).unwrap();
            let b = resumed.step(r).unwrap();
            assert_eq!(a.as_slice(), b.as_slice(), "post-resume step {t}");
        }
    }

    #[test]
    fn resume_refuses_mismatched_artifacts() {
        let (registry, ens) = fixture();
        let mut session = TrackerSession::open(&registry, "chip", 0.5).unwrap();
        let readings = session.deployment().sensors().sample(&ens.map(0));
        session.step(&readings).unwrap();
        let bytes = session.snapshot();

        // Retiring the pinned version makes the snapshot unresumable.
        let retrained = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 3 })
            .sensors(6)
            .design()
            .unwrap();
        registry.publish("chip", retrained.clone());
        registry.retire("chip", 1).unwrap();
        assert!(matches!(
            TrackerSession::resume(&registry, &bytes),
            Err(ServeError::UnknownVersion { version: 1, .. })
        ));

        // A fresh registry whose version numbering re-assigns v1 to a
        // different-shaped artifact: identity check must refuse.
        let fresh = DeploymentRegistry::new();
        fresh.publish("chip", retrained); // k=3, m=6 at version 1
        assert!(matches!(
            TrackerSession::resume(&fresh, &bytes),
            Err(ServeError::SnapshotMismatch { .. })
        ));

        // The hard case: a SAME-shape retrain (identical k and m, a
        // different basis) re-published as v1 — resuming the old
        // coefficient state against it would produce plausible but wrong
        // maps, so the artifact digest must refuse it.
        let same_shape = {
            let maps: Vec<ThermalMap> = (0..60)
                .map(|t| {
                    let a = (t as f64 / 4.7).sin();
                    let b = (t as f64 / 2.9).cos();
                    ThermalMap::from_fn(6, 6, |r, c| 51.0 + a * (r * r) as f64 + b * c as f64)
                })
                .collect();
            Pipeline::new(&MapEnsemble::from_maps(&maps).unwrap())
                .basis(BasisSpec::EigenExact { k: 2 })
                .sensors(4)
                .design()
                .unwrap()
        };
        let sneaky = DeploymentRegistry::new();
        sneaky.publish("chip", same_shape);
        assert!(matches!(
            TrackerSession::resume(&sneaky, &bytes),
            Err(ServeError::SnapshotMismatch {
                context: "deployment artifact bytes changed"
            })
        ));

        // Corrupt bytes are refused by the codec.
        let mut bad = bytes.clone();
        bad[10] ^= 0x01;
        assert!(matches!(
            TrackerSession::resume(&registry, &bad),
            Err(ServeError::Core(_))
        ));
    }

    #[test]
    fn malformed_readings_rejected_up_front() {
        let (registry, _) = fixture();
        let session = TrackerSession::open(&registry, "chip", 0.5).unwrap();
        assert!(matches!(
            session.submit_step(&[1.0, 2.0]),
            Err(ServeError::Core(CoreError::ShapeMismatch { .. }))
        ));
        assert_eq!(session.frames(), 0);
    }

    #[test]
    fn standalone_submit_step_returns_ready_ticket() {
        let (registry, ens) = fixture();
        let session = TrackerSession::open(&registry, "chip", 1.0).unwrap();
        let readings = session.deployment().sensors().sample(&ens.map(5));
        let mut ticket = session.submit_step(&readings).unwrap();
        assert!(ticket.is_ready());
        assert_eq!(ticket.version(), 1);
        let map = ticket.try_wait().unwrap().unwrap();
        let memoryless = session.deployment().reconstruct(&readings).unwrap();
        assert_eq!(map.as_slice(), memoryless.as_slice());
        assert!(ticket.try_wait().is_none(), "consumed exactly once");
        assert_eq!(session.pending_steps(), 0);
    }
}
