//! Streaming tracker sessions: stateful per-tenant telemetry feeds.
//!
//! Batch serving treats frames as independent; a DTM loop streaming one
//! reading vector per control interval wants temporal filtering instead.
//! A [`TrackerSession`] wraps the deployment's
//! [`eigenmaps_core::TrackingReconstructor`] with
//! fleet bookkeeping: the session pins the deployment version it was
//! opened against (hot swaps don't disturb a live feed), counts the frames
//! it has served, and reports steps into the shared serving metrics.

use std::sync::Arc;

use eigenmaps_core::{Deployment, ThermalMap, TrackingReconstructor};

use crate::error::Result;
use crate::metrics::ServeMetrics;
use crate::registry::DeploymentRegistry;

/// A stateful streaming session over one pinned deployment version.
///
/// Open one per sensor-telemetry feed via
/// [`Server::open_session`](crate::Server::open_session) (or directly with
/// [`TrackerSession::open`]); feed each interval's readings to
/// [`TrackerSession::step`].
#[derive(Debug)]
pub struct TrackerSession {
    deployment: Arc<Deployment>,
    tracker: TrackingReconstructor,
    name: String,
    version: u32,
    frames: u64,
    metrics: Option<Arc<ServeMetrics>>,
}

impl TrackerSession {
    /// Opens a session against the current version of `name` in
    /// `registry`, with temporal gain `g ∈ (0, 1]` (`g = 1` is the
    /// memoryless paper behavior).
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`](crate::ServeError::UnknownDeployment)
    ///   for an unresolved name.
    /// * [`ServeError::Core`](crate::ServeError::Core) for a gain outside
    ///   `(0, 1]`.
    pub fn open(registry: &DeploymentRegistry, name: &str, gain: f64) -> Result<Self> {
        Self::open_with_metrics(registry, name, gain, None)
    }

    pub(crate) fn open_with_metrics(
        registry: &DeploymentRegistry,
        name: &str,
        gain: f64,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> Result<Self> {
        let (version, deployment) = registry.latest_versioned(name)?;
        let tracker = deployment.tracker(gain)?;
        Ok(TrackerSession {
            deployment,
            tracker,
            name: name.to_string(),
            version,
            frames: 0,
            metrics,
        })
    }

    /// Feeds one interval's `M` sensor readings, returning the temporally
    /// filtered full-map estimate.
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`](crate::ServeError::Core) for a wrong-length
    /// readings vector.
    pub fn step(&mut self, readings: &[f64]) -> Result<ThermalMap> {
        let map = self.tracker.step(readings)?;
        self.frames += 1;
        if let Some(metrics) = &self.metrics {
            metrics.record_session_step();
        }
        Ok(map)
    }

    /// Forgets the temporal state (e.g. after a telemetry gap), keeping
    /// the pinned deployment.
    pub fn reset(&mut self) {
        self.tracker.reset();
    }

    /// The deployment artifact this session is pinned to.
    pub fn deployment(&self) -> &Arc<Deployment> {
        &self.deployment
    }

    /// The registry name the session was opened under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pinned deployment version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Frames served so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeError;
    use eigenmaps_core::prelude::*;

    fn fixture() -> (Arc<DeploymentRegistry>, MapEnsemble) {
        let (d, ens) = crate::testutil::two_mode_deployment(6, 6, 2, 4);
        let registry = Arc::new(DeploymentRegistry::new());
        registry.publish("chip", d);
        (registry, ens)
    }

    #[test]
    fn unit_gain_matches_memoryless_reconstruction() {
        let (registry, ens) = fixture();
        let mut session = TrackerSession::open(&registry, "chip", 1.0).unwrap();
        let deployment = registry.latest("chip").unwrap();
        for t in [0, 7, 21] {
            let readings = deployment.sensors().sample(&ens.map(t));
            let tracked = session.step(&readings).unwrap();
            let memoryless = deployment.reconstruct(&readings).unwrap();
            assert_eq!(tracked.as_slice(), memoryless.as_slice());
        }
        assert_eq!(session.frames(), 3);
        assert_eq!(session.version(), 1);
        assert_eq!(session.name(), "chip");
    }

    #[test]
    fn session_survives_hot_swap() {
        let (registry, ens) = fixture();
        let mut session = TrackerSession::open(&registry, "chip", 0.5).unwrap();
        let readings = session.deployment().sensors().sample(&ens.map(3)).to_vec();
        session.step(&readings).unwrap();
        // Swap + retire the version the session is pinned to.
        let retrained = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 3 })
            .sensors(6)
            .design()
            .unwrap();
        registry.publish("chip", retrained);
        registry.retire("chip", 1).unwrap();
        // The live feed keeps serving with its pinned artifact.
        session.step(&readings).unwrap();
        assert_eq!(session.version(), 1);
        assert_eq!(session.frames(), 2);
        session.reset();
        assert_eq!(session.frames(), 2);
    }

    #[test]
    fn invalid_gain_rejected() {
        let (registry, _) = fixture();
        assert!(matches!(
            TrackerSession::open(&registry, "chip", 0.0),
            Err(ServeError::Core(_))
        ));
        assert!(matches!(
            TrackerSession::open(&registry, "ghost", 1.0),
            Err(ServeError::UnknownDeployment { .. })
        ));
    }
}
