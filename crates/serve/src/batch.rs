//! The request/batching front end: [`ServeRequest`] → per-tenant pending
//! queues → [`Scheduler`] → [`ShardedExecutor`].
//!
//! Real monitoring traffic arrives as many small requests (a handful of
//! telemetry frames per chip per interval), but the execution engine is at
//! its best on large batches. The [`Server`] bridges the two: a request
//! pins its deployment version at submit time, is queued under its
//! [`TenantKey`] `(name, version)`, and a batcher thread drives the pure
//! [`Scheduler`] state machine, which coalesces each tenant's requests
//! independently and flushes a tenant when *its own* frame budget, request
//! budget or latency budget ([`BatchPolicy`]) fills — so interleaved
//! multi-tenant traffic no longer degrades to one-request batches, and a
//! hot swap mid-queue never mixes artifacts (the new version is simply a
//! new tenant key).
//!
//! When several tenants are ready at once, flushes are decided round-robin
//! (the scheduler's fairness rotation): a backlogged tenant's next batch
//! is decided only after every other ready tenant got one, so it cannot
//! starve the others, while per-tenant deadlines — anchored at the
//! client's submit time — bound every request's queueing latency
//! regardless of foreign traffic.
//!
//! The front door is nonblocking end to end: [`Server::submit`] and
//! [`Server::try_submit`] enqueue without waiting, and the returned
//! [`Ticket`] can be consumed three ways — block ([`Ticket::wait`]), poll
//! ([`Ticket::try_wait`]), or register a readiness callback
//! ([`Ticket::on_ready`]) to bridge an event loop without a thread per
//! request. Dropping a ticket abandons the response but never the request:
//! the batch still executes and the batcher never wedges.
//!
//! Streaming sessions go through the **same** front door: a session opened
//! with [`Server::open_session`] (or pinned with
//! [`Server::open_session_at`], or warm-started with
//! [`Server::resume_session`]) owns a stream lane in the scheduler's
//! fairness rotation, its `submit_step` is admission-controlled like
//! `try_submit`, and each step executes on the sharded worker pool
//! interleaved fairly with batch flushes — there is no unscheduled
//! serving path left. Per-tenant [`BatchPolicy`] overrides
//! ([`Server::set_tenant_policy`]) tier both workload classes by SKU.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use eigenmaps_core::{CoreError, Deployment, ThermalMap, TrackingReconstructor};

use crate::error::{Result, ServeError};
use crate::metrics::ServeMetrics;
use crate::registry::DeploymentRegistry;
use crate::scheduler::{
    BrownoutPolicy, Decision, FlushDecision, Scheduler, ShedDecision, StepDecision, StreamId,
    TenantKey,
};
use crate::session::{SessionDoor, TrackerSession};
use crate::shard::ShardedExecutor;
use crate::store::{DurabilityHub, Hydration, HydrationReport, SnapshotStore, DEFAULT_KEEP};
use crate::trace::{FlightRecorder, RejectReason, Stage, TraceCard, DEFAULT_RING_CAPACITY};

pub use crate::scheduler::BatchPolicy;

/// One reconstruction request: a named deployment and the sensor-reading
/// frames to reconstruct.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Registry name of the deployment to serve against.
    pub deployment: String,
    /// Sensor readings, one `M`-length vector per frame.
    pub frames: Vec<Vec<f64>>,
}

impl ServeRequest {
    /// A request against the named deployment.
    pub fn new(deployment: impl Into<String>, frames: Vec<Vec<f64>>) -> Self {
        ServeRequest {
            deployment: deployment.into(),
            frames,
        }
    }
}

/// Where a response of type `R` lands: shared between a ticket handle and
/// the batcher. One machinery for both response shapes — batch requests
/// (`R = Vec<ThermalMap>`) and session steps (`R = ThermalMap`).
pub(crate) struct ResponseSlot<R> {
    state: Mutex<SlotState<R>>,
    ready: Condvar,
}

enum SlotState<R> {
    /// Response not produced yet; an optional readiness callback waits.
    Pending {
        callback: Option<Box<dyn FnOnce() + Send>>,
    },
    /// Response produced, not yet consumed.
    Ready(Result<R>),
    /// Response consumed (by `wait` or `try_wait`).
    Taken,
}

impl<R> ResponseSlot<R> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState::Pending { callback: None }),
            ready: Condvar::new(),
        })
    }

    /// Stores the response, fires the readiness callback (outside the
    /// lock), then wakes blocked waiters. Idempotent: only the first
    /// completion wins.
    pub(crate) fn complete(&self, result: Result<R>) {
        let callback = {
            let mut state = self.state.lock().expect("ticket lock poisoned");
            match &mut *state {
                SlotState::Pending { callback } => {
                    let callback = callback.take();
                    *state = SlotState::Ready(result);
                    callback
                }
                _ => return,
            }
        };
        if let Some(callback) = callback {
            callback();
        }
        self.ready.notify_all();
    }

    /// Whether a response is ready (a `try_take` would return it).
    pub(crate) fn is_ready(&self) -> bool {
        matches!(
            *self.state.lock().expect("ticket lock poisoned"),
            SlotState::Ready(_)
        )
    }

    /// Nonblocking poll: the response if ready (returned exactly once),
    /// `None` while pending or after it was already consumed.
    pub(crate) fn try_take(&self) -> Option<Result<R>> {
        let mut state = self.state.lock().expect("ticket lock poisoned");
        match &*state {
            SlotState::Ready(_) => match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(result) => Some(result),
                _ => unreachable!("state was Ready under the lock"),
            },
            _ => None,
        }
    }

    /// Registers `callback` to run as soon as the response is ready; runs
    /// it immediately (on the calling thread) if it already is. A second
    /// registration replaces the first.
    pub(crate) fn on_ready(&self, callback: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.state.lock().expect("ticket lock poisoned");
            if let SlotState::Pending { callback: slot } = &mut *state {
                *slot = Some(Box::new(callback));
                return;
            }
        }
        callback();
    }

    /// Blocks until completed; [`ServeError::Terminated`] if the response
    /// was already consumed.
    pub(crate) fn wait(&self) -> Result<R> {
        let mut state = self.state.lock().expect("ticket lock poisoned");
        loop {
            match &*state {
                SlotState::Pending { .. } => {
                    state = self.ready.wait(state).expect("ticket lock poisoned");
                }
                SlotState::Ready(_) => match std::mem::replace(&mut *state, SlotState::Taken) {
                    SlotState::Ready(result) => return result,
                    _ => unreachable!("state was Ready under the lock"),
                },
                SlotState::Taken => {
                    return Err(ServeError::Terminated {
                        context: "response already consumed by try_wait",
                    })
                }
            }
        }
    }
}

/// Completes its [`ResponseSlot`] exactly once — on the happy path with
/// the result, or with [`ServeError::Terminated`] if dropped unfulfilled
/// (batcher teardown), so a ticket `wait` can never hang. Optionally
/// drains one slot from a pending gauge on completion (the per-session
/// admission counter), so abandoned or terminated steps never leak
/// admission slots.
pub(crate) struct Responder<R> {
    slot: Arc<ResponseSlot<R>>,
    gauge: Option<Arc<AtomicU64>>,
    fulfilled: bool,
}

impl<R> Responder<R> {
    pub(crate) fn new(slot: Arc<ResponseSlot<R>>) -> Self {
        Responder {
            slot,
            gauge: None,
            fulfilled: false,
        }
    }

    /// A responder that also decrements `gauge` (saturating) exactly once
    /// when it completes — fulfilled or dropped.
    pub(crate) fn with_gauge(slot: Arc<ResponseSlot<R>>, gauge: Arc<AtomicU64>) -> Self {
        Responder {
            slot,
            gauge: Some(gauge),
            fulfilled: false,
        }
    }

    fn release_gauge(&mut self) {
        if let Some(gauge) = self.gauge.take() {
            let _ = gauge.fetch_update(Ordering::AcqRel, Ordering::Acquire, |pending| {
                Some(pending.saturating_sub(1))
            });
        }
    }

    pub(crate) fn send(mut self, result: Result<R>) {
        self.fulfilled = true;
        self.release_gauge();
        self.slot.complete(result);
    }
}

impl<R> Drop for Responder<R> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.release_gauge();
            self.slot.complete(Err(ServeError::Terminated {
                context: "server dropped before responding",
            }));
        }
    }
}

impl<R> std::fmt::Debug for Responder<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responder")
            .field("fulfilled", &self.fulfilled)
            .finish()
    }
}

/// A pending response handle returned by [`Server::submit`] /
/// [`Server::try_submit`].
///
/// A ticket can be consumed exactly once, in any of three styles:
///
/// * **block** — [`Ticket::wait`];
/// * **poll** — [`Ticket::try_wait`] from an event loop;
/// * **callback** — [`Ticket::on_ready`] to get woken without a thread.
///
/// Dropping a ticket without consuming it is safe: the request still
/// executes in its coalesced batch (its tenant's queue slot is released
/// exactly as if it had been awaited), and the response is discarded.
pub struct Ticket {
    version: u32,
    slot: Arc<ResponseSlot<Vec<ThermalMap>>>,
    degraded: Arc<AtomicBool>,
}

impl Ticket {
    /// The deployment version this request was pinned to at submit time.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether the response was served **degraded**: the server was in
    /// brownout (or the request blew a `Degrade`-tier deadline) and the
    /// maps were reconstructed against a truncated low-K deployment
    /// instead of the full basis. Meaningful once the response is ready;
    /// `false` while pending and for full-fidelity responses.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Whether a response is ready — [`Ticket::try_wait`] would return it.
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }

    /// Nonblocking poll: the response if it is ready (returned exactly
    /// once), `None` while it is still pending or after it was already
    /// consumed.
    pub fn try_wait(&mut self) -> Option<Result<Vec<ThermalMap>>> {
        self.slot.try_take()
    }

    /// Registers `callback` to run as soon as the response is ready
    /// (invoked on the batcher thread, before blocked waiters wake). If
    /// the response is already ready, runs it immediately on the calling
    /// thread. A second registration replaces the first. The callback
    /// must not block — it is the readiness hook an event loop uses to
    /// schedule a [`Ticket::try_wait`].
    pub fn on_ready(&self, callback: impl FnOnce() + Send + 'static) {
        self.slot.on_ready(callback);
    }

    /// Blocks until the batcher serves the request.
    ///
    /// # Errors
    ///
    /// * The request's own failure ([`ServeError::Core`]), or
    /// * [`ServeError::DeadlineShed`] (retryable) if the request blew its
    ///   tenant's deadline budget while queued and the tenant's overrun
    ///   action is `Shed`, or
    /// * [`ServeError::Terminated`] if the server shut down before
    ///   responding, or if the response was already consumed by
    ///   [`Ticket::try_wait`].
    pub fn wait(self) -> Result<Vec<ThermalMap>> {
        self.slot.wait()
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("version", &self.version)
            .field("ready", &self.is_ready())
            .field("degraded", &self.is_degraded())
            .finish()
    }
}

/// A queued request with its artifact pinned and its response slot.
#[derive(Debug)]
pub(crate) struct QueuedRequest {
    key: TenantKey,
    deployment: Arc<Deployment>,
    frames: Vec<Vec<f64>>,
    enqueued: Instant,
    trace: TraceCard,
    /// Shared with the [`Ticket`]: raised before the response completes
    /// when the batch was reconstructed against a truncated deployment.
    degraded: Arc<AtomicBool>,
    responder: Responder<Vec<ThermalMap>>,
}

/// A queued session step: one interval's readings for one stream lane,
/// sharing the session's tracker (and bookkeeping counters) with the
/// [`TrackerSession`] handle that submitted it.
#[derive(Debug)]
pub(crate) struct QueuedStep {
    pub(crate) stream: StreamId,
    pub(crate) name: String,
    pub(crate) tracker: Arc<Mutex<TrackingReconstructor>>,
    pub(crate) readings: Vec<f64>,
    pub(crate) enqueued: Instant,
    pub(crate) frames: Arc<AtomicU64>,
    pub(crate) trace: TraceCard,
    pub(crate) responder: Responder<ThermalMap>,
}

/// Everything the front door can feed the batcher thread. Requests and
/// steps land in the scheduler's lanes; policy updates reconfigure it;
/// `Shutdown` (sent by [`Server::drop`]) makes it drain and exit even
/// though open sessions still hold `Sender` clones.
#[derive(Debug)]
pub(crate) enum BatcherMsg {
    Request(QueuedRequest),
    Step(QueuedStep),
    /// Sent back to the batcher by the worker that finished a dispatched
    /// step: the stream's in-flight gate opens and its next deferred step
    /// (if any) enters the scheduler — per-session ordering without
    /// blocking the batcher on step execution.
    StepDone(StreamId),
    Policy {
        name: String,
        policy: Option<BatchPolicy>,
    },
    /// Installs (`Some`) or clears (`None`) the scheduler's brownout
    /// hysteresis watermarks — see [`Server::set_brownout`].
    Brownout(Option<BrownoutPolicy>),
    /// Installs the durability hub in the batcher: from here on the loop
    /// folds the hub's checkpoint deadline into its wait and throws
    /// `checkpoint_now` jobs onto the executor's fire-and-forget lane
    /// when the cadence elapses.
    Durability(Arc<DurabilityHub>),
    Shutdown,
}

/// The scheduler's job payload: batch lanes carry requests, stream lanes
/// carry steps. The invariant (upheld by `batcher_loop`'s submit calls)
/// is that a batch decision only ever contains `Request`s and a step
/// decision only ever a `Step`.
#[derive(Debug)]
enum Work {
    Request(QueuedRequest),
    Step(QueuedStep),
}

/// The serving front end: registry + per-tenant micro-batching scheduler +
/// sharded execution engine + metrics, one per fleet process.
///
/// `Server` is `Send + Sync`; submit from any thread. Dropping it flushes
/// queued requests and joins the batcher and worker threads (outstanding
/// [`TrackerSession`] handles survive, but their scheduled steps complete
/// with [`ServeError::Terminated`] from then on).
#[derive(Debug)]
pub struct Server {
    registry: Arc<DeploymentRegistry>,
    executor: Arc<ShardedExecutor>,
    metrics: Arc<ServeMetrics>,
    policy: BatchPolicy,
    /// Front-door mirror of the scheduler's per-tenant overrides (the
    /// admission-control bound is enforced here, before the batcher).
    /// Shared with every open session's door, so a policy change reaches
    /// live streams too.
    overrides: Arc<RwLock<HashMap<String, BatchPolicy>>>,
    queue: Sender<BatcherMsg>,
    /// The flight recorder every request, step and rejection reports its
    /// lifecycle stages to (see [`crate::trace`]).
    recorder: FlightRecorder,
    /// Stream-lane id allocator for sessions opened through this server.
    next_stream: AtomicU64,
    /// The crash-safe snapshot service, once attached via
    /// [`Server::hydrate`] / [`Server::hydrate_with`]. Sessions opened
    /// while it is installed enroll for background checkpointing.
    durability: Mutex<Option<Arc<DurabilityHub>>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// A server over `registry` with `shards` execution workers and the
    /// default [`BatchPolicy`].
    pub fn new(registry: Arc<DeploymentRegistry>, shards: usize) -> Self {
        Self::with_policy(registry, shards, BatchPolicy::default())
    }

    /// A server with an explicit batching policy.
    pub fn with_policy(
        registry: Arc<DeploymentRegistry>,
        shards: usize,
        policy: BatchPolicy,
    ) -> Self {
        let shards = shards.max(1);
        let metrics = Arc::new(ServeMetrics::new(shards));
        let executor = Arc::new(ShardedExecutor::with_metrics(shards, Arc::clone(&metrics)));
        let (queue, rx) = mpsc::channel();
        // The recorder's clock epoch predates every possible submit, so
        // request timestamps always convert to a valid `Duration`; the
        // batcher, the scheduler and the trace ring all share it.
        let recorder = FlightRecorder::with_metrics(DEFAULT_RING_CAPACITY, Arc::clone(&metrics));
        let batcher = {
            let executor = Arc::clone(&executor);
            let metrics = Arc::clone(&metrics);
            let recorder = recorder.clone();
            // The batcher holds a sender to its own queue: workers clone
            // it into dispatched steps to report `StepDone`.
            let done = queue.clone();
            std::thread::Builder::new()
                .name("eigenmaps-batcher".into())
                .spawn(move || batcher_loop(&rx, &executor, &metrics, &done, policy, recorder))
                .expect("spawn batcher")
        };
        Server {
            registry,
            executor,
            metrics,
            policy,
            overrides: Arc::new(RwLock::new(HashMap::new())),
            queue,
            recorder,
            next_stream: AtomicU64::new(1),
            durability: Mutex::new(None),
            batcher: Some(batcher),
        }
    }

    /// The deployment registry this server resolves names against.
    pub fn registry(&self) -> &Arc<DeploymentRegistry> {
        &self.registry
    }

    /// The execution engine (e.g. for direct, unbatched batches).
    pub fn executor(&self) -> &Arc<ShardedExecutor> {
        &self.executor
    }

    /// The global (fallback) batching policy this server's scheduler
    /// enforces.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// The policy in force for deployment `name`: its per-tenant override
    /// if one is installed, else the global policy.
    pub fn tenant_policy(&self, name: &str) -> BatchPolicy {
        self.overrides
            .read()
            .expect("policy overrides lock poisoned")
            .get(name)
            .copied()
            .unwrap_or(self.policy)
    }

    /// Installs (`Some`) or clears (`None`) a per-tenant [`BatchPolicy`]
    /// override for every version of deployment `name` — latency-tiered
    /// SKUs: a premium tenant gets a tight `max_delay` and small batches,
    /// a bulk tenant big coalescing budgets. The override governs both
    /// the scheduler's readiness/sizing budgets and the nonblocking
    /// door's `max_pending_per_tenant` admission bound; it applies to
    /// requests admitted from now on (already-queued requests are
    /// re-judged under the new budgets on the scheduler's next tick) and
    /// survives hot swaps (keyed by name, not version).
    ///
    /// # Errors
    ///
    /// [`ServeError::Terminated`] if the server is shutting down.
    pub fn set_tenant_policy(&self, name: &str, policy: Option<BatchPolicy>) -> Result<()> {
        {
            let mut overrides = self
                .overrides
                .write()
                .expect("policy overrides lock poisoned");
            match policy {
                Some(policy) => {
                    overrides.insert(name.to_string(), policy);
                }
                None => {
                    overrides.remove(name);
                }
            }
        }
        self.queue
            .send(BatcherMsg::Policy {
                name: name.to_string(),
                policy,
            })
            .map_err(|_| ServeError::Terminated {
                context: "request queue closed",
            })
    }

    /// Installs (`Some`) or clears (`None`) the brownout policy: pending-
    /// frame watermarks with hysteresis (see [`BrownoutPolicy`]). While
    /// the scheduler is in brownout, every flush for a tenant whose
    /// [`OverrunAction`] is `Degrade { keep_k }` is reconstructed against
    /// a truncated `keep_k`-mode deployment — coarser maps, on time —
    /// and the response's [`Ticket::is_degraded`] flag is raised.
    /// Clearing the policy also exits any active brownout.
    ///
    /// [`OverrunAction`]: crate::OverrunAction
    ///
    /// # Errors
    ///
    /// [`ServeError::Terminated`] if the server is shutting down.
    pub fn set_brownout(&self, policy: Option<BrownoutPolicy>) -> Result<()> {
        self.queue
            .send(BatcherMsg::Brownout(policy))
            .map_err(|_| ServeError::Terminated {
                context: "request queue closed",
            })
    }

    /// A point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live metrics hub this server (and its executor) records into —
    /// for transports such as a network front door that add their own
    /// connection/wire gauges to the same snapshot.
    pub fn metrics_hub(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The flight recorder tracing every request's lifecycle through this
    /// server: read its ring with [`FlightRecorder::snapshot`], its
    /// slowest full traces with [`FlightRecorder::exemplars`], or switch
    /// tracing off with [`FlightRecorder::set_enabled`]. Transports (e.g.
    /// the network door) clone it to stamp their own wire stages onto the
    /// same timeline.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Enqueues a request, returning a [`Ticket`] for the response. The
    /// deployment name is resolved (and its current version pinned) now;
    /// frame lengths are validated now so malformed requests fail fast
    /// instead of poisoning a coalesced batch.
    ///
    /// The request joins **its tenant's own pending queue** (keyed by the
    /// pinned `(name, version)`): it coalesces only with other requests
    /// for the same artifact, and flushes when that queue's frame count,
    /// request count or oldest-request age crosses the [`BatchPolicy`]
    /// budgets — interleaved traffic from other tenants neither flushes
    /// nor delays it. This path never blocks and never rejects on load
    /// (the queue is unbounded); use [`Server::try_submit`] for
    /// admission-controlled submission.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use eigenmaps_core::prelude::*;
    /// use eigenmaps_serve::{DeploymentRegistry, ServeRequest, Server};
    ///
    /// # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    /// let maps: Vec<ThermalMap> = (0..30)
    ///     .map(|t| {
    ///         let w = (t as f64 / 4.0).sin();
    ///         ThermalMap::from_fn(6, 6, |r, c| 40.0 + w * (r + 2 * c) as f64)
    ///     })
    ///     .collect();
    /// let ensemble = MapEnsemble::from_maps(&maps)?;
    /// let registry = Arc::new(DeploymentRegistry::new());
    /// registry.publish(
    ///     "chip",
    ///     Pipeline::new(&ensemble)
    ///         .basis(BasisSpec::EigenExact { k: 2 })
    ///         .sensors(4)
    ///         .design()?,
    /// );
    /// let server = Server::new(Arc::clone(&registry), 2);
    ///
    /// let frames = vec![registry.latest("chip")?.sensors().sample(&ensemble.map(0))];
    /// let ticket = server.submit(ServeRequest::new("chip", frames))?;
    /// assert_eq!(ticket.version(), 1); // pinned at submit
    /// assert_eq!(ticket.wait()?.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`] for an unresolved name.
    /// * [`ServeError::Core`] for frames with the wrong reading count.
    /// * [`ServeError::Terminated`] if the server is shutting down.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket> {
        self.enqueue(request, false)
    }

    /// The nonblocking, admission-controlled front door: like
    /// [`Server::submit`], but refuses with [`ServeError::Saturated`]
    /// (instead of queueing without bound) when the tenant already has
    /// [`BatchPolicy::max_pending_per_tenant`] requests pending. Combined
    /// with [`Ticket::try_wait`] / [`Ticket::on_ready`], a single event
    /// loop can front many connections with zero blocked threads: submit,
    /// register readiness, poll when woken.
    ///
    /// ```
    /// use std::sync::atomic::{AtomicBool, Ordering};
    /// use std::sync::Arc;
    /// use eigenmaps_core::prelude::*;
    /// use eigenmaps_serve::{DeploymentRegistry, ServeRequest, Server};
    ///
    /// # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    /// let maps: Vec<ThermalMap> = (0..30)
    ///     .map(|t| {
    ///         let w = (t as f64 / 4.0).sin();
    ///         ThermalMap::from_fn(6, 6, |r, c| 40.0 + w * (r + 2 * c) as f64)
    ///     })
    ///     .collect();
    /// let ensemble = MapEnsemble::from_maps(&maps)?;
    /// let registry = Arc::new(DeploymentRegistry::new());
    /// registry.publish(
    ///     "chip",
    ///     Pipeline::new(&ensemble)
    ///         .basis(BasisSpec::EigenExact { k: 2 })
    ///         .sensors(4)
    ///         .design()?,
    /// );
    /// let server = Server::new(Arc::clone(&registry), 2);
    ///
    /// let frames = vec![registry.latest("chip")?.sensors().sample(&ensemble.map(1))];
    /// let mut ticket = server.try_submit(ServeRequest::new("chip", frames))?;
    /// // Event-loop style: a readiness hook instead of a blocked thread.
    /// let woken = Arc::new(AtomicBool::new(false));
    /// let flag = Arc::clone(&woken);
    /// ticket.on_ready(move || flag.store(true, Ordering::Release));
    /// // Poll until the callback has fired (a real loop would sleep on
    /// // its I/O selector and re-poll when woken).
    /// while !woken.load(Ordering::Acquire) {
    ///     std::thread::yield_now();
    /// }
    /// assert_eq!(ticket.try_wait().unwrap()?.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Union of [`Server::submit`] and [`ServeError::Saturated`] when the
    /// tenant's pending queue is full.
    pub fn try_submit(&self, request: ServeRequest) -> Result<Ticket> {
        self.enqueue(request, true)
    }

    fn enqueue(&self, request: ServeRequest, admission_control: bool) -> Result<Ticket> {
        let (version, deployment) = self.registry.latest_versioned(&request.deployment)?;
        let m = deployment.m();
        for readings in &request.frames {
            if readings.len() != m {
                return Err(ServeError::Core(CoreError::ShapeMismatch {
                    context: "serve request readings",
                    expected: m,
                    found: readings.len(),
                }));
            }
        }
        // Gauge up before handing the request to the batcher: the flush
        // path decrements, and decrement-before-increment would wedge the
        // gauge above zero forever. The nonblocking door reserves its
        // gauge slot atomically, so concurrent admitters cannot overshoot
        // the per-tenant bound.
        if admission_control {
            if let Err(pending) = self.metrics.try_record_tenant_enqueued(
                &request.deployment,
                self.tenant_policy(&request.deployment)
                    .max_pending_per_tenant as u64,
            ) {
                // A request turned away at the door still leaves a ring
                // event: a terminal-only trace with the rejection reason.
                self.recorder.event(
                    self.recorder.allocate(&request.deployment),
                    Stage::Rejected(RejectReason::Saturated),
                    self.recorder.now(),
                );
                return Err(ServeError::Saturated {
                    name: request.deployment,
                    pending,
                });
            }
        } else {
            self.metrics.record_tenant_enqueued(&request.deployment);
        }
        let trace = self.recorder.begin(&request.deployment);
        let slot = ResponseSlot::new();
        let degraded = Arc::new(AtomicBool::new(false));
        let ticket = Ticket {
            version,
            slot: Arc::clone(&slot),
            degraded: Arc::clone(&degraded),
        };
        let frames = request.frames.len();
        let queued = QueuedRequest {
            key: TenantKey::new(&request.deployment, version),
            deployment,
            frames: request.frames,
            enqueued: Instant::now(),
            trace,
            degraded,
            responder: Responder::new(slot),
        };
        if let Err(mpsc::SendError(dead)) = self.queue.send(BatcherMsg::Request(queued)) {
            if let BatcherMsg::Request(dead) = dead {
                self.metrics.record_tenant_dequeued(&dead.key.name, 1);
                dead.trace.record(Stage::Rejected(RejectReason::Terminated));
            }
            return Err(ServeError::Terminated {
                context: "request queue closed",
            });
        }
        self.metrics.record_request(frames);
        Ok(ticket)
    }

    /// Submits and blocks for the response — the synchronous convenience
    /// path.
    ///
    /// # Errors
    ///
    /// Union of [`Server::submit`] and [`Ticket::wait`].
    pub fn serve(&self, deployment: &str, frames: Vec<Vec<f64>>) -> Result<Vec<ThermalMap>> {
        self.submit(ServeRequest::new(deployment, frames))?.wait()
    }

    /// The stream-lane door handed to sessions opened through this
    /// server: a fresh lane id, a clone of the batcher queue and a live
    /// view of the policy overrides, so a later
    /// [`Server::set_tenant_policy`] re-tiers the session's admission
    /// bound too.
    fn session_door(&self) -> SessionDoor {
        SessionDoor {
            stream: StreamId(self.next_stream.fetch_add(1, Ordering::Relaxed)),
            queue: self.queue.clone(),
            overrides: Arc::clone(&self.overrides),
            fallback: self.policy,
            recorder: self.recorder.clone(),
        }
    }

    /// Opens a streaming tracker session against the named deployment's
    /// current version (pinned for the session's lifetime). The session
    /// is a **scheduled workload**: each [`TrackerSession::submit_step`]
    /// (and the blocking [`TrackerSession::step`] convenience) goes
    /// through admission control into the session's own stream lane in
    /// the batcher's fairness rotation, and the tracker arithmetic runs
    /// on the sharded worker pool — never on the caller's thread. See
    /// [`TrackerSession`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`] for an unresolved name.
    /// * [`ServeError::Core`] for a gain outside `(0, 1]`.
    pub fn open_session(&self, deployment: &str, gain: f64) -> Result<TrackerSession> {
        let mut session = TrackerSession::open_scheduled(
            &self.registry,
            deployment,
            None,
            gain,
            Arc::clone(&self.metrics),
            self.session_door(),
        )?;
        self.enroll(&mut session);
        Ok(session)
    }

    /// [`Server::open_session`] pinned to an explicit registry `version`
    /// instead of the latest — how a resumed snapshot (or an A/B
    /// experiment) reattaches to the exact artifact a stream was trained
    /// against even after newer versions were published.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`] / [`ServeError::UnknownVersion`]
    ///   for an unresolved name or a retired/never-published version.
    /// * [`ServeError::Core`] for a gain outside `(0, 1]`.
    pub fn open_session_at(
        &self,
        deployment: &str,
        version: u32,
        gain: f64,
    ) -> Result<TrackerSession> {
        let mut session = TrackerSession::open_scheduled(
            &self.registry,
            deployment,
            Some(version),
            gain,
            Arc::clone(&self.metrics),
            self.session_door(),
        )?;
        self.enroll(&mut session);
        Ok(session)
    }

    /// Warm-starts a stream from an `EMSESS1` snapshot (see
    /// [`TrackerSession::snapshot`]): re-resolves the exact pinned
    /// `(deployment, version)` from this server's registry, refuses a
    /// shape or identity mismatch, imports the temporal-filter state and
    /// returns a scheduled session that continues the stream
    /// bitwise-identically to the uninterrupted one.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] for malformed snapshot bytes.
    /// * [`ServeError::UnknownDeployment`] / [`ServeError::UnknownVersion`]
    ///   if the pinned artifact is no longer published.
    /// * [`ServeError::SnapshotMismatch`] if the resolved deployment's
    ///   shape disagrees with the snapshot.
    pub fn resume_session(&self, bytes: &[u8]) -> Result<TrackerSession> {
        let mut session = TrackerSession::resume_scheduled(
            &self.registry,
            bytes,
            Arc::clone(&self.metrics),
            self.session_door(),
        )?;
        self.enroll(&mut session);
        Ok(session)
    }

    /// Enrolls a freshly opened session for background checkpointing, if
    /// a durability hub is installed.
    fn enroll(&self, session: &mut TrackerSession) {
        let hub = self.durability.lock().expect("durability slot poisoned");
        if let Some(hub) = hub.as_ref() {
            let id = hub.register(session);
            session.set_durable(id);
        }
    }

    /// The installed durability hub, if [`Server::hydrate`] /
    /// [`Server::hydrate_with`] attached one — tests and operators use
    /// it to force a checkpoint ([`DurabilityHub::checkpoint_now`]).
    pub fn durability(&self) -> Option<Arc<DurabilityHub>> {
        self.durability
            .lock()
            .expect("durability slot poisoned")
            .clone()
    }

    /// Attaches a crash-safe snapshot store rooted at `dir` (created if
    /// missing) and hydrates whatever a previous process checkpointed
    /// there: persisted deployments are republished under their exact
    /// `(name, version)` pairs, every recoverable session is resumed
    /// (bitwise-continuing its stream) and re-enrolled under its
    /// preserved durable id, and corrupt or torn entries are skipped and
    /// metered — never a failed boot. From then on the batcher commits a
    /// whole-fleet checkpoint every `cadence` through the executor's
    /// fire-and-forget job lane, and every session opened through this
    /// server is checkpointed too.
    ///
    /// The returned [`Hydration`] carries the recovered sessions; keep
    /// them alive (e.g. hand them to a network front door for `Attach`)
    /// or drop them to discard the recovered streams.
    ///
    /// # Errors
    ///
    /// * [`ServeError::StoreVersionAhead`] if the directory's manifest
    ///   was written by a newer format version — refused, not clobbered.
    /// * [`ServeError::Terminated`] for an unusable store directory, or
    ///   if a durability store is already attached.
    pub fn hydrate(&self, dir: impl AsRef<Path>, cadence: Duration) -> Result<Hydration> {
        let store = SnapshotStore::open(dir, DEFAULT_KEEP).map_err(|_| ServeError::Terminated {
            context: "durability store directory is unusable",
        })?;
        self.hydrate_with(store, cadence)
    }

    /// [`Server::hydrate`] over an explicit [`SnapshotStore`] — the
    /// fault-injection door ([`crate::store::MemIo`]) and the way to
    /// choose a non-default rotation depth.
    ///
    /// # Errors
    ///
    /// See [`Server::hydrate`].
    pub fn hydrate_with(&self, store: SnapshotStore, cadence: Duration) -> Result<Hydration> {
        {
            let installed = self.durability.lock().expect("durability slot poisoned");
            if installed.is_some() {
                return Err(ServeError::Terminated {
                    context: "a durability store is already attached",
                });
            }
        }
        let contents = store.load()?;
        let mut report = HydrationReport {
            skipped: contents.skipped,
            ..HydrationReport::default()
        };
        for artifact in &contents.catalog {
            match Deployment::from_bytes(&artifact.bytes)
                .map_err(ServeError::from)
                .and_then(|d| {
                    self.registry
                        .publish_at(&artifact.name, artifact.version, d)
                }) {
                Ok(()) => {
                    report.deployments += 1;
                    self.metrics.record_hydrated_deployment();
                }
                Err(_) => report.skipped += 1,
            }
        }
        let hub = Arc::new(DurabilityHub::new(
            store,
            Arc::clone(&self.registry),
            Arc::clone(&self.metrics),
            cadence,
        ));
        let mut sessions = Vec::with_capacity(contents.sessions.len());
        for (id, bytes) in &contents.sessions {
            // resume_session would double-enroll once the hub is
            // installed, so sessions are resumed first and adopted under
            // their preserved ids by hand.
            match TrackerSession::resume_scheduled(
                &self.registry,
                bytes,
                Arc::clone(&self.metrics),
                self.session_door(),
            ) {
                Ok(mut session) => {
                    hub.adopt(*id, &session);
                    session.set_durable(*id);
                    report.sessions += 1;
                    self.metrics.record_hydrated_session();
                    sessions.push((*id, session));
                }
                Err(_) => report.skipped += 1,
            }
        }
        self.metrics.record_hydration_skipped(report.skipped);
        *self.durability.lock().expect("durability slot poisoned") = Some(Arc::clone(&hub));
        let _ = self.queue.send(BatcherMsg::Durability(hub));
        Ok(Hydration { report, sessions })
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Sessions hold `Sender` clones, so closing our end cannot hang
        // up the channel; an explicit shutdown message (FIFO-ordered
        // after everything already submitted) tells the batcher to drain
        // what's pending and exit, then we reap it before the executor is
        // torn down.
        let _ = self.queue.send(BatcherMsg::Shutdown);
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        // A final checkpoint after the drain, so a graceful shutdown
        // persists every session's last-served frame. Runs inline — the
        // pool may already be gone — and best-effort: a failed write
        // leaves the previous checkpoint recoverable.
        let hub = self
            .durability
            .lock()
            .expect("durability slot poisoned")
            .take();
        if let Some(hub) = hub {
            let _ = hub.checkpoint_now();
        }
    }
}

/// The batcher thread: feeds arrivals into the pure [`Scheduler`] and
/// executes its decisions in the scheduler's fairness order. Batch
/// flushes run synchronously on the pool; session steps are dispatched
/// **fire-and-forget** ([`ShardedExecutor::spawn`]) so steps of different
/// sessions run in parallel across the workers while the batcher keeps
/// scheduling. Per-session ordering is preserved by an in-flight gate: a
/// stream has at most one step granted-and-running at a time — later
/// steps wait in `deferred` until the worker's `StepDone` message opens
/// the gate and promotes the next one into the scheduler lane. All
/// timing runs on a `Duration` clock anchored at the loop's start,
/// matching what the scheduler's mock-clock tests exercise. Runs until a
/// `Shutdown` message arrives (or every sender hangs up), then drains.
fn batcher_loop(
    rx: &Receiver<BatcherMsg>,
    executor: &Arc<ShardedExecutor>,
    metrics: &Arc<ServeMetrics>,
    done: &Sender<BatcherMsg>,
    policy: BatchPolicy,
    recorder: FlightRecorder,
) {
    let epoch = recorder.epoch();
    let mut scheduler: Scheduler<Work> = Scheduler::new(policy);
    scheduler.set_recorder(recorder.clone());
    // Streams with a step currently executing on a worker.
    let mut inflight: HashSet<StreamId> = HashSet::new();
    // Steps admitted while their stream was gated (in flight, or already
    // holding its one scheduler slot), FIFO per stream.
    let mut deferred: HashMap<StreamId, VecDeque<QueuedStep>> = HashMap::new();
    // Admits a step while keeping the invariant "at most one step per
    // stream in the scheduler": excess steps queue in `deferred`.
    fn admit_step(
        scheduler: &mut Scheduler<Work>,
        inflight: &HashSet<StreamId>,
        deferred: &mut HashMap<StreamId, VecDeque<QueuedStep>>,
        step: QueuedStep,
    ) {
        let stream = step.stream;
        if inflight.contains(&stream)
            || deferred.contains_key(&stream)
            || scheduler.stream_depth(stream) > 0
        {
            deferred.entry(stream).or_default().push_back(step);
        } else {
            // Steps enter their scheduler lane here (not at submit):
            // stream lanes are card-traced by the batcher, not the
            // scheduler.
            step.trace.record(Stage::Enqueued);
            scheduler.submit_stream(stream, Work::Step(step));
        }
    }
    // Opens a stream's gate after its worker finished and promotes the
    // next deferred step, if any.
    fn step_done(
        scheduler: &mut Scheduler<Work>,
        inflight: &mut HashSet<StreamId>,
        deferred: &mut HashMap<StreamId, VecDeque<QueuedStep>>,
        stream: StreamId,
    ) {
        inflight.remove(&stream);
        if let Some(queue) = deferred.get_mut(&stream) {
            if let Some(next) = queue.pop_front() {
                next.trace.record(Stage::Enqueued);
                scheduler.submit_stream(stream, Work::Step(next));
            }
            if queue.is_empty() {
                deferred.remove(&stream);
            }
        }
    }
    // The durability hub, once the server installs it. Its checkpoint
    // deadline is folded into the wait below, so the cadence needs no
    // extra thread and runs entirely on this loop's injected clock.
    let mut durability: Option<Arc<DurabilityHub>> = None;
    // Truncated deployments for brownout serving, keyed by the exact
    // pinned artifact and the degraded mode count: each `(tenant, keep)`
    // pair pays the truncation copy once, then every degraded flush for
    // it reuses the same Arc. A hot swap is a new TenantKey, so a stale
    // truncation can never serve a new version's traffic.
    let mut truncated: HashMap<(TenantKey, usize), Arc<Deployment>> = HashMap::new();
    'serve: loop {
        let sched_deadline = if scheduler.is_idle() {
            None
        } else {
            // `None` here means "flush by size only" — no representable
            // scheduler deadline.
            scheduler.next_deadline()
        };
        let hub_deadline = durability.as_ref().map(|hub| hub.deadline());
        let deadline = match (sched_deadline, hub_deadline) {
            (Some(s), Some(h)) => Some(s.min(h)),
            (Some(s), None) => Some(s),
            (None, Some(h)) => Some(h),
            (None, None) => None,
        };
        // With no hub installed this reproduces the original wait
        // exactly: idle or deadline-less → block on recv.
        let arrival = match deadline {
            None => match rx.recv() {
                Ok(msg) => Some(msg),
                Err(_) => break,
            },
            Some(deadline) => {
                let remaining = deadline.saturating_sub(epoch.elapsed());
                if remaining.is_zero() {
                    None
                } else {
                    match rx.recv_timeout(remaining) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };
        let now = epoch.elapsed();
        match arrival {
            Some(BatcherMsg::Request(request)) => {
                // Anchor the latency budget at the client's submit time,
                // not at batcher receipt: time spent waiting in the
                // channel (e.g. behind a long executor run) counts toward
                // `max_delay`, so an already-overdue request flushes on
                // the very next tick.
                let enqueued_at = request.enqueued.saturating_duration_since(epoch);
                // The scheduler emits the ring event; the card only
                // mirrors the stamp so the exemplar stays complete.
                request.trace.note_at(Stage::Enqueued, enqueued_at);
                scheduler.submit_traced(
                    enqueued_at,
                    request.key.clone(),
                    request.frames.len(),
                    request.trace.trace_ref(),
                    Work::Request(request),
                );
            }
            Some(BatcherMsg::Step(step)) => {
                admit_step(&mut scheduler, &inflight, &mut deferred, step);
            }
            Some(BatcherMsg::StepDone(stream)) => {
                step_done(&mut scheduler, &mut inflight, &mut deferred, stream);
            }
            Some(BatcherMsg::Policy { name, policy }) => {
                scheduler.set_tenant_policy(name, policy);
            }
            Some(BatcherMsg::Brownout(policy)) => {
                scheduler.set_brownout(policy);
                metrics.set_brownout(scheduler.in_brownout());
            }
            Some(BatcherMsg::Durability(hub)) => {
                // Arm at install so the first background checkpoint
                // waits a full cadence — hydration just read the store,
                // so there is nothing new to persist yet, and tests
                // driving checkpoints explicitly stay deterministic.
                hub.arm(now);
                durability = Some(hub);
            }
            Some(BatcherMsg::Shutdown) => break 'serve,
            None => {}
        }
        if let Some(hub) = &durability {
            if hub.due(now) {
                // Re-arm first so a slow checkpoint cannot pile up wakes,
                // then run it on the fire-and-forget job lane — serving
                // never waits on fsync. Overlap collapses inside the hub.
                hub.arm(now);
                let job = Arc::clone(hub);
                // A dead pool (shutdown race) just drops the job; the
                // final checkpoint in `Server::drop` still runs inline.
                let _ = executor.spawn(move |_| {
                    let _ = job.checkpoint_now();
                });
            }
        }
        let decisions = scheduler.tick(now);
        // The tick is where brownout transitions happen; mirror the
        // scheduler's state into the gauge right after it.
        metrics.set_brownout(scheduler.in_brownout());
        for decision in decisions {
            match decision {
                Decision::Batch(flush) => {
                    execute_flush(flush, executor, metrics, now, &mut truncated)
                }
                Decision::Step(step) => dispatch_step(step, executor, metrics, done, &mut inflight),
                Decision::Shed(shed) => execute_shed(shed, metrics, now),
            }
        }
    }
    // Shutdown drain, in three phases. 1: wait out the steps already on
    // workers (absorbing late traffic) so nothing below can race a
    // worker for a session's tracker; the timeout is a backstop against
    // a dead pool that will never report StepDone.
    let drain_deadline = Instant::now() + std::time::Duration::from_secs(10);
    while !inflight.is_empty() {
        let remaining = drain_deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(BatcherMsg::StepDone(stream)) => {
                step_done(&mut scheduler, &mut inflight, &mut deferred, stream);
            }
            Ok(BatcherMsg::Request(request)) => {
                let enqueued_at = request.enqueued.saturating_duration_since(epoch);
                request.trace.note_at(Stage::Enqueued, enqueued_at);
                scheduler.submit_traced(
                    enqueued_at,
                    request.key.clone(),
                    request.frames.len(),
                    request.trace.trace_ref(),
                    Work::Request(request),
                );
            }
            Ok(BatcherMsg::Step(step)) => {
                admit_step(&mut scheduler, &inflight, &mut deferred, step);
            }
            Ok(_) => {}
            Err(_) => break, // timed out or disconnected: stop waiting
        }
    }
    // 2: flush everything still scheduled; steps run synchronously now
    // (their streams have nothing in flight).
    let drain_now = epoch.elapsed();
    for decision in scheduler.drain() {
        match decision {
            Decision::Batch(flush) => {
                execute_flush(flush, executor, metrics, drain_now, &mut truncated)
            }
            Decision::Step(step) => match step.job {
                Work::Step(step) => execute_step_blocking(step, executor, metrics),
                Work::Request(_) => unreachable!("stream lanes carry only steps"),
            },
            // Drain serves everything that is still queued rather than
            // second-guessing deadlines at shutdown, but stay total over
            // the decision type in case that ever changes.
            Decision::Shed(shed) => execute_shed(shed, metrics, drain_now),
        }
    }
    // 3: deferred steps. With nothing in flight they execute in FIFO
    // order; on the timed-out path running them could race the wedged
    // worker, so they are dropped instead (responders fire `Terminated`
    // and release their admission slots).
    if inflight.is_empty() {
        for (_, steps) in deferred {
            for step in steps {
                execute_step_blocking(step, executor, metrics);
            }
        }
    }
}

/// Dispatches one granted session step to the worker pool without
/// blocking the batcher: the worker locks the session's tracker, runs the
/// step, completes the ticket and reports `StepDone` so the stream's next
/// step can be granted. On a dead pool the step's responder (dropped with
/// the rejected job) completes `Terminated` and no in-flight gate is set.
fn dispatch_step(
    decision: StepDecision<Work>,
    executor: &Arc<ShardedExecutor>,
    metrics: &Arc<ServeMetrics>,
    done: &Sender<BatcherMsg>,
    inflight: &mut HashSet<StreamId>,
) {
    let step = match decision.job {
        Work::Step(step) => step,
        Work::Request(_) => unreachable!("stream lanes carry only steps"),
    };
    let stream = step.stream;
    let metrics = Arc::clone(metrics);
    step.trace.record(Stage::ShardDispatched);
    // The guard reports `StepDone` even if the step panics mid-worker:
    // without it, a panicking step would leave the stream gated forever
    // (later steps deferred with hanging tickets, shutdown stalled on the
    // drain backstop). The ticket itself is covered by `Responder::drop`.
    let guard = StepDoneGuard {
        stream,
        done: done.clone(),
    };
    let spawned = executor.spawn(move |worker| {
        let _guard = guard;
        let outcome = crate::shard::step_tracker(&step.tracker, &step.readings);
        step.trace.record(Stage::KernelDone);
        metrics.record_shard(worker, 1);
        complete_step(step, outcome.map_err(ServeError::Core), &metrics);
    });
    if spawned.is_ok() {
        inflight.insert(stream);
    }
    // On a dead pool the rejected job (with the guard inside) is dropped:
    // the responder fires `Terminated`, a spurious `StepDone` goes to a
    // closed queue harmlessly, and no in-flight gate was set.
}

/// Sends `StepDone` for its stream when dropped — on the worker's normal
/// exit from a step, or during unwind if the step panicked.
struct StepDoneGuard {
    stream: StreamId,
    done: Sender<BatcherMsg>,
}

impl Drop for StepDoneGuard {
    fn drop(&mut self) {
        let _ = self.done.send(BatcherMsg::StepDone(self.stream));
    }
}

/// Completes one executed session step: per-class latency, frame and
/// step accounting, then the ticket — shared by the worker-side dispatch
/// path and the synchronous shutdown drain.
fn complete_step(step: QueuedStep, outcome: Result<ThermalMap>, metrics: &ServeMetrics) {
    let QueuedStep {
        name,
        enqueued,
        frames,
        trace,
        responder,
        ..
    } = step;
    metrics.record_session_latency(enqueued.elapsed());
    match outcome {
        Ok(map) => {
            frames.fetch_add(1, Ordering::Release);
            metrics.record_session_step(&name);
            trace.record(Stage::Responded);
            responder.send(Ok(map));
        }
        Err(e) => {
            metrics.record_error();
            trace.record(Stage::Rejected(RejectReason::Failed));
            responder.send(Err(e));
        }
    }
}

/// Completes one shed decision: every blown job's ticket finishes with
/// the typed retryable [`ServeError::DeadlineShed`] — sheds complete
/// tickets, they never lose them — and the work is drained from the
/// tenant's queue gauge and counted per tenant. The scheduler already
/// emitted the `Rejected(DeadlineShed)` ring events at shed time, so the
/// cards only mirror the terminal stamp.
fn execute_shed(shed: ShedDecision<Work>, metrics: &ServeMetrics, now: std::time::Duration) {
    let ShedDecision {
        tenant,
        deadline,
        frames,
        jobs,
    } = shed;
    if jobs.is_empty() {
        return;
    }
    metrics.record_shed(&tenant.name, jobs.len() as u64, frames as u64);
    for work in jobs {
        let req = match work {
            Work::Request(req) => req,
            Work::Step(_) => unreachable!("stream lanes are never shed"),
        };
        req.trace
            .note_at(Stage::Rejected(RejectReason::DeadlineShed), now);
        req.responder.send(Err(ServeError::DeadlineShed {
            name: tenant.name.clone(),
            deadline,
            waited: req.enqueued.elapsed(),
        }));
    }
}

/// The truncated deployment serving `(tenant, keep)` brownout flushes,
/// created from `exact` and cached on first use. `None` when `keep` is
/// not a valid truncation of this artifact (e.g. larger than its K) —
/// the caller falls back to full-fidelity serving.
fn truncated_for(
    cache: &mut HashMap<(TenantKey, usize), Arc<Deployment>>,
    tenant: &TenantKey,
    keep: usize,
    exact: &Deployment,
) -> Option<Arc<Deployment>> {
    if let Some(cached) = cache.get(&(tenant.clone(), keep)) {
        return Some(Arc::clone(cached));
    }
    let low = Arc::new(exact.truncated(keep).ok()?);
    cache.insert((tenant.clone(), keep), Arc::clone(&low));
    Some(low)
}

/// Executes one flush decision and distributes results (or the shared
/// error) back through each request's responder. A flush carrying the
/// scheduler's `degraded` marker is reconstructed against the cached
/// truncated deployment instead of the pinned one.
fn execute_flush(
    decision: FlushDecision<Work>,
    executor: &ShardedExecutor,
    metrics: &ServeMetrics,
    now: std::time::Duration,
    truncated: &mut HashMap<(TenantKey, usize), Arc<Deployment>>,
) {
    let FlushDecision {
        tenant,
        frames: total_frames,
        jobs,
        degraded,
        ..
    } = decision;
    if jobs.is_empty() {
        return;
    }
    let mut jobs: Vec<QueuedRequest> = jobs
        .into_iter()
        .map(|work| match work {
            Work::Request(req) => req,
            Work::Step(_) => unreachable!("batch lanes carry only requests"),
        })
        .collect();
    metrics.record_batch();
    metrics.record_tenant_batch(&tenant.name, jobs.len() as u64, total_frames as u64);
    // Mirror the scheduler's coalesce ring events onto the cards (slot
    // only — the ring already has them), then mark the shard hand-off.
    let coalesced = Stage::Coalesced {
        requests: jobs.len() as u32,
    };
    for req in &jobs {
        req.trace.note_at(coalesced, now);
        req.trace.record(Stage::ShardDispatched);
    }
    // Every job in a decision pinned the same registry artifact (same
    // (name, version) ⇒ same Arc handed out by the registry). Under a
    // degraded flush the truncated artifact substitutes for it; an
    // invalid keep (≥ the artifact's own K, or zero) falls back to
    // full-fidelity serving and the response is not flagged degraded.
    let exact = Arc::clone(&jobs[0].deployment);
    let (deployment, degraded) = match degraded {
        Some(keep) => match truncated_for(truncated, &tenant, keep, &exact) {
            Some(low) => (low, Some(keep)),
            None => (exact, None),
        },
        None => (exact, None),
    };
    if let Some(keep) = degraded {
        metrics.record_degraded_batch(&tenant.name, jobs.len() as u64);
        let stage = Stage::Degraded {
            keep_k: keep as u32,
        };
        for req in &jobs {
            req.degraded.store(true, Ordering::Release);
            req.trace.record(stage);
        }
    }
    let mut combined: Vec<Vec<f64>> = Vec::with_capacity(total_frames);
    let mut counts = Vec::with_capacity(jobs.len());
    for req in jobs.iter_mut() {
        counts.push(req.frames.len());
        combined.append(&mut req.frames); // moves the inner Vecs, no copy
    }
    let outcome = executor.execute(&deployment, &Arc::new(combined));
    for req in &jobs {
        req.trace.record(Stage::KernelDone);
    }
    match outcome {
        Ok(mut maps) => {
            for (req, count) in jobs.into_iter().zip(counts) {
                let rest = maps.split_off(count);
                let chunk = std::mem::replace(&mut maps, rest);
                metrics.record_latency(req.enqueued.elapsed());
                req.trace.record(Stage::Responded);
                req.responder.send(Ok(chunk));
            }
        }
        Err(e) => {
            for req in jobs {
                metrics.record_latency(req.enqueued.elapsed());
                metrics.record_error();
                req.trace.record(Stage::Rejected(RejectReason::Failed));
                req.responder.send(Err(e.clone()));
            }
        }
    }
}

/// Executes one session step synchronously (the shutdown-drain path,
/// where nothing else is in flight for the stream) and completes its
/// ticket.
fn execute_step_blocking(step: QueuedStep, executor: &ShardedExecutor, metrics: &ServeMetrics) {
    step.trace.record(Stage::ShardDispatched);
    let outcome = executor.execute_step(&step.tracker, step.readings.clone());
    step.trace.record(Stage::KernelDone);
    complete_step(step, outcome, metrics);
}

#[cfg(test)]
mod tests {
    use super::*;
    use eigenmaps_core::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn fixture(frames: usize) -> (Arc<DeploymentRegistry>, MapEnsemble, Vec<Vec<f64>>) {
        let (d, ens) = crate::testutil::two_mode_deployment(8, 8, 2, 5);
        let frames: Vec<Vec<f64>> = (0..frames)
            .map(|t| d.sensors().sample(&ens.map(t % ens.len())))
            .collect();
        let registry = Arc::new(DeploymentRegistry::new());
        registry.publish("chip", d);
        (registry, ens, frames)
    }

    #[test]
    fn serve_matches_direct_reconstruction() {
        let (registry, _, frames) = fixture(12);
        let server = Server::new(Arc::clone(&registry), 2);
        let maps = server.serve("chip", frames.clone()).unwrap();
        let deployment = registry.latest("chip").unwrap();
        let direct = deployment.reconstruct_batch(&frames).unwrap();
        assert_eq!(maps.len(), direct.len());
        for (a, b) in direct.iter().zip(maps.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn many_small_requests_coalesce_into_fewer_batches() {
        let (registry, _, frames) = fixture(40);
        let policy = BatchPolicy {
            max_batch_frames: 64,
            max_batch_requests: 64,
            max_delay: Duration::from_millis(50),
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 2, policy);
        let tickets: Vec<Ticket> = frames
            .chunks(2)
            .map(|chunk| {
                server
                    .submit(ServeRequest::new("chip", chunk.to_vec()))
                    .unwrap()
            })
            .collect();
        for (ticket, chunk) in tickets.into_iter().zip(frames.chunks(2)) {
            assert_eq!(ticket.version(), 1);
            let maps = ticket.wait().unwrap();
            assert_eq!(maps.len(), chunk.len());
        }
        let snap = server.metrics();
        assert_eq!(snap.requests, 20);
        assert_eq!(snap.frames, 40);
        assert!(
            snap.batches < 20,
            "coalescing produced {} batches for 20 requests",
            snap.batches
        );
        assert!(snap.latency_p50 > Duration::ZERO);
        // The per-tenant gauges saw the same traffic and drained fully.
        let tenant = &snap.tenants["chip"];
        assert_eq!(tenant.batch_requests, 20);
        assert_eq!(tenant.batch_frames, 40);
        assert_eq!(tenant.queue_depth, 0);
        assert!(tenant.max_queue_depth >= 1);
    }

    #[test]
    fn unknown_deployment_rejected_at_submit() {
        let (registry, _, frames) = fixture(1);
        let server = Server::new(registry, 1);
        assert!(matches!(
            server.serve("nope", frames),
            Err(ServeError::UnknownDeployment { .. })
        ));
    }

    #[test]
    fn malformed_frames_rejected_at_submit() {
        let (registry, _, _) = fixture(0);
        let server = Server::new(registry, 1);
        assert!(matches!(
            server.serve("chip", vec![vec![1.0, 2.0]]),
            Err(ServeError::Core(CoreError::ShapeMismatch { .. }))
        ));
        // The rejected request never entered the queue.
        assert_eq!(server.metrics().requests, 0);
    }

    #[test]
    fn empty_request_serves_empty() {
        let (registry, _, _) = fixture(0);
        let server = Server::new(registry, 2);
        assert!(server.serve("chip", Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn hot_swap_mid_queue_pins_versions() {
        let (registry, ens, frames) = fixture(6);
        // A long flush delay so both requests sit in the same queue window.
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1 << 10,
            max_delay: Duration::from_millis(40),
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(Arc::clone(&registry), 2, policy);
        let before = server
            .submit(ServeRequest::new("chip", frames.clone()))
            .unwrap();
        // Hot-swap to a different artifact (more sensors) mid-queue.
        let retrained = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 3 })
            .sensors(7)
            .design()
            .unwrap();
        registry.publish("chip", retrained);
        let after_frames: Vec<Vec<f64>> = (0..4)
            .map(|t| {
                registry
                    .latest("chip")
                    .unwrap()
                    .sensors()
                    .sample(&ens.map(t))
            })
            .collect();
        let after = server
            .submit(ServeRequest::new("chip", after_frames))
            .unwrap();
        assert_eq!(before.version(), 1);
        assert_eq!(after.version(), 2);
        assert_eq!(before.wait().unwrap().len(), 6);
        assert_eq!(after.wait().unwrap().len(), 4);
        // The two versions are distinct tenants: they can never share a
        // batch, so at least two ran.
        assert!(server.metrics().batches >= 2);
    }

    #[test]
    fn unbounded_delay_flushes_by_size_only() {
        let (registry, _, frames) = fixture(8);
        // `Duration::MAX` makes the deadline unrepresentable: the batcher
        // must fall back to blocking recv (no panic) and flush on the
        // frame budget alone.
        let policy = BatchPolicy {
            max_batch_frames: 4,
            max_batch_requests: 1 << 10,
            max_delay: Duration::MAX,
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 2, policy);
        let tickets: Vec<Ticket> = frames
            .chunks(2)
            .map(|c| {
                server
                    .submit(ServeRequest::new("chip", c.to_vec()))
                    .unwrap()
            })
            .collect();
        for (ticket, chunk) in tickets.into_iter().zip(frames.chunks(2)) {
            assert_eq!(ticket.wait().unwrap().len(), chunk.len());
        }
        assert_eq!(server.metrics().batches, 2);
    }

    #[test]
    fn drop_flushes_pending_requests() {
        let (registry, _, frames) = fixture(5);
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1 << 10,
            max_delay: Duration::from_secs(30), // would wait half a minute
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 2, policy);
        let ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        drop(server); // shutdown must flush, not abandon
        assert_eq!(ticket.wait().unwrap().len(), 5);
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let (registry, _, frames) = fixture(3);
        let server = Server::new(registry, 1);
        let mut ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        // Poll until ready — never blocks, bounded by the 2 ms deadline.
        let maps = loop {
            if let Some(result) = ticket.try_wait() {
                break result.unwrap();
            }
            std::thread::yield_now();
        };
        assert_eq!(maps.len(), 3);
        // The response was consumed: further polls yield nothing, and a
        // late `wait` reports it instead of hanging.
        assert!(ticket.try_wait().is_none());
        assert!(matches!(ticket.wait(), Err(ServeError::Terminated { .. })));
    }

    #[test]
    fn on_ready_fires_before_wait_returns() {
        let (registry, _, frames) = fixture(2);
        let server = Server::new(registry, 1);
        let ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        ticket.on_ready(move || flag.store(true, Ordering::Release));
        assert_eq!(ticket.wait().unwrap().len(), 2);
        assert!(fired.load(Ordering::Acquire));
    }

    #[test]
    fn on_ready_after_completion_fires_immediately() {
        let (registry, _, frames) = fixture(1);
        let server = Server::new(registry, 1);
        let mut ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        while !ticket.is_ready() {
            std::thread::yield_now();
        }
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        ticket.on_ready(move || flag.store(true, Ordering::Release));
        assert!(
            fired.load(Ordering::Acquire),
            "late registration runs inline"
        );
        assert!(ticket.try_wait().unwrap().is_ok());
    }

    #[test]
    fn try_submit_saturates_instead_of_queueing() {
        let (registry, _, frames) = fixture(4);
        // Nothing ever flushes (huge budgets, long delay): the pending
        // queue fills deterministically.
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1 << 10,
            max_delay: Duration::from_secs(60),
            max_pending_per_tenant: 3,
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 1, policy);
        let mut tickets = Vec::new();
        for chunk in frames.chunks(1).take(3) {
            tickets.push(
                server
                    .try_submit(ServeRequest::new("chip", chunk.to_vec()))
                    .unwrap(),
            );
        }
        let err = server
            .try_submit(ServeRequest::new("chip", vec![frames[3].clone()]))
            .unwrap_err();
        assert!(matches!(err, ServeError::Saturated { pending: 3, .. }));
        // The blocking path stays unbounded for back-compat.
        tickets.push(
            server
                .submit(ServeRequest::new("chip", vec![frames[3].clone()]))
                .unwrap(),
        );
        drop(server); // drain
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().len(), 1);
        }
    }

    #[test]
    fn shed_tickets_complete_with_the_typed_retryable_error() {
        use crate::scheduler::OverrunAction;
        let (registry, _, frames) = fixture(4);
        // A zero deadline is blown the instant the batcher sees the
        // request, and nothing else can flush it first (huge budgets,
        // long delay): the shed path is the only exit, deterministically.
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1 << 10,
            max_delay: Duration::from_secs(60),
            deadline: Some(Duration::ZERO),
            overrun: OverrunAction::Shed,
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 1, policy);
        let ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        let err = ticket.wait().unwrap_err();
        assert!(err.is_retryable());
        assert!(
            matches!(&err, ServeError::DeadlineShed { name, deadline, .. }
                if name == "chip" && *deadline == Duration::ZERO),
            "unexpected error: {err:?}"
        );
        let snap = server.metrics();
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.errors, 1);
        let chip = &snap.tenants["chip"];
        assert_eq!(chip.shed_requests, 1);
        assert_eq!(chip.shed_frames, 4);
        // The shed drained the admission gauge: no leaked queue slot.
        assert_eq!(chip.queue_depth, 0);
        assert_eq!(chip.batches, 0);
    }

    #[test]
    fn brownout_serves_degraded_maps_bitwise_equal_to_truncated() {
        use crate::scheduler::{BrownoutPolicy, OverrunAction};
        let (registry, _, frames) = fixture(6);
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1, // flush each request immediately
            max_delay: Duration::from_secs(60),
            overrun: OverrunAction::Degrade { keep_k: 1 },
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(Arc::clone(&registry), 2, policy);
        // One pending frame is enough to enter brownout: every flush
        // below is degraded, with no timing dependence. The policy
        // message is FIFO-ordered ahead of the requests.
        server
            .set_brownout(Some(BrownoutPolicy {
                enter_above: 1,
                exit_below: 0,
            }))
            .unwrap();
        let mut ticket = server
            .submit(ServeRequest::new("chip", frames.clone()))
            .unwrap();
        let maps = loop {
            if let Some(result) = ticket.try_wait() {
                break result.unwrap();
            }
            std::thread::yield_now();
        };
        assert!(ticket.is_degraded());
        // Degraded responses are exactly the truncated deployment's
        // reconstruction — coarser, but deterministic and honest.
        let truncated = registry.latest("chip").unwrap().truncated(1).unwrap();
        let expected = truncated.reconstruct_batch(&frames).unwrap();
        assert_eq!(maps.len(), expected.len());
        for (a, b) in expected.iter().zip(maps.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        let snap = server.metrics();
        assert_eq!(snap.degraded, 1);
        assert!(snap.brownout_entries >= 1);
        let chip = &snap.tenants["chip"];
        assert_eq!(chip.degraded_batches, 1);
        assert_eq!(chip.degraded_requests, 1);
        // Degraded work is served work, not an error.
        assert_eq!(snap.errors, 0);
        assert_eq!(chip.batches, 1);
    }

    #[test]
    fn invalid_degrade_keep_falls_back_to_full_fidelity() {
        use crate::scheduler::{BrownoutPolicy, OverrunAction};
        let (registry, _, frames) = fixture(3);
        // keep_k beyond the artifact's K cannot be truncated to: the
        // flush silently serves the exact deployment and the response is
        // not flagged degraded.
        let policy = BatchPolicy {
            max_batch_requests: 1,
            overrun: OverrunAction::Degrade { keep_k: 64 },
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(Arc::clone(&registry), 1, policy);
        server
            .set_brownout(Some(BrownoutPolicy {
                enter_above: 1,
                exit_below: 0,
            }))
            .unwrap();
        let mut ticket = server
            .submit(ServeRequest::new("chip", frames.clone()))
            .unwrap();
        let maps = loop {
            if let Some(result) = ticket.try_wait() {
                break result.unwrap();
            }
            std::thread::yield_now();
        };
        assert!(!ticket.is_degraded());
        let exact = registry
            .latest("chip")
            .unwrap()
            .reconstruct_batch(&frames)
            .unwrap();
        for (a, b) in exact.iter().zip(maps.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert_eq!(server.metrics().degraded, 0);
    }
}
