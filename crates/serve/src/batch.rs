//! The request/batching front end: [`ServeRequest`] → per-tenant pending
//! queues → [`Scheduler`] → [`ShardedExecutor`].
//!
//! Real monitoring traffic arrives as many small requests (a handful of
//! telemetry frames per chip per interval), but the execution engine is at
//! its best on large batches. The [`Server`] bridges the two: a request
//! pins its deployment version at submit time, is queued under its
//! [`TenantKey`] `(name, version)`, and a batcher thread drives the pure
//! [`Scheduler`] state machine, which coalesces each tenant's requests
//! independently and flushes a tenant when *its own* frame budget, request
//! budget or latency budget ([`BatchPolicy`]) fills — so interleaved
//! multi-tenant traffic no longer degrades to one-request batches, and a
//! hot swap mid-queue never mixes artifacts (the new version is simply a
//! new tenant key).
//!
//! When several tenants are ready at once, flushes are decided round-robin
//! (the scheduler's fairness rotation): a backlogged tenant's next batch
//! is decided only after every other ready tenant got one, so it cannot
//! starve the others, while per-tenant deadlines — anchored at the
//! client's submit time — bound every request's queueing latency
//! regardless of foreign traffic.
//!
//! The front door is nonblocking end to end: [`Server::submit`] and
//! [`Server::try_submit`] enqueue without waiting, and the returned
//! [`Ticket`] can be consumed three ways — block ([`Ticket::wait`]), poll
//! ([`Ticket::try_wait`]), or register a readiness callback
//! ([`Ticket::on_ready`]) to bridge an event loop without a thread per
//! request. Dropping a ticket abandons the response but never the request:
//! the batch still executes and the batcher never wedges.

use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use eigenmaps_core::{CoreError, Deployment, ThermalMap};

use crate::error::{Result, ServeError};
use crate::metrics::ServeMetrics;
use crate::registry::DeploymentRegistry;
use crate::scheduler::{FlushDecision, Scheduler, TenantKey};
use crate::session::TrackerSession;
use crate::shard::ShardedExecutor;

pub use crate::scheduler::BatchPolicy;

/// One reconstruction request: a named deployment and the sensor-reading
/// frames to reconstruct.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Registry name of the deployment to serve against.
    pub deployment: String,
    /// Sensor readings, one `M`-length vector per frame.
    pub frames: Vec<Vec<f64>>,
}

impl ServeRequest {
    /// A request against the named deployment.
    pub fn new(deployment: impl Into<String>, frames: Vec<Vec<f64>>) -> Self {
        ServeRequest {
            deployment: deployment.into(),
            frames,
        }
    }
}

/// Where a response lands: shared between the [`Ticket`] and the batcher.
struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    /// Response not produced yet; an optional readiness callback waits.
    Pending {
        callback: Option<Box<dyn FnOnce() + Send>>,
    },
    /// Response produced, not yet consumed.
    Ready(Result<Vec<ThermalMap>>),
    /// Response consumed (by `wait` or `try_wait`).
    Taken,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState::Pending { callback: None }),
            ready: Condvar::new(),
        })
    }

    /// Stores the response, fires the readiness callback (outside the
    /// lock), then wakes blocked waiters. Idempotent: only the first
    /// completion wins.
    fn complete(&self, result: Result<Vec<ThermalMap>>) {
        let callback = {
            let mut state = self.state.lock().expect("ticket lock poisoned");
            match &mut *state {
                SlotState::Pending { callback } => {
                    let callback = callback.take();
                    *state = SlotState::Ready(result);
                    callback
                }
                _ => return,
            }
        };
        if let Some(callback) = callback {
            callback();
        }
        self.ready.notify_all();
    }
}

/// Completes its [`ResponseSlot`] exactly once — on the happy path with
/// the batch result, or with [`ServeError::Terminated`] if dropped
/// unfulfilled (batcher teardown), so [`Ticket::wait`] can never hang.
struct Responder {
    slot: Arc<ResponseSlot>,
    fulfilled: bool,
}

impl Responder {
    fn new(slot: Arc<ResponseSlot>) -> Self {
        Responder {
            slot,
            fulfilled: false,
        }
    }

    fn send(mut self, result: Result<Vec<ThermalMap>>) {
        self.fulfilled = true;
        self.slot.complete(result);
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.slot.complete(Err(ServeError::Terminated {
                context: "server dropped before responding",
            }));
        }
    }
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responder")
            .field("fulfilled", &self.fulfilled)
            .finish()
    }
}

/// A pending response handle returned by [`Server::submit`] /
/// [`Server::try_submit`].
///
/// A ticket can be consumed exactly once, in any of three styles:
///
/// * **block** — [`Ticket::wait`];
/// * **poll** — [`Ticket::try_wait`] from an event loop;
/// * **callback** — [`Ticket::on_ready`] to get woken without a thread.
///
/// Dropping a ticket without consuming it is safe: the request still
/// executes in its coalesced batch (its tenant's queue slot is released
/// exactly as if it had been awaited), and the response is discarded.
pub struct Ticket {
    version: u32,
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// The deployment version this request was pinned to at submit time.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether a response is ready — [`Ticket::try_wait`] would return it.
    pub fn is_ready(&self) -> bool {
        matches!(
            *self.slot.state.lock().expect("ticket lock poisoned"),
            SlotState::Ready(_)
        )
    }

    /// Nonblocking poll: the response if it is ready (returned exactly
    /// once), `None` while it is still pending or after it was already
    /// consumed.
    pub fn try_wait(&mut self) -> Option<Result<Vec<ThermalMap>>> {
        let mut state = self.slot.state.lock().expect("ticket lock poisoned");
        match &*state {
            SlotState::Ready(_) => match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(result) => Some(result),
                _ => unreachable!("state was Ready under the lock"),
            },
            _ => None,
        }
    }

    /// Registers `callback` to run as soon as the response is ready
    /// (invoked on the batcher thread, before blocked waiters wake). If
    /// the response is already ready, runs it immediately on the calling
    /// thread. A second registration replaces the first. The callback
    /// must not block — it is the readiness hook an event loop uses to
    /// schedule a [`Ticket::try_wait`].
    pub fn on_ready(&self, callback: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.slot.state.lock().expect("ticket lock poisoned");
            if let SlotState::Pending { callback: slot } = &mut *state {
                *slot = Some(Box::new(callback));
                return;
            }
        }
        callback();
    }

    /// Blocks until the batcher serves the request.
    ///
    /// # Errors
    ///
    /// * The request's own failure ([`ServeError::Core`]), or
    /// * [`ServeError::Terminated`] if the server shut down before
    ///   responding, or if the response was already consumed by
    ///   [`Ticket::try_wait`].
    pub fn wait(self) -> Result<Vec<ThermalMap>> {
        let mut state = self.slot.state.lock().expect("ticket lock poisoned");
        loop {
            match &*state {
                SlotState::Pending { .. } => {
                    state = self.slot.ready.wait(state).expect("ticket lock poisoned");
                }
                SlotState::Ready(_) => match std::mem::replace(&mut *state, SlotState::Taken) {
                    SlotState::Ready(result) => return result,
                    _ => unreachable!("state was Ready under the lock"),
                },
                SlotState::Taken => {
                    return Err(ServeError::Terminated {
                        context: "response already consumed by try_wait",
                    })
                }
            }
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("version", &self.version)
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// A queued request with its artifact pinned and its response slot.
#[derive(Debug)]
struct QueuedRequest {
    key: TenantKey,
    deployment: Arc<Deployment>,
    frames: Vec<Vec<f64>>,
    enqueued: Instant,
    responder: Responder,
}

/// The serving front end: registry + per-tenant micro-batching scheduler +
/// sharded execution engine + metrics, one per fleet process.
///
/// `Server` is `Send + Sync`; submit from any thread. Dropping it flushes
/// queued requests and joins the batcher and worker threads.
#[derive(Debug)]
pub struct Server {
    registry: Arc<DeploymentRegistry>,
    executor: Arc<ShardedExecutor>,
    metrics: Arc<ServeMetrics>,
    policy: BatchPolicy,
    queue: Sender<QueuedRequest>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// A server over `registry` with `shards` execution workers and the
    /// default [`BatchPolicy`].
    pub fn new(registry: Arc<DeploymentRegistry>, shards: usize) -> Self {
        Self::with_policy(registry, shards, BatchPolicy::default())
    }

    /// A server with an explicit batching policy.
    pub fn with_policy(
        registry: Arc<DeploymentRegistry>,
        shards: usize,
        policy: BatchPolicy,
    ) -> Self {
        let shards = shards.max(1);
        let metrics = Arc::new(ServeMetrics::new(shards));
        let executor = Arc::new(ShardedExecutor::with_metrics(shards, Arc::clone(&metrics)));
        let (queue, rx) = mpsc::channel();
        // The scheduler-clock epoch predates every possible submit, so
        // request timestamps always convert to a valid `Duration`.
        let epoch = Instant::now();
        let batcher = {
            let executor = Arc::clone(&executor);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("eigenmaps-batcher".into())
                .spawn(move || batcher_loop(&rx, &executor, &metrics, policy, epoch))
                .expect("spawn batcher")
        };
        Server {
            registry,
            executor,
            metrics,
            policy,
            queue,
            batcher: Some(batcher),
        }
    }

    /// The deployment registry this server resolves names against.
    pub fn registry(&self) -> &Arc<DeploymentRegistry> {
        &self.registry
    }

    /// The execution engine (e.g. for direct, unbatched batches).
    pub fn executor(&self) -> &Arc<ShardedExecutor> {
        &self.executor
    }

    /// The batching policy this server's scheduler enforces.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// A point-in-time copy of the serving metrics.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Enqueues a request, returning a [`Ticket`] for the response. The
    /// deployment name is resolved (and its current version pinned) now;
    /// frame lengths are validated now so malformed requests fail fast
    /// instead of poisoning a coalesced batch.
    ///
    /// The request joins **its tenant's own pending queue** (keyed by the
    /// pinned `(name, version)`): it coalesces only with other requests
    /// for the same artifact, and flushes when that queue's frame count,
    /// request count or oldest-request age crosses the [`BatchPolicy`]
    /// budgets — interleaved traffic from other tenants neither flushes
    /// nor delays it. This path never blocks and never rejects on load
    /// (the queue is unbounded); use [`Server::try_submit`] for
    /// admission-controlled submission.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use eigenmaps_core::prelude::*;
    /// use eigenmaps_serve::{DeploymentRegistry, ServeRequest, Server};
    ///
    /// # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    /// let maps: Vec<ThermalMap> = (0..30)
    ///     .map(|t| {
    ///         let w = (t as f64 / 4.0).sin();
    ///         ThermalMap::from_fn(6, 6, |r, c| 40.0 + w * (r + 2 * c) as f64)
    ///     })
    ///     .collect();
    /// let ensemble = MapEnsemble::from_maps(&maps)?;
    /// let registry = Arc::new(DeploymentRegistry::new());
    /// registry.publish(
    ///     "chip",
    ///     Pipeline::new(&ensemble)
    ///         .basis(BasisSpec::EigenExact { k: 2 })
    ///         .sensors(4)
    ///         .design()?,
    /// );
    /// let server = Server::new(Arc::clone(&registry), 2);
    ///
    /// let frames = vec![registry.latest("chip")?.sensors().sample(&ensemble.map(0))];
    /// let ticket = server.submit(ServeRequest::new("chip", frames))?;
    /// assert_eq!(ticket.version(), 1); // pinned at submit
    /// assert_eq!(ticket.wait()?.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`] for an unresolved name.
    /// * [`ServeError::Core`] for frames with the wrong reading count.
    /// * [`ServeError::Terminated`] if the server is shutting down.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket> {
        self.enqueue(request, false)
    }

    /// The nonblocking, admission-controlled front door: like
    /// [`Server::submit`], but refuses with [`ServeError::Saturated`]
    /// (instead of queueing without bound) when the tenant already has
    /// [`BatchPolicy::max_pending_per_tenant`] requests pending. Combined
    /// with [`Ticket::try_wait`] / [`Ticket::on_ready`], a single event
    /// loop can front many connections with zero blocked threads: submit,
    /// register readiness, poll when woken.
    ///
    /// ```
    /// use std::sync::atomic::{AtomicBool, Ordering};
    /// use std::sync::Arc;
    /// use eigenmaps_core::prelude::*;
    /// use eigenmaps_serve::{DeploymentRegistry, ServeRequest, Server};
    ///
    /// # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    /// let maps: Vec<ThermalMap> = (0..30)
    ///     .map(|t| {
    ///         let w = (t as f64 / 4.0).sin();
    ///         ThermalMap::from_fn(6, 6, |r, c| 40.0 + w * (r + 2 * c) as f64)
    ///     })
    ///     .collect();
    /// let ensemble = MapEnsemble::from_maps(&maps)?;
    /// let registry = Arc::new(DeploymentRegistry::new());
    /// registry.publish(
    ///     "chip",
    ///     Pipeline::new(&ensemble)
    ///         .basis(BasisSpec::EigenExact { k: 2 })
    ///         .sensors(4)
    ///         .design()?,
    /// );
    /// let server = Server::new(Arc::clone(&registry), 2);
    ///
    /// let frames = vec![registry.latest("chip")?.sensors().sample(&ensemble.map(1))];
    /// let mut ticket = server.try_submit(ServeRequest::new("chip", frames))?;
    /// // Event-loop style: a readiness hook instead of a blocked thread.
    /// let woken = Arc::new(AtomicBool::new(false));
    /// let flag = Arc::clone(&woken);
    /// ticket.on_ready(move || flag.store(true, Ordering::Release));
    /// // Poll until the callback has fired (a real loop would sleep on
    /// // its I/O selector and re-poll when woken).
    /// while !woken.load(Ordering::Acquire) {
    ///     std::thread::yield_now();
    /// }
    /// assert_eq!(ticket.try_wait().unwrap()?.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Union of [`Server::submit`] and [`ServeError::Saturated`] when the
    /// tenant's pending queue is full.
    pub fn try_submit(&self, request: ServeRequest) -> Result<Ticket> {
        self.enqueue(request, true)
    }

    fn enqueue(&self, request: ServeRequest, admission_control: bool) -> Result<Ticket> {
        let (version, deployment) = self.registry.latest_versioned(&request.deployment)?;
        let m = deployment.m();
        for readings in &request.frames {
            if readings.len() != m {
                return Err(ServeError::Core(CoreError::ShapeMismatch {
                    context: "serve request readings",
                    expected: m,
                    found: readings.len(),
                }));
            }
        }
        // Gauge up before handing the request to the batcher: the flush
        // path decrements, and decrement-before-increment would wedge the
        // gauge above zero forever. The nonblocking door reserves its
        // gauge slot atomically, so concurrent admitters cannot overshoot
        // the per-tenant bound.
        if admission_control {
            if let Err(pending) = self.metrics.try_record_tenant_enqueued(
                &request.deployment,
                self.policy.max_pending_per_tenant as u64,
            ) {
                return Err(ServeError::Saturated {
                    name: request.deployment,
                    pending,
                });
            }
        } else {
            self.metrics.record_tenant_enqueued(&request.deployment);
        }
        let slot = ResponseSlot::new();
        let ticket = Ticket {
            version,
            slot: Arc::clone(&slot),
        };
        let frames = request.frames.len();
        let queued = QueuedRequest {
            key: TenantKey::new(&request.deployment, version),
            deployment,
            frames: request.frames,
            enqueued: Instant::now(),
            responder: Responder::new(slot),
        };
        if let Err(mpsc::SendError(dead)) = self.queue.send(queued) {
            self.metrics.record_tenant_dequeued(&dead.key.name, 1);
            return Err(ServeError::Terminated {
                context: "request queue closed",
            });
        }
        self.metrics.record_request(frames);
        Ok(ticket)
    }

    /// Submits and blocks for the response — the synchronous convenience
    /// path.
    ///
    /// # Errors
    ///
    /// Union of [`Server::submit`] and [`Ticket::wait`].
    pub fn serve(&self, deployment: &str, frames: Vec<Vec<f64>>) -> Result<Vec<ThermalMap>> {
        self.submit(ServeRequest::new(deployment, frames))?.wait()
    }

    /// Opens a streaming tracker session against the named deployment's
    /// current version (pinned for the session's lifetime). See
    /// [`TrackerSession`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownDeployment`] for an unresolved name.
    /// * [`ServeError::Core`] for a gain outside `(0, 1]`.
    pub fn open_session(&self, deployment: &str, gain: f64) -> Result<TrackerSession> {
        TrackerSession::open_with_metrics(
            &self.registry,
            deployment,
            gain,
            Some(Arc::clone(&self.metrics)),
        )
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Closing the queue lets the batcher drain what's pending and
        // exit; then reap it before the executor is torn down.
        let (dead, _) = mpsc::channel();
        drop(std::mem::replace(&mut self.queue, dead));
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}

/// The batcher thread: feeds arrivals into the pure [`Scheduler`] and
/// executes its flush decisions. All timing runs on a `Duration` clock
/// anchored at the loop's start, matching what the scheduler's mock-clock
/// tests exercise. Runs until the request queue closes, then drains.
fn batcher_loop(
    rx: &Receiver<QueuedRequest>,
    executor: &ShardedExecutor,
    metrics: &ServeMetrics,
    policy: BatchPolicy,
    epoch: Instant,
) {
    let mut scheduler: Scheduler<QueuedRequest> = Scheduler::new(policy);
    loop {
        let arrival = if scheduler.is_idle() {
            match rx.recv() {
                Ok(req) => Some(req),
                Err(_) => break,
            }
        } else {
            match scheduler.next_deadline() {
                // No representable deadline ("flush by size only"): wait
                // for traffic without a timeout.
                None => match rx.recv() {
                    Ok(req) => Some(req),
                    Err(_) => break,
                },
                Some(deadline) => {
                    let remaining = deadline.saturating_sub(epoch.elapsed());
                    if remaining.is_zero() {
                        None
                    } else {
                        match rx.recv_timeout(remaining) {
                            Ok(req) => Some(req),
                            Err(RecvTimeoutError::Timeout) => None,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                }
            }
        };
        let now = epoch.elapsed();
        if let Some(request) = arrival {
            // Anchor the latency budget at the client's submit time, not
            // at batcher receipt: time spent waiting in the channel (e.g.
            // behind a long executor run) counts toward `max_delay`, so an
            // already-overdue request flushes on the very next tick.
            let enqueued_at = request.enqueued.saturating_duration_since(epoch);
            scheduler.submit(
                enqueued_at,
                request.key.clone(),
                request.frames.len(),
                request,
            );
        }
        for decision in scheduler.tick(now) {
            flush(decision, executor, metrics);
        }
    }
    for decision in scheduler.drain() {
        flush(decision, executor, metrics);
    }
}

/// Executes one flush decision and distributes results (or the shared
/// error) back through each request's responder.
fn flush(
    decision: FlushDecision<QueuedRequest>,
    executor: &ShardedExecutor,
    metrics: &ServeMetrics,
) {
    let FlushDecision {
        tenant,
        frames: total_frames,
        jobs,
        ..
    } = decision;
    if jobs.is_empty() {
        return;
    }
    metrics.record_batch();
    metrics.record_tenant_batch(&tenant.name, jobs.len() as u64, total_frames as u64);
    // Every job in a decision pinned the same registry artifact (same
    // (name, version) ⇒ same Arc handed out by the registry).
    let deployment = Arc::clone(&jobs[0].deployment);
    let mut combined: Vec<Vec<f64>> = Vec::with_capacity(total_frames);
    let mut counts = Vec::with_capacity(jobs.len());
    let mut jobs: Vec<QueuedRequest> = jobs;
    for req in jobs.iter_mut() {
        counts.push(req.frames.len());
        combined.append(&mut req.frames); // moves the inner Vecs, no copy
    }
    let outcome = executor.execute(&deployment, &Arc::new(combined));
    match outcome {
        Ok(mut maps) => {
            for (req, count) in jobs.into_iter().zip(counts) {
                let rest = maps.split_off(count);
                let chunk = std::mem::replace(&mut maps, rest);
                metrics.record_latency(req.enqueued.elapsed());
                req.responder.send(Ok(chunk));
            }
        }
        Err(e) => {
            for req in jobs {
                metrics.record_latency(req.enqueued.elapsed());
                metrics.record_error();
                req.responder.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eigenmaps_core::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn fixture(frames: usize) -> (Arc<DeploymentRegistry>, MapEnsemble, Vec<Vec<f64>>) {
        let (d, ens) = crate::testutil::two_mode_deployment(8, 8, 2, 5);
        let frames: Vec<Vec<f64>> = (0..frames)
            .map(|t| d.sensors().sample(&ens.map(t % ens.len())))
            .collect();
        let registry = Arc::new(DeploymentRegistry::new());
        registry.publish("chip", d);
        (registry, ens, frames)
    }

    #[test]
    fn serve_matches_direct_reconstruction() {
        let (registry, _, frames) = fixture(12);
        let server = Server::new(Arc::clone(&registry), 2);
        let maps = server.serve("chip", frames.clone()).unwrap();
        let deployment = registry.latest("chip").unwrap();
        let direct = deployment.reconstruct_batch(&frames).unwrap();
        assert_eq!(maps.len(), direct.len());
        for (a, b) in direct.iter().zip(maps.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn many_small_requests_coalesce_into_fewer_batches() {
        let (registry, _, frames) = fixture(40);
        let policy = BatchPolicy {
            max_batch_frames: 64,
            max_batch_requests: 64,
            max_delay: Duration::from_millis(50),
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 2, policy);
        let tickets: Vec<Ticket> = frames
            .chunks(2)
            .map(|chunk| {
                server
                    .submit(ServeRequest::new("chip", chunk.to_vec()))
                    .unwrap()
            })
            .collect();
        for (ticket, chunk) in tickets.into_iter().zip(frames.chunks(2)) {
            assert_eq!(ticket.version(), 1);
            let maps = ticket.wait().unwrap();
            assert_eq!(maps.len(), chunk.len());
        }
        let snap = server.metrics();
        assert_eq!(snap.requests, 20);
        assert_eq!(snap.frames, 40);
        assert!(
            snap.batches < 20,
            "coalescing produced {} batches for 20 requests",
            snap.batches
        );
        assert!(snap.latency_p50 > Duration::ZERO);
        // The per-tenant gauges saw the same traffic and drained fully.
        let tenant = &snap.tenants["chip"];
        assert_eq!(tenant.batch_requests, 20);
        assert_eq!(tenant.batch_frames, 40);
        assert_eq!(tenant.queue_depth, 0);
        assert!(tenant.max_queue_depth >= 1);
    }

    #[test]
    fn unknown_deployment_rejected_at_submit() {
        let (registry, _, frames) = fixture(1);
        let server = Server::new(registry, 1);
        assert!(matches!(
            server.serve("nope", frames),
            Err(ServeError::UnknownDeployment { .. })
        ));
    }

    #[test]
    fn malformed_frames_rejected_at_submit() {
        let (registry, _, _) = fixture(0);
        let server = Server::new(registry, 1);
        assert!(matches!(
            server.serve("chip", vec![vec![1.0, 2.0]]),
            Err(ServeError::Core(CoreError::ShapeMismatch { .. }))
        ));
        // The rejected request never entered the queue.
        assert_eq!(server.metrics().requests, 0);
    }

    #[test]
    fn empty_request_serves_empty() {
        let (registry, _, _) = fixture(0);
        let server = Server::new(registry, 2);
        assert!(server.serve("chip", Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn hot_swap_mid_queue_pins_versions() {
        let (registry, ens, frames) = fixture(6);
        // A long flush delay so both requests sit in the same queue window.
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1 << 10,
            max_delay: Duration::from_millis(40),
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(Arc::clone(&registry), 2, policy);
        let before = server
            .submit(ServeRequest::new("chip", frames.clone()))
            .unwrap();
        // Hot-swap to a different artifact (more sensors) mid-queue.
        let retrained = Pipeline::new(&ens)
            .basis(BasisSpec::EigenExact { k: 3 })
            .sensors(7)
            .design()
            .unwrap();
        registry.publish("chip", retrained);
        let after_frames: Vec<Vec<f64>> = (0..4)
            .map(|t| {
                registry
                    .latest("chip")
                    .unwrap()
                    .sensors()
                    .sample(&ens.map(t))
            })
            .collect();
        let after = server
            .submit(ServeRequest::new("chip", after_frames))
            .unwrap();
        assert_eq!(before.version(), 1);
        assert_eq!(after.version(), 2);
        assert_eq!(before.wait().unwrap().len(), 6);
        assert_eq!(after.wait().unwrap().len(), 4);
        // The two versions are distinct tenants: they can never share a
        // batch, so at least two ran.
        assert!(server.metrics().batches >= 2);
    }

    #[test]
    fn unbounded_delay_flushes_by_size_only() {
        let (registry, _, frames) = fixture(8);
        // `Duration::MAX` makes the deadline unrepresentable: the batcher
        // must fall back to blocking recv (no panic) and flush on the
        // frame budget alone.
        let policy = BatchPolicy {
            max_batch_frames: 4,
            max_batch_requests: 1 << 10,
            max_delay: Duration::MAX,
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 2, policy);
        let tickets: Vec<Ticket> = frames
            .chunks(2)
            .map(|c| {
                server
                    .submit(ServeRequest::new("chip", c.to_vec()))
                    .unwrap()
            })
            .collect();
        for (ticket, chunk) in tickets.into_iter().zip(frames.chunks(2)) {
            assert_eq!(ticket.wait().unwrap().len(), chunk.len());
        }
        assert_eq!(server.metrics().batches, 2);
    }

    #[test]
    fn drop_flushes_pending_requests() {
        let (registry, _, frames) = fixture(5);
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1 << 10,
            max_delay: Duration::from_secs(30), // would wait half a minute
            ..BatchPolicy::default()
        };
        let server = Server::with_policy(registry, 2, policy);
        let ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        drop(server); // shutdown must flush, not abandon
        assert_eq!(ticket.wait().unwrap().len(), 5);
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let (registry, _, frames) = fixture(3);
        let server = Server::new(registry, 1);
        let mut ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        // Poll until ready — never blocks, bounded by the 2 ms deadline.
        let maps = loop {
            if let Some(result) = ticket.try_wait() {
                break result.unwrap();
            }
            std::thread::yield_now();
        };
        assert_eq!(maps.len(), 3);
        // The response was consumed: further polls yield nothing, and a
        // late `wait` reports it instead of hanging.
        assert!(ticket.try_wait().is_none());
        assert!(matches!(ticket.wait(), Err(ServeError::Terminated { .. })));
    }

    #[test]
    fn on_ready_fires_before_wait_returns() {
        let (registry, _, frames) = fixture(2);
        let server = Server::new(registry, 1);
        let ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        ticket.on_ready(move || flag.store(true, Ordering::Release));
        assert_eq!(ticket.wait().unwrap().len(), 2);
        assert!(fired.load(Ordering::Acquire));
    }

    #[test]
    fn on_ready_after_completion_fires_immediately() {
        let (registry, _, frames) = fixture(1);
        let server = Server::new(registry, 1);
        let mut ticket = server.submit(ServeRequest::new("chip", frames)).unwrap();
        while !ticket.is_ready() {
            std::thread::yield_now();
        }
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        ticket.on_ready(move || flag.store(true, Ordering::Release));
        assert!(
            fired.load(Ordering::Acquire),
            "late registration runs inline"
        );
        assert!(ticket.try_wait().unwrap().is_ok());
    }

    #[test]
    fn try_submit_saturates_instead_of_queueing() {
        let (registry, _, frames) = fixture(4);
        // Nothing ever flushes (huge budgets, long delay): the pending
        // queue fills deterministically.
        let policy = BatchPolicy {
            max_batch_frames: 1 << 20,
            max_batch_requests: 1 << 10,
            max_delay: Duration::from_secs(60),
            max_pending_per_tenant: 3,
        };
        let server = Server::with_policy(registry, 1, policy);
        let mut tickets = Vec::new();
        for chunk in frames.chunks(1).take(3) {
            tickets.push(
                server
                    .try_submit(ServeRequest::new("chip", chunk.to_vec()))
                    .unwrap(),
            );
        }
        let err = server
            .try_submit(ServeRequest::new("chip", vec![frames[3].clone()]))
            .unwrap_err();
        assert!(matches!(err, ServeError::Saturated { pending: 3, .. }));
        // The blocking path stays unbounded for back-compat.
        tickets.push(
            server
                .submit(ServeRequest::new("chip", vec![frames[3].clone()]))
                .unwrap(),
        );
        drop(server); // drain
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().len(), 1);
        }
    }
}
